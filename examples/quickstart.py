#!/usr/bin/env python3
"""Quickstart: Fix objects, thunks, encodes, and the Fixpoint runtime.

Covers, in ~80 lines, the paper's section 3 by example:

1. Blobs and Trees, content-addressed handles, literal inlining;
2. compiling a codelet through the trusted toolchain;
3. lazy Application thunks and Strict/Shallow encodes;
4. the paper's fig. 2 (lazy if) and fig. 3 (fib) running for real.

Run:  python examples/quickstart.py
"""

from repro import Fixpoint
from repro.codelets.stdlib import blob_int, int_blob
from repro.core.thunks import make_identification, shallow, strict


def main() -> None:
    fp = Fixpoint()
    repo = fp.repo

    # --- Data: Blobs and Trees -----------------------------------------
    small = repo.put_blob(b"hi")  # <= 30 bytes: rides inside the handle
    big = repo.put_blob(b"x" * 1000)  # stored, named by its digest
    tree = repo.put_tree([small, big])
    print(f"small handle is literal: {small.is_literal}")
    print(f"big handle: {big!r}")
    print(f"tree of two children: {tree!r}")

    # --- Refs: visible metadata, invisible payload ---------------------
    ref = big.as_ref()
    print(f"a Ref knows its size ({ref.size} bytes) but hides its data")

    # --- Compile a codelet through the trusted toolchain ---------------
    square = fp.compile(
        "def _fix_apply(fix, input):\n"
        "    entries = fix.read_tree(input)\n"
        "    n = int.from_bytes(fix.read_blob(entries[2]), 'little')\n"
        "    return fix.create_blob((n * n).to_bytes(8, 'little'))\n",
        "square",
    )

    # --- Lazy application + strict evaluation --------------------------
    thunk = fp.invoke(square, [repo.put_blob(int_blob(12))])
    print(f"a thunk is just a name: {thunk!r}")
    result = fp.eval(thunk.wrap_strict())
    print(f"square(12) = {blob_int(repo.get_blob(result).data)}")

    # --- Fig. 2: the untaken branch never runs -------------------------
    bomb = fp.compile(
        "def _fix_apply(fix, input):\n    raise ValueError('boom')", "bomb"
    )
    taken = fp.invoke(square, [repo.put_blob(int_blob(3))])
    not_taken = fp.invoke(bomb, [])
    pred = repo.put_blob(b"\x01")
    if_thunk = fp.invoke(fp.stdlib["if"], [pred, taken, not_taken])
    result = fp.eval(if_thunk.wrap_strict())
    print(f"if(true) chose square(3) = {blob_int(repo.get_blob(result).data)}")
    print(f"bomb invocations: {fp.trace.invocation_count('bomb')} (laziness!)")

    # --- Fig. 3: recursion through thunks, memoized by content ---------
    x = repo.put_blob(int_blob(25))
    fib = fp.invoke(fp.stdlib["fib"], [fp.stdlib["add"], x])
    result = fp.eval(fib.wrap_strict())
    print(f"fib(25) = {blob_int(repo.get_blob(result).data)}")
    print(
        f"fib invocations: {fp.trace.invocation_count('fib')} "
        "(content addressing collapses the exponential tree)"
    )

    # --- Shallow vs strict --------------------------------------------
    from repro.core.eval import Evaluator

    evaluator = Evaluator(repo)
    ident = make_identification(big.as_ref())
    shallow_result = evaluator.eval_encode(shallow(ident))
    strict_result = evaluator.eval_encode(strict(ident))
    print(f"shallow gives a Ref:     {shallow_result.is_ref}")
    print(f"strict gives an Object:  {strict_result.is_object}")


if __name__ == "__main__":
    main()
