#!/usr/bin/env python3
"""Multi-tenant admission end to end (paper section 6, both halves).

One shared FixpointSim cluster, two tenants, many jobs:

* Part 1 packs a staggered-spike fleet twice - footprint-aware
  admission vs the peak-reservation ablation - and shows the density
  headroom on *executed* jobs.
* Part 2 runs two tenants' wordcounts concurrently, once with good
  placement and once deliberately bad (``locality=False``), and prints
  the pay-for-results vs pay-for-effort bills metered from the real
  invocations: effort passes the placement waste to the customer,
  results does not.

Run:  python examples/admission_billing.py
"""

from repro.dist.admission import AdmissionController, spike_job
from repro.dist.engine import FixpointSim
from repro.dist.multitenancy import validate_timeline
from repro.workloads.corpus import ShardSpec
from repro.workloads.wordcount import build_wordcount_graph

GB = 1 << 30
MB = 1 << 20


def density_demo() -> None:
    print("=== staggered spikes: footprint-aware vs peak reservation ===")
    reports = {}
    for policy in ("footprint", "peak"):
        platform = FixpointSim.build(nodes=4, cores=16)
        ctrl = AdmissionController(
            platform, capacity_bytes=9 * GB, policy=policy
        )
        for tenant, count in (("alice", 6), ("bob", 4)):
            for i in range(count):
                ctrl.submit(
                    tenant, spike_job(location=f"node{i % 4}"), at=i * 1.0
                )
        reports[policy] = ctrl.run()
        validate_timeline(reports[policy].timeline, 9 * GB)
    for policy, report in reports.items():
        print(
            f"{policy:>10s}: batch done in {report.makespan:6.1f}s, "
            f"max {report.max_concurrent} jobs co-resident"
        )
    ratio = reports["peak"].makespan / reports["footprint"].makespan
    print(f"density headroom from declared footprints: {ratio:.1f}x\n")


def billing_demo() -> None:
    print("=== two tenants' wordcounts, metered bills ===")
    print(f"{'placement':>10s} {'tenant':>7s} {'results':>10s} {'effort':>10s}")
    for label, locality in (("good", True), ("bad", False)):
        platform = FixpointSim.build(nodes=4, cores=8, locality=locality)
        nodes = platform.cluster.machine_names()
        ctrl = AdmissionController(platform)
        for tenant in ("alice", "bob"):
            shards = [
                ShardSpec(f"{tenant}-s{i}", 100 * MB, nodes[i % len(nodes)])
                for i in range(8)
            ]
            ctrl.submit(
                tenant, build_wordcount_graph(shards, task_memory=8 * GB)
            )
        report = ctrl.run()
        for tenant, bill in report.bills.items():
            print(
                f"{label:>10s} {tenant:>7s} {bill.results_total:10.4f} "
                f"{bill.effort_total:10.4f}"
            )
    print(
        "\npay-for-results charges the same declared work either way;\n"
        "pay-for-effort bills the customer for the platform's bad placement."
    )


if __name__ == "__main__":
    density_demo()
    billing_demo()
