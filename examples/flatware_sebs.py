#!/usr/bin/env python3
"""The section-5.6 ports and the section-6 extensions, live.

1. SeBS dynamic-html and compression running as Flatware programs
   (argv + filesystem in, stdout out) on the in-process runtime;
2. the get-file procedure (Algorithm 3) descending a Ref-encoded
   directory tree with selection thunks;
3. Asyncify: a blocking-style linked-list walk automatically split into
   fine-grained invocations by deterministic replay;
4. computational GC: evict a derived object, watch it recompute on
   demand; and a pay-for-results vs pay-for-effort bill comparison.

Run:  python examples/flatware_sebs.py
"""

from repro import Fixpoint
from repro.codelets.stdlib import int_blob
from repro.core.eval import Evaluator
from repro.core.gc import RecoveringRepository
from repro.core.thunks import make_identification, make_selection, shallow, strict
from repro.fixpoint.billing import InvocationMeter, bill_effort, bill_results
from repro.flatware.archive import extract_compressed
from repro.flatware.asyncify import compile_io_program, run_io_program
from repro.flatware.fs import GET_FILE_SOURCE, build_fs
from repro.workloads.sebs import run_compression, run_dynamic_html


def sebs_ports(fp: Fixpoint) -> None:
    print("=== SeBS ports via Flatware ===")
    html = run_dynamic_html(fp, "yuhan", ["first post", "second post"])
    print(html.decode())
    bucket = {"a.log": b"line\n" * 50, "b.bin": bytes(300)}
    blob = run_compression(fp, bucket)
    restored = extract_compressed(blob)
    print(f"compression: {sum(map(len, bucket.values()))} bytes -> "
          f"{len(blob)} bytes; roundtrip ok: {restored == bucket}")


def get_file_demo(fp: Fixpoint) -> None:
    print("\n=== Algorithm 3: get-file over a Ref-encoded tree ===")
    repo = fp.repo
    fs = {"dir0": {"file1": b"the deep payload"}, "file0": b"shallow"}
    root = build_fs(repo, fs, accessible=False)
    get_file = fp.compile(GET_FILE_SOURCE, "get-file")
    thunk = fp.invoke(
        get_file,
        [
            repo.put_blob(b"dir0/file1"),
            strict(make_selection(repo, root, 0)),
            shallow(root.make_identification()),
        ],
    )
    result = fp.eval(thunk.wrap_strict())
    print(f"get_file('dir0/file1') -> {repo.get_blob(result).data!r}")
    print(f"bytes mapped on the walk: {fp.trace.total_bytes_mapped()} "
          "(directory contents never entered the minimum repository)")


WALK = '''\
def io_main(fix, args, env):
    hops = int.from_bytes(args, "little")
    nodes = fix.read_tree(env)
    node = yield nodes[0]
    for _ in range(hops):
        pair = fix.read_tree(node)
        node = yield pair[1]
    pair = fix.read_tree(node)
    value = yield pair[0]
    return value
'''


def asyncify_demo(fp: Fixpoint) -> None:
    print("\n=== Asyncify: blocking-style code, fine-grained invocations ===")
    repo = fp.repo
    node = repo.put_tree([])
    for i in reversed(range(8)):
        value = repo.put_blob(b"payload-%d-" % i + b"z" * 40)
        node = repo.put_tree([value.as_ref(), node.as_ref()])
    program = compile_io_program(fp, WALK, "list-walk")
    before = fp.trace.invocation_count("list-walk")
    result = run_io_program(
        fp, program, int_blob(5), [strict(make_identification(node))]
    )
    print(f"walked to: {repo.get_blob(result).data[:12]!r}")
    print(f"automatic continuations: {fp.trace.invocation_count('list-walk') - before} "
          "invocations from one blocking-style function")


def gc_and_billing_demo() -> None:
    print("\n=== computational GC + pay-for-results ===")
    repo = RecoveringRepository()
    fp = Fixpoint(repo=repo)
    upper = fp.compile(
        "def _fix_apply(fix, input):\n"
        "    entries = fix.read_tree(input)\n"
        "    return fix.create_blob(fix.read_blob(entries[2]).upper())\n",
        "upper",
    )
    arg = repo.put_blob(b"delayed availability " * 4)
    result = fp.eval(fp.invoke(upper, [arg]).wrap_strict())
    repo.set_recompute(
        lambda recipe: Evaluator(repo, apply_fn=fp._apply, memoize=False).eval_encode(recipe)
    )
    repo.forget_data(result)
    print(f"evicted the result; provider recomputes on demand: "
          f"{repo.get_blob(result).data[:21]!r} (recoveries={repo.recoveries})")

    meter = InvocationMeter(
        input_bytes=100 << 20,
        reserved_memory_bytes=1 << 30,
        user_cpu_seconds=0.4,
        bytes_mapped=100 << 20,
        wall_seconds=0.5,
    )
    starved = InvocationMeter(
        meter.input_bytes, meter.reserved_memory_bytes,
        meter.user_cpu_seconds, meter.bytes_mapped,
        wall_seconds=5.0,  # a noisy neighbour stalled the slice 10x
    )
    print(f"pay-for-effort:  good placement {bill_effort(meter).total:.6f}, "
          f"bad placement {bill_effort(starved).total:.6f} (customer pays 10x)")
    print(f"pay-for-results: good placement {bill_results(meter).total:.6f}, "
          f"bad placement {bill_results(starved).total:.6f} (identical)")


if __name__ == "__main__":
    fp = Fixpoint()
    sebs_ports(fp)
    get_file_demo(fp)
    asyncify_demo(fp)
    gc_and_billing_demo()
