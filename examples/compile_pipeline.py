#!/usr/bin/env python3
"""Burst-parallel compilation (the fig. 10 workload), both layers.

Part 1: the real toy libclang/liblld codelets compile a 40-TU project on
the in-process runtime - including a demonstration that link-time errors
(undefined and duplicate symbols) surface exactly like a real linker's.

Part 2: the ~2,000-TU dataflow on the simulated 10-node cluster,
Fixpoint vs Ray + MinIO vs OpenWhisk - dependency bundling vs re-fetching
the header bundle per invocation.

Run:  python examples/compile_pipeline.py
"""

from repro import Fixpoint
from repro.baselines.openwhisk import OpenWhisk
from repro.baselines.ray import RayPopenMinIO
from repro.core.errors import CodeletError
from repro.dist.engine import FixpointSim
from repro.workloads.compilejob import (
    build_compile_graph,
    compile_project,
    make_headers,
    make_source,
)


def real_pipeline() -> None:
    print("=== real mini-compiler on the in-process runtime ===")
    fp = Fixpoint()
    sources = [make_source(i, list(range(max(0, i - 3), i))) for i in range(40)]
    exe = fp.repo.get_blob(compile_project(fp, sources, make_headers())).data
    symbols = exe.decode().splitlines()
    print(f"linked executable with {len(symbols) - 1} symbols "
          f"({symbols[1]} ... {symbols[-1]})")
    print(f"invocations: {fp.trace.by_function()}")

    # Link-time failure injection: fn_999 is called but never defined.
    try:
        compile_project(fp, [make_source(0, [999])], make_headers())
    except CodeletError as exc:
        print(f"link failure surfaces correctly: {exc}")


def simulated_cluster() -> None:
    print("\n=== paper scale: 1,987 TUs on 10 nodes / 320 vCPUs ===")
    rows = [
        ("Fixpoint", lambda: FixpointSim.build(nodes=10)),
        ("Ray + MinIO", lambda: RayPopenMinIO.build(nodes=10)),
        (
            "OpenWhisk + MinIO + K8s",
            lambda: OpenWhisk.build(nodes=10, warm=False, per_invocation_pods=True),
        ),
    ]
    print(f"{'platform':26s} {'time':>8s} {'moved':>10s}   (paper: 39.5 / 76.9 / 100.0 s)")
    for label, factory in rows:
        platform = factory()
        result = platform.run(build_compile_graph())
        print(
            f"{label:26s} {result.makespan:7.1f}s "
            f"{result.bytes_transferred / (1 << 30):8.2f}GiB"
        )


if __name__ == "__main__":
    real_pipeline()
    simulated_cluster()
