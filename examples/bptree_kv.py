#!/usr/bin/env python3
"""A key-value store as a B+-tree of Fix Trees (the fig. 9 workload).

Builds a real tree over generated article titles, looks keys up through
selection thunks (each step's minimum repository is one node's keys -
never the whole tree), shows Table 2's access-cost story with real
counters, and prints the fig. 9 latency model across arities.

Run:  python examples/bptree_kv.py
"""

from repro import Fixpoint
from repro.bench import fig9
from repro.workloads.bptree import (
    build_bptree,
    compile_get,
    lookup,
    sample_queries,
    walk_real_tree,
)
from repro.workloads.titles import make_titles


def main() -> None:
    fp = Fixpoint()
    titles = make_titles(20_000, seed=7)
    values = [b"article-body-of:" + t for t in titles]
    arity = 64

    print(f"building B+-tree over {len(titles):,} titles (arity {arity})...")
    tree = build_bptree(fp, titles, values, arity)
    print(f"  depth={tree.depth} levels={tree.levels} nodes={tree.node_count}")

    get_fn = compile_get(fp)
    for key in sample_queries(titles, 3, seed=1):
        value = lookup(fp, tree, get_fn, key)
        print(f"  lookup {key.decode():30s} -> {value[:28].decode()}...")
    missing = lookup(fp, tree, get_fn, b"zz-no-such-article")
    print(f"  lookup of an absent key -> {missing!r}")

    print("\nTable 2 on this real tree (one query):")
    key = titles[1234]
    for style in ("fixpoint", "ray-cps", "ray-blocking"):
        stats = walk_real_tree(fp, tree, key, style)
        print(
            f"  {style:13s} invocations={stats.invocations:2d} "
            f"gets={stats.gets:2d} bytes={stats.bytes_fetched:6d} "
            f"peak_resident={stats.peak_resident:6d}"
        )

    print("\nfig. 9 latency model (6M keys, seconds per 10-query set):")
    fig9.run(scale=1.0).show()


if __name__ == "__main__":
    main()
