#!/usr/bin/env python3
"""The fig. 8b workload end to end, both layers.

Part 1 runs the *real* count-string / merge-counts codelets over a real
miniature corpus on the in-process runtime and checks the answer.

Part 2 runs the paper-scale experiment (984 x 100 MiB shards, 10 nodes /
320 vCPUs) on the simulated cluster across four platforms, reproducing
the fig. 8b comparison - locality and late binding are exactly the
difference between the first and last rows.

Run:  python examples/wordcount_cluster.py
"""

from repro import Fixpoint
from repro.baselines.openwhisk import OpenWhisk
from repro.baselines.ray import RayPlatform
from repro.dist.engine import FixpointSim
from repro.workloads.corpus import make_corpus, paper_shards, reference_count
from repro.workloads.wordcount import build_wordcount_graph, count_corpus


def real_miniature_run() -> None:
    print("=== real codelets, miniature corpus ===")
    fp = Fixpoint()
    shards = make_corpus(shards=12, shard_size=8_000, seed=11)
    needle = b"the"
    got = count_corpus(fp, shards, needle)
    want = reference_count(shards, needle)
    print(f"count-string x {len(shards)} + merges -> {got} (reference: {want})")
    assert got == want
    print(f"invocations: {fp.trace.by_function()}")


def simulated_paper_run() -> None:
    print("\n=== paper scale on the simulated cluster ===")
    platforms = [
        ("Fixpoint (locality + late binding)", lambda: FixpointSim.build(nodes=10)),
        ("Fixpoint (no locality)", lambda: FixpointSim.build(nodes=10, locality=False)),
        ("Ray continuation-passing", lambda: RayPlatform.build(nodes=10, style="cps")),
        ("OpenWhisk + MinIO + K8s", lambda: OpenWhisk.build(nodes=10)),
    ]
    print(f"{'platform':42s} {'time':>8s} {'waiting%':>9s} {'moved':>10s}")
    for label, factory in platforms:
        platform = factory()
        shards = paper_shards(platform.cluster.machine_names(), seed=42)
        result = platform.run(build_wordcount_graph(shards))
        print(
            f"{label:42s} {result.makespan:7.2f}s "
            f"{result.cpu.waiting_pct:8.1f}% "
            f"{result.bytes_transferred / (1 << 30):8.1f}GiB"
        )


if __name__ == "__main__":
    real_miniature_run()
    simulated_paper_run()
