#!/usr/bin/env python3
"""The observability layer end to end: two executing nodes, real wire
traffic, one stitched story.

Alpha delegates work to beta over the framed channel, then runs an
anti-entropy gossip round.  Every hop carried a 16-byte span context
inside the wire frames, so afterwards the two nodes' tracers stitch
into per-job causal trees (dispatch -> remote serve -> absorb), and
each node's metrics registry holds the counters/histograms the weekly
bench snapshot (``BENCH_core.json``) is built from.

Run:  python examples/observability_dashboard.py
"""

from repro.codelets.stdlib import blob_int, int_blob
from repro.fixpoint.net import FixpointNode
from repro.obs import render_trace, stitch


def main() -> None:
    alpha = FixpointNode("alpha")
    beta = FixpointNode("beta")
    alpha.connect(beta).latency = 0.005  # 5 ms per direction

    # Delegate three additions to beta: each round trip ships the job,
    # serves it remotely, and absorbs the result - three spans, one
    # trace, two nodes.
    fn = alpha.runtime.stdlib["add_u8"]
    for x, y in [(20, 22), (3, 4), (100, 28)]:
        encode = alpha.runtime.invoke(
            fn,
            [
                alpha.repo.put_blob(int_blob(x, 1)),
                alpha.repo.put_blob(int_blob(y, 1)),
            ],
        ).wrap_strict()
        result = alpha.delegate("beta", encode)
        print(f"{x} + {y} = {blob_int(alpha.repo.get_blob(result).data)}")

    # Some local news, then an anti-entropy round to spread it.
    alpha.repo.put_blob(b"hot new object only alpha has")
    traffic = alpha.gossip_with("beta")
    print(
        f"\ngossip with beta: {traffic.bytes_shipped} bytes shipped, "
        f"{traffic.entries_sent} entries sent, "
        f"{traffic.entries_received} received"
    )

    # --- the dashboard -------------------------------------------------
    print("\n" + "=" * 68)
    print("alpha's metrics")
    print("=" * 68)
    print(alpha.obs.registry.summary())

    print("=" * 68)
    print("stitched traces (spans from BOTH nodes, joined by trace_id)")
    print("=" * 68)
    traces = stitch(alpha.obs.tracer, beta.obs.tracer)
    for trace_id in sorted(traces):
        print(f"trace {trace_id:#x}")
        print(render_trace(traces[trace_id]))

    # The same snapshot the weekly bench job persists:
    snap = alpha.obs.export()
    print(
        f"export: {len(snap['spans'])} spans in {snap['traces']} traces, "
        f"{sum(len(v) for v in snap['metrics']['counters'].values())} "
        "counter series"
    )


if __name__ == "__main__":
    main()
