"""Repo-wide pytest wiring: the benchmark suite is opt-in.

``benchmarks/bench_*.py`` regenerate the paper's tables/figures and
assert their *shape*; they are orders of magnitude slower than the unit
suite, so plain ``pytest`` collects them (they stay visible and
importable) but skips them.  Opt in with::

    pytest --benchmarks            # everything
    pytest benchmarks/ --benchmarks -m bench   # just the figures

CI runs the opt-in suite on a schedule (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--benchmarks",
        action="store_true",
        default=False,
        help="run the paper-figure benchmark suite (benchmarks/bench_*.py)",
    )
    parser.addoption(
        "--race",
        action="store_true",
        default=False,
        help=(
            "enable the repro.analysis lock-order tracker for the whole "
            "run: every TrackedLock site feeds the acquisition graph, and "
            "the session fails on any lock-order inversion or "
            "hold-while-blocking event (see repro/analysis/sync.py)"
        ),
    )


def pytest_configure(config):
    if config.getoption("--race"):
        # Enable *before* collection imports the src tree: the tracked
        # factories bind a lock to the tracker at creation time, so the
        # tracker must exist before the system under test builds locks.
        from repro.analysis.sync import enable_tracking

        config._race_tracker = enable_tracking()


def _static_dynamic_diff(config, tracker):
    """Diff the static lock graph (repro.analysis.flow over ``src/``)
    against the acquisition orders the tracker observed this session.

    Computed once and cached on ``config``: both the session fixture
    (which *asserts* on it) and the terminal summary (which *prints*
    it) want the same answer.
    """
    cached = getattr(config, "_race_crosscheck", None)
    if cached is None:
        from repro.analysis.crosscheck import crosscheck
        from repro.analysis.flow import analyze_tree

        static = analyze_tree([config.rootpath / "src"])
        cached = config._race_crosscheck = crosscheck(
            static.edge_pairs(), static.labels, tracker.report().edge_pairs
        )
    return cached


@pytest.fixture(scope="session", autouse=True)
def _race_clean_report(request):
    """Under ``--race``: assert an empty inversion report at session end,
    and that the *static* lock graph covers every dynamically observed
    acquisition order (a dynamic-only edge means the call-graph model in
    repro.analysis.flow is incomplete and silently under-reports static
    deadlock risk).

    Tests that *intentionally* reconstruct deadlocks (test_analysis.py)
    run them against private ``LockTracker`` instances via
    ``tracking(...)``, so the suite-wide tracker only sees the real
    system's behavior; locks minted by test fixtures show up as
    ``foreign`` in the diff and are asserted on by nobody.
    """
    yield
    tracker = getattr(request.config, "_race_tracker", None)
    if tracker is None:
        return
    report = tracker.report()
    assert not report.cycles and not report.blocking, (
        "--race found concurrency hazards:\n" + report.format()
    )
    diff = _static_dynamic_diff(request.config, tracker)
    assert diff.clean, (
        "--race observed lock orders the static analysis cannot derive "
        "(the flow model is incomplete):\n" + diff.format()
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tracker = getattr(config, "_race_tracker", None)
    if tracker is not None:
        report = tracker.report()
        terminalreporter.write_sep("-", "race detector (--race)")
        terminalreporter.write_line(report.format())
        diff = _static_dynamic_diff(config, tracker)
        terminalreporter.write_line(diff.format())
        out = diff.dump(config.rootpath / "RACE_lockgraph_diff.json")
        terminalreporter.write_line(f"lock-graph diff written to {out}")


def pytest_collection_modifyitems(config, items):
    bench_root = config.rootpath / "benchmarks"
    opted_in = config.getoption("--benchmarks")
    skip = pytest.mark.skip(
        reason="benchmark suite is opt-in: pass --benchmarks"
    )
    for item in items:
        if bench_root not in item.path.parents:
            continue
        item.add_marker(pytest.mark.bench)
        if not opted_in:
            item.add_marker(skip)
