"""Repo-wide pytest wiring: the benchmark suite is opt-in.

``benchmarks/bench_*.py`` regenerate the paper's tables/figures and
assert their *shape*; they are orders of magnitude slower than the unit
suite, so plain ``pytest`` collects them (they stay visible and
importable) but skips them.  Opt in with::

    pytest --benchmarks            # everything
    pytest benchmarks/ --benchmarks -m bench   # just the figures

CI runs the opt-in suite on a schedule (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--benchmarks",
        action="store_true",
        default=False,
        help="run the paper-figure benchmark suite (benchmarks/bench_*.py)",
    )


def pytest_collection_modifyitems(config, items):
    bench_root = config.rootpath / "benchmarks"
    opted_in = config.getoption("--benchmarks")
    skip = pytest.mark.skip(
        reason="benchmark suite is opt-in: pass --benchmarks"
    )
    for item in items:
        if bench_root not in item.path.parents:
            continue
        item.add_marker(pytest.mark.bench)
        if not opted_in:
            item.add_marker(skip)
