"""The fig. 9 / Table 2 workload: a key-value store as an on-disk B+-tree.

Every node is a Fix Tree ``[keys_blob, child0, child1, ...]``:

* the keys blob holds the (NUL-separated) minimum key of each child;
* an internal node's children are Handles (Refs) to subtree nodes;
* a leaf's children are Handles (Refs) to the stored values.

The lookup procedure mirrors the paper's get-file procedure (fig. 4 /
Algorithm 3): at each node it strictly selects the *keys blob* of the
child it will descend into (the data it needs immediately) and shallowly
encodes the child itself (the TreeRef it will need next) - so the minimum
repository of every step is one node's keys, never the whole tree.
Table 2's formulas for invocations / data accessed / memory footprint are
verified against this real implementation by instrumented traversal.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..codelets.stdlib import int_blob
from ..core.handle import Handle
from ..core.limits import ResourceLimits
from ..fixpoint.runtime import Fixpoint

SEPARATOR = b"\x00"

GET_SOURCE = '''\
"""Descend one level of a B+-tree (the paper's Algorithm 3 pattern).

Input tree: [rlimit, get, key, keys_blob, node_ref, depth]
  - keys_blob: strictly-resolved minimum keys of the current node
  - node_ref:  shallow TreeRef of the current node
  - depth:     remaining levels below this node (0 => leaf)
"""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    rlimit = entries[0]
    get = entries[1]
    key = entries[2]
    keys_blob = entries[3]
    node = entries[4]
    depth = entries[5]
    keys = fix.read_blob(keys_blob).split(b"\\x00")
    target = fix.read_blob(key)
    remaining = int.from_bytes(fix.read_blob(depth), "little")
    # Rightmost child whose minimum key <= target.
    lo = 0
    hi = len(keys) - 1
    index = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        if keys[mid] <= target:
            index = mid
            lo = mid + 1
        else:
            hi = mid - 1
    if remaining == 0:
        if keys[index] != target:
            return fix.create_blob(b"")  # key absent
        return fix.selection(node, index + 1)  # +1 skips the keys blob
    child = fix.selection(node, index + 1)
    next_keys = fix.strict(fix.selection(child, 0))
    next_node = fix.shallow(child)
    next_depth = fix.create_blob((remaining - 1).to_bytes(8, "little"))
    tree = fix.create_tree([rlimit, get, key, next_keys, next_node, next_depth])
    return fix.application(tree)
'''


@dataclass
class BPTree:
    """A built tree: root handle, depth (levels below root), and shape."""

    root: Handle
    depth: int
    arity: int
    key_count: int
    node_count: int
    keys_bytes_per_node: List[int]  # mean keys-blob size per level

    @property
    def levels(self) -> int:
        """Nodes on a root-to-leaf path (the paper's Table 2 ``d``)."""
        return self.depth + 1


def required_depth(key_count: int, arity: int) -> int:
    """Levels-below-root needed so every node has at most ``arity`` children."""
    if key_count <= arity:
        return 0
    return math.ceil(math.log(key_count, arity)) - 1


def build_bptree(
    fp: Fixpoint,
    keys: Sequence[bytes],
    values: Sequence[bytes],
    arity: int,
) -> BPTree:
    """Bulk-load a B+-tree from sorted unique keys."""
    if len(keys) != len(values):
        raise ValueError("keys and values must pair up")
    if arity < 2:
        raise ValueError("arity must be at least 2")
    if sorted(keys) != list(keys):
        raise ValueError("keys must be sorted")
    repo = fp.repo
    node_count = 0
    level_key_bytes: List[int] = []

    # Leaf level: [keys_blob, value0, value1, ...]
    entries: List[Tuple[bytes, Handle]] = []
    for key, value in zip(keys, values):
        entries.append((key, repo.put_blob(value).as_ref()))
    depth = 0
    while True:
        nodes: List[Tuple[bytes, Handle]] = []
        blob_sizes = []
        for i in range(0, len(entries), arity):
            group = entries[i : i + arity]
            keys_blob = SEPARATOR.join(k for k, _ in group)
            keys_handle = repo.put_blob(keys_blob).as_ref()
            node = repo.put_tree([keys_handle] + [h for _, h in group])
            nodes.append((group[0][0], node.as_ref()))
            blob_sizes.append(len(keys_blob))
            node_count += 1
        level_key_bytes.append(
            sum(blob_sizes) // max(1, len(blob_sizes))
        )
        if len(nodes) == 1:
            root = nodes[0][1].as_object()
            return BPTree(
                root=root,
                depth=depth,
                arity=arity,
                key_count=len(keys),
                node_count=node_count,
                keys_bytes_per_node=list(reversed(level_key_bytes)),
            )
        entries = nodes
        depth += 1


def compile_get(fp: Fixpoint) -> Handle:
    return fp.compile(GET_SOURCE, "bptree-get")


def lookup_thunk(
    fp: Fixpoint,
    tree: BPTree,
    get_fn: Handle,
    key: bytes,
    limits: ResourceLimits = ResourceLimits(),
) -> Handle:
    """The Encode whose evaluation performs one lookup."""
    repo = fp.repo
    key_handle = repo.put_blob(key)
    root_keys = repo.put_tree(
        [tree.root, Handle.of_blob(int_blob(0))]
    ).make_selection().wrap_strict()
    root_ref = tree.root.make_identification().wrap_shallow()
    invocation = repo.put_tree(
        [
            limits.handle(),
            get_fn,
            key_handle,
            root_keys,
            root_ref,
            repo.put_blob(int_blob(tree.depth)),
        ]
    )
    return invocation.make_application().wrap_strict()


def lookup(fp: Fixpoint, tree: BPTree, get_fn: Handle, key: bytes) -> bytes:
    """Execute one lookup on the real runtime; returns the value payload
    (empty bytes when the key is absent)."""
    result = fp.eval(lookup_thunk(fp, tree, get_fn, key))
    return fp.repo.get_blob(result).data


# ----------------------------------------------------------------------
# Table 2: analytic access-cost formulas (verified against the real tree)


@dataclass(frozen=True)
class AccessCosts:
    """Per-query costs in Table 2's terms."""

    invocations: int
    data_accessed: int  # bytes
    memory_footprint: int  # peak bytes resident


def fixpoint_costs(
    levels: int, arity: int, key_size: int = 22, entry_size: int = 32
) -> AccessCosts:
    """Fixpoint row: d invocations, a*d*O(key) accessed, a*O(key) peak."""
    per_node_keys = arity * key_size
    return AccessCosts(
        invocations=levels,
        data_accessed=levels * per_node_keys,
        memory_footprint=per_node_keys,
    )


def ray_cps_costs(
    levels: int, arity: int, key_size: int = 22, entry_size: int = 32
) -> AccessCosts:
    """Ray CPS row: 2d invocations; keys *and* child-ref arrays accessed."""
    per_node = arity * (key_size + entry_size)
    return AccessCosts(
        invocations=2 * levels,
        data_accessed=levels * per_node,
        memory_footprint=per_node,
    )


def ray_blocking_costs(
    levels: int, arity: int, key_size: int = 22, entry_size: int = 32
) -> AccessCosts:
    """Ray blocking row: 1 invocation holding everything it ever fetched."""
    per_node = arity * (key_size + entry_size)
    return AccessCosts(
        invocations=1,
        data_accessed=levels * per_node,
        memory_footprint=levels * per_node,
    )


# ----------------------------------------------------------------------
# Instrumented reference walker (counts what each style actually touches)


@dataclass
class WalkStats:
    invocations: int = 0
    gets: int = 0
    bytes_fetched: int = 0
    peak_resident: int = 0


def walk_real_tree(
    fp: Fixpoint, tree: BPTree, key: bytes, style: str
) -> WalkStats:
    """Walk the *real* stored tree the way each system would, counting
    accesses.  Styles: 'fixpoint', 'ray-cps', 'ray-blocking'."""
    repo = fp.repo
    stats = WalkStats()
    resident = 0
    node = tree.root
    for level in range(tree.levels):
        node_tree = repo.get_tree(node)
        keys_blob = repo.get_blob(node_tree[0].as_object()).data
        keys = keys_blob.split(SEPARATOR)
        if style == "fixpoint":
            stats.invocations += 1
            stats.gets += 1  # the strictly-selected keys blob
            stats.bytes_fetched += len(keys_blob)
            resident = len(keys_blob)  # previous node's keys are released
        else:
            child_refs_bytes = 32 * (len(node_tree) - 1)
            stats.gets += 2  # keys array + child handle array
            stats.bytes_fetched += len(keys_blob) + child_refs_bytes
            if style == "ray-blocking":
                stats.invocations = 1
                resident += len(keys_blob) + child_refs_bytes
            else:  # ray-cps: one continuation per get boundary
                stats.invocations += 2
                resident = len(keys_blob) + child_refs_bytes
        stats.peak_resident = max(stats.peak_resident, resident)
        # Descend (shared logic; identical child choice in all styles).
        index = 0
        lo, hi = 0, len(keys) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if keys[mid] <= key:
                index = mid
                lo = mid + 1
            else:
                hi = mid - 1
        node = node_tree[index + 1].as_object()
    return stats


def sample_queries(
    keys: Sequence[bytes], count: int, seed: int = 0
) -> List[bytes]:
    rng = random.Random(seed)
    return [keys[rng.randrange(len(keys))] for _ in range(count)]
