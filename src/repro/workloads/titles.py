"""Deterministic article-title generation (the fig. 9 key set).

The paper uses the list of English Wikipedia article titles: about six
million entries averaging 22 bytes.  This generator produces a
deterministic set with the same statistics; tests use tens of thousands,
the analytic fig. 9 model uses the full six million (counts only, no
materialization).
"""

from __future__ import annotations

import random
from typing import List

PAPER_TITLE_COUNT = 6_000_000
PAPER_MEAN_TITLE_BYTES = 22

_TOPICS = (
    "Battle Treaty River Lake County Museum Castle Album Song Opera "
    "Island Comet Bridge Abbey Canal Tower Creek Ridge Point Bay Fort "
    "Mill Park Hall Cove Glen Peak Vale Moor Marsh Dale Firth"
).split()

_QUALIFIERS = "North South East West Upper Lower New Old Great Little".split()


def make_titles(count: int, seed: int = 7) -> List[bytes]:
    """``count`` unique, sorted titles averaging ~22 bytes."""
    rng = random.Random(seed)
    titles: set[bytes] = set()
    while len(titles) < count:
        topic = rng.choice(_TOPICS)
        if rng.random() < 0.55:
            title = f"{topic}_{rng.randrange(10**15):015d}"
        else:
            qualifier = rng.choice(_QUALIFIERS)
            title = f"{qualifier}_{topic}_{rng.randrange(10**11):011d}"
        titles.add(title.encode("ascii"))
    return sorted(titles)[:count]


def mean_length(titles: List[bytes]) -> float:
    if not titles:
        return 0.0
    return sum(len(t) for t in titles) / len(titles)
