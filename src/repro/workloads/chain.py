"""The fig. 7b workload: a 500-deep chain of increment functions.

Provides the **real chain** (nested application thunks evaluated on the
in-process runtime - the result of a 500-chain over 0 is 500) and the
**latency models** for the three systems' orchestration styles:

* **Fixpoint** expresses the whole chain in one serializable object graph:
  the client builds and uploads it once, the server forces 500 tail calls
  locally at ~1.5 us each.
* **Pheromone** registers the workflow once; each step fires locally off
  its trigger bucket (~tens of microseconds).
* **Ray** couples each dependency to the client that created it: every
  step is a fresh ``ray.remote`` round trip from the client, so the chain
  pays one client RTT *per invocation* - 500 RTTs.

The models are pure functions of the calibration constants; the paper's
nearby/remote numbers fall straight out (see bench/fig7b).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.calibration import (
    FIX_CLIENT_OBJECT,
    FIXPOINT_INVOKE,
    PHEROMONE_CHAIN_STEP,
    PHEROMONE_INVOKE,
    RAY_TASK_OVERHEAD,
    RTT_NEARBY,
    RTT_REMOTE,
    TCP_STREAM_BW,
)
from ..codelets.stdlib import blob_int, int_blob
from ..core.handle import HANDLE_BYTES, Handle
from ..fixpoint.runtime import Fixpoint


def build_chain(fp: Fixpoint, length: int, start: int = 0) -> Handle:
    """Nested increment applications: the whole chain is one Fix object."""
    current = fp.repo.put_blob(int_blob(start))
    inc = fp.stdlib["increment"]
    for _ in range(length):
        thunk = fp.invoke(inc, [current])
        current = thunk.wrap_strict()
    return current


def run_chain(fp: Fixpoint, length: int, start: int = 0) -> int:
    result = fp.eval(build_chain(fp, length, start))
    return blob_int(fp.repo.get_blob(result).data)


# ----------------------------------------------------------------------
# Orchestration latency models (fig. 7b)


@dataclass(frozen=True)
class ChainLatency:
    system: str
    seconds: float
    roundtrips: int


def fixpoint_chain_latency(length: int, rtt: float) -> ChainLatency:
    """Client builds + uploads the chain once; server forces it locally."""
    # Each chain link is ~3 handles of tree plus bookkeeping on the wire.
    wire_bytes = length * 4 * HANDLE_BYTES
    build = length * FIX_CLIENT_OBJECT
    upload = wire_bytes / TCP_STREAM_BW
    execute = length * FIXPOINT_INVOKE
    return ChainLatency("Fixpoint", build + rtt + upload + execute, 1)


def pheromone_chain_latency(length: int, rtt: float) -> ChainLatency:
    """One registration round trip; steps fire locally off buckets."""
    register = rtt + PHEROMONE_INVOKE
    execute = length * PHEROMONE_CHAIN_STEP
    return ChainLatency("Pheromone", register + execute, 1)


def ray_chain_latency(length: int, rtt: float) -> ChainLatency:
    """Every step is a client-coupled ray.remote + ray.get round trip."""
    per_step = rtt + RAY_TASK_OVERHEAD
    return ChainLatency("Ray", length * per_step, length)


def chain_latencies(length: int = 500, nearby: bool = True) -> list[ChainLatency]:
    rtt = RTT_NEARBY if nearby else RTT_REMOTE
    return [
        fixpoint_chain_latency(length, rtt),
        pheromone_chain_latency(length, rtt),
        ray_chain_latency(length, rtt),
    ]
