"""The fig. 8b workload: count-string + merge-counts in map-reduce style.

Two functions (paper section 5.3.2):

* ``count-string`` takes a chunk and a string, reports the number of
  non-overlapping occurrences;
* ``merge-counts`` merges two results in a binary reduction.

This module provides both the **real codelets** (run on the in-process
Fixpoint runtime against miniature corpora; correctness asserted against
``bytes.count``) and the **declared-size JobGraph** executed by every
simulated platform at paper scale.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..baselines.calibration import MEMORY_SCAN_BW
from ..codelets.stdlib import blob_int
from ..core.handle import Handle
from ..dist.graph import JobGraph, TaskSpec
from ..fixpoint.runtime import Fixpoint
from .corpus import ShardSpec

COUNT_STRING_SOURCE = '''\
"""Count non-overlapping occurrences of a needle in one chunk."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    chunk = fix.read_blob(entries[2])
    needle = fix.read_blob(entries[3])
    return fix.create_blob(chunk.count(needle).to_bytes(8, "little"))
'''

MERGE_COUNTS_SOURCE = '''\
"""Merge two counts (binary reduction step)."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    a = int.from_bytes(fix.read_blob(entries[2]), "little")
    b = int.from_bytes(fix.read_blob(entries[3]), "little")
    return fix.create_blob((a + b).to_bytes(8, "little"))
'''


def compile_wordcount(fp: Fixpoint) -> tuple[Handle, Handle]:
    """Compile the two codelets; returns (count_string, merge_counts)."""
    return (
        fp.compile(COUNT_STRING_SOURCE, "count-string"),
        fp.compile(MERGE_COUNTS_SOURCE, "merge-counts"),
    )


def count_corpus(fp: Fixpoint, shards: Sequence[bytes], needle: bytes) -> int:
    """Run the real map-reduce on the in-process runtime.

    Builds one count-string thunk per shard and a binary merge tree, all
    lazily, then strictly evaluates the root - exactly the dataflow the
    distributed engine schedules at scale.
    """
    count_fn, merge_fn = compile_wordcount(fp)
    needle_handle = fp.repo.put_blob(needle)
    level = [
        fp.invoke(count_fn, [fp.repo.put_blob(shard), needle_handle]).wrap_strict()
        for shard in shards
    ]
    while len(level) > 1:
        next_level: List[Handle] = []
        for i in range(0, len(level) - 1, 2):
            merged = fp.invoke(merge_fn, [level[i], level[i + 1]])
            next_level.append(merged.wrap_strict())
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    result = fp.eval(level[0])
    return blob_int(fp.repo.get_blob(result).data)


# ----------------------------------------------------------------------
# Paper-scale graph for the simulated platforms


def build_wordcount_graph(
    shards: Sequence[ShardSpec],
    scan_bandwidth: float = MEMORY_SCAN_BW,
    merge_compute: float = 2e-6,
    task_memory: int = 1 << 30,
    scan_jitter: float = 0.30,
    seed: int = 97,
) -> JobGraph:
    """The fig. 8b dataflow: one count per shard, binary merge tree.

    ``compute_seconds`` of a count task is the in-memory scan time of its
    shard, jittered deterministically by +/- ``scan_jitter`` (match-rate
    and page-cache effects make real shard scans uneven; stragglers shape
    the tail and the idle percentage).
    """
    rng = random.Random(seed)
    graph = JobGraph()
    level: List[str] = []
    for spec in shards:
        graph.add_data(spec.name, spec.size, spec.location)
        base = spec.size / scan_bandwidth
        task = TaskSpec(
            name=f"count:{spec.name}",
            fn="count-string",
            inputs=(spec.name,),
            output=f"cnt:{spec.name}",
            output_size=8,
            compute_seconds=base * (1.0 + scan_jitter * (2 * rng.random() - 1)),
            memory_bytes=task_memory,
        )
        graph.add_task(task)
        level.append(task.output)
    merge_index = 0
    while len(level) > 1:
        next_level: List[str] = []
        for i in range(0, len(level) - 1, 2):
            task = TaskSpec(
                name=f"merge:{merge_index}",
                fn="merge-counts",
                inputs=(level[i], level[i + 1]),
                output=f"mrg:{merge_index}",
                output_size=8,
                compute_seconds=merge_compute,
                memory_bytes=64 << 20,
            )
            graph.add_task(task)
            next_level.append(task.output)
            merge_index += 1
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return graph


def map_only_graph(
    shards: Sequence[ShardSpec],
    scan_bandwidth: float = MEMORY_SCAN_BW,
    task_memory: int = 1 << 30,
    scan_jitter: float = 0.30,
    seed: int = 97,
) -> JobGraph:
    """The map phase alone - all Pheromone can express (section 5.3.2)."""
    rng = random.Random(seed)
    graph = JobGraph()
    for spec in shards:
        graph.add_data(spec.name, spec.size, spec.location)
        base = spec.size / scan_bandwidth
        graph.add_task(
            TaskSpec(
                name=f"count:{spec.name}",
                fn="count-string",
                inputs=(spec.name,),
                output=f"cnt:{spec.name}",
                output_size=8,
                compute_seconds=base * (1.0 + scan_jitter * (2 * rng.random() - 1)),
                memory_bytes=task_memory,
            )
        )
    return graph
