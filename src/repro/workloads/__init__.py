"""``repro.workloads`` - the paper's evaluation workloads.

Each workload has two layers: real codelets exercised on the in-process
runtime (correctness), and declared-size job graphs executed by the
simulated platforms (performance shape at paper scale).
"""

from .bptree import (
    AccessCosts,
    BPTree,
    GET_SOURCE,
    WalkStats,
    build_bptree,
    compile_get,
    fixpoint_costs,
    lookup,
    lookup_thunk,
    ray_blocking_costs,
    ray_cps_costs,
    required_depth,
    sample_queries,
    walk_real_tree,
)
from .chain import (
    ChainLatency,
    build_chain,
    chain_latencies,
    fixpoint_chain_latency,
    pheromone_chain_latency,
    ray_chain_latency,
    run_chain,
)
from .compilejob import (
    COMPILE_SOURCE,
    LINK_SOURCE,
    build_compile_graph,
    compile_project,
    make_headers,
    make_source,
)
from .corpus import (
    ShardSpec,
    declare_shards,
    make_corpus,
    make_shard,
    paper_shards,
    reference_count,
)
from .oneoff import ADD_TO_SELF_SOURCE, build_oneoff_graph
from .titles import make_titles, mean_length
from .wordcount import (
    COUNT_STRING_SOURCE,
    MERGE_COUNTS_SOURCE,
    build_wordcount_graph,
    compile_wordcount,
    count_corpus,
    map_only_graph,
)

__all__ = [
    "ADD_TO_SELF_SOURCE",
    "AccessCosts",
    "BPTree",
    "COMPILE_SOURCE",
    "COUNT_STRING_SOURCE",
    "ChainLatency",
    "GET_SOURCE",
    "LINK_SOURCE",
    "MERGE_COUNTS_SOURCE",
    "ShardSpec",
    "WalkStats",
    "build_bptree",
    "build_chain",
    "build_compile_graph",
    "build_oneoff_graph",
    "build_wordcount_graph",
    "chain_latencies",
    "compile_get",
    "compile_project",
    "compile_wordcount",
    "count_corpus",
    "declare_shards",
    "fixpoint_chain_latency",
    "fixpoint_costs",
    "lookup",
    "lookup_thunk",
    "make_corpus",
    "make_headers",
    "make_shard",
    "make_source",
    "make_titles",
    "map_only_graph",
    "mean_length",
    "paper_shards",
    "pheromone_chain_latency",
    "ray_blocking_costs",
    "ray_chain_latency",
    "ray_cps_costs",
    "reference_count",
    "required_depth",
    "run_chain",
    "sample_queries",
    "walk_real_tree",
]
