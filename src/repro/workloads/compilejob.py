"""The fig. 10 workload: burst-parallel compilation of ~2,000 C files.

The paper compiles a project of almost 2,000 translation units with
libclang in parallel (each depending on its source plus system and clang
headers) followed by one liblld link combining every object file.

Two layers, like the other workloads:

* **real mini-compiler codelets** - a deterministic toy "compiler" that
  extracts symbol definitions from C-ish source and a "linker" that
  merges symbol tables, rejecting duplicates; enough to make the dataflow
  real and failure-injectable (duplicate symbols, missing headers);
* **the declared-size JobGraph** at paper scale, with per-TU compile
  times drawn deterministically from a long-tailed distribution.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..core.handle import Handle
from ..dist.graph import CLIENT, JobGraph, TaskSpec
from ..fixpoint.runtime import Fixpoint

PAPER_TU_COUNT = 1987  # "almost 2,000 C source files"
MEAN_SOURCE_BYTES = 30 << 10
HEADER_BUNDLE_BYTES = 45 << 20  # system + clang headers, shared
OBJECT_BYTES = 96 << 10
MEAN_COMPILE_SECONDS = 2.6
LINK_SECONDS = 7.0

COMPILE_SOURCE = '''\
"""Toy libclang: 'compile' a C-ish source into a symbol-table object.

Symbols declared extern in the headers are satisfied by the runtime
library; anything else a TU calls but does not define becomes an
undefined ("U") entry for the linker to resolve across TUs.
"""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    source = fix.read_blob(entries[2]).decode("ascii")
    headers = fix.read_blob(entries[3]).decode("ascii")
    known = set()
    for line in headers.splitlines():
        if line.startswith("extern "):
            known.add(line.split()[2].rstrip(";"))
    defined = []
    used = []
    for line in source.splitlines():
        parts = line.split()
        if not parts:
            continue
        if parts[0] in ("int", "void") and len(parts) > 1:
            defined.append(parts[1].rstrip("();"))
        if parts[0] == "call" and len(parts) > 1:
            symbol = parts[1]
            if symbol not in known and symbol not in defined:
                used.append(symbol)
    table = "\\n".join(["D " + s for s in defined] + ["U " + s for s in used])
    return fix.create_blob(table.encode("ascii"))
'''

LINK_SOURCE = '''\
"""Toy liblld: merge symbol tables into an 'executable'."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    defined = set()
    used = set()
    for handle in entries[2:]:
        table = fix.read_blob(handle).decode("ascii")
        for line in table.splitlines():
            if not line:
                continue
            kind, symbol = line.split()
            if kind == "D":
                if symbol in defined:
                    raise ValueError("duplicate symbol " + symbol)
                defined.add(symbol)
            else:
                used.add(symbol)
    missing = sorted(s for s in used if s not in defined)
    if missing:
        raise ValueError("undefined symbols: " + ",".join(missing))
    listing = "\\n".join(sorted(defined))
    return fix.create_blob(("EXE\\n" + listing).encode("ascii"))
'''


def make_source(index: int, callees: Sequence[int]) -> bytes:
    """A toy translation unit defining ``fn_<index>`` and calling others."""
    lines = [f"int fn_{index}()" , "{"]
    for callee in callees:
        lines.append(f"call fn_{callee}")
    lines.append("}")
    return "\n".join(lines).encode("ascii")


def make_headers(extern_symbols: Sequence[str] = ()) -> bytes:
    lines = ["#pragma once"] + [f"extern int {s};" for s in extern_symbols]
    return "\n".join(lines).encode("ascii")


def compile_project(
    fp: Fixpoint, sources: Sequence[bytes], headers: bytes
) -> Handle:
    """Run the real mini compile+link pipeline on the in-process runtime."""
    compile_fn = fp.compile(COMPILE_SOURCE, "libclang")
    link_fn = fp.compile(LINK_SOURCE, "liblld")
    headers_handle = fp.repo.put_blob(headers)
    objects = [
        fp.invoke(compile_fn, [fp.repo.put_blob(src), headers_handle]).wrap_strict()
        for src in sources
    ]
    return fp.eval(fp.invoke(link_fn, objects).wrap_strict())


# ----------------------------------------------------------------------
# Paper-scale graph


def build_compile_graph(
    tu_count: int = PAPER_TU_COUNT,
    seed: int = 11,
    mean_compile_seconds: float = MEAN_COMPILE_SECONDS,
    header_bytes: int = HEADER_BUNDLE_BYTES,
) -> JobGraph:
    """~2,000 parallel compiles + one link, inputs starting at the client.

    Compile times are deterministic draws from a long-tailed (lognormal)
    distribution - big TUs exist in every real project and shape the
    tail of fig. 10.
    """
    rng = random.Random(seed)
    graph = JobGraph()
    graph.add_data("headers", header_bytes, CLIENT)
    objects: List[str] = []
    for i in range(tu_count):
        src_name = f"src-{i:04d}.c"
        size = max(2 << 10, int(rng.lognormvariate(0, 0.6) * MEAN_SOURCE_BYTES))
        graph.add_data(src_name, size, CLIENT)
        compute = max(0.3, rng.lognormvariate(0, 0.45) * mean_compile_seconds)
        task = TaskSpec(
            name=f"cc-{i:04d}",
            fn="libclang",
            inputs=(src_name, "headers"),
            output=f"obj-{i:04d}.o",
            output_size=OBJECT_BYTES,
            compute_seconds=compute,
            memory_bytes=1 << 30,
        )
        graph.add_task(task)
        objects.append(task.output)
    graph.add_task(
        TaskSpec(
            name="link",
            fn="liblld",
            inputs=tuple(objects),
            output="project.exe",
            output_size=64 << 20,
            compute_seconds=LINK_SECONDS,
            memory_bytes=8 << 30,
        )
    )
    return graph
