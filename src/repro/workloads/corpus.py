"""Synthetic Wikipedia-like corpora (deterministic, seeded).

The paper counts a 3-character string across a 96 GiB English Wikipedia
dump sharded into 984 x 100 MiB chunks.  Real text at that scale is
neither available offline nor necessary: the experiment's behaviour
depends on shard *sizes and placement*, while operator correctness only
needs *some* text.  This module generates:

* miniature **real** shards (pseudo-English from a fixed vocabulary) for
  correctness tests of the count/merge codelets, and
* **declared-size** shard descriptors for the simulator at paper scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

MIB = 1 << 20

#: A small fixed vocabulary; enough to make substring counting
#: non-trivial (overlaps, punctuation, repeated trigrams).
VOCABULARY = (
    "the of and to in a is that for it as was with be by on not he this are "
    "or his from at which but have an had they you were their one all we can "
    "her has there been if more when will would who so no out up into than "
    "its time only could other these two may then do first any my now such "
    "like our over man me even most made after also did many before must "
    "through back years where much your way well down should because each "
    "just those people how too little state good very make world still own "
    "see men work long get here between both life being under never day same "
    "another know while last might us great old year off come since against "
    "go came right used take three"
).split()


def make_shard(size: int, seed: int) -> bytes:
    """One pseudo-text shard of exactly ``size`` bytes."""
    rng = random.Random(seed)
    words: List[str] = []
    length = 0
    while length < size + 16:
        word = rng.choice(VOCABULARY)
        words.append(word)
        length += len(word) + 1
    text = " ".join(words).encode("ascii")
    return text[:size]


def make_corpus(shards: int, shard_size: int, seed: int = 42) -> List[bytes]:
    """``shards`` real shards of ``shard_size`` bytes each."""
    return [make_shard(shard_size, seed * 1_000_003 + i) for i in range(shards)]


@dataclass(frozen=True)
class ShardSpec:
    """A declared-size shard and the node holding it."""

    name: str
    size: int
    location: str


def declare_shards(
    shards: int,
    shard_size: int,
    nodes: Sequence[str],
    seed: int = 42,
) -> List[ShardSpec]:
    """Paper-scale shard descriptors scattered randomly across ``nodes``
    (section 5.3.2: "the 100 MiB chunks are scattered among the 10 nodes
    randomly")."""
    rng = random.Random(seed)
    return [
        ShardSpec(
            name=f"wiki-chunk-{i:04d}",
            size=shard_size,
            location=rng.choice(list(nodes)),
        )
        for i in range(shards)
    ]


def paper_shards(nodes: Sequence[str], seed: int = 42) -> List[ShardSpec]:
    """The paper's configuration: 984 shards of 100 MiB."""
    return declare_shards(984, 100 * MIB, nodes, seed)


def reference_count(shards: Sequence[bytes], needle: bytes) -> int:
    """Ground truth: non-overlapping occurrences across all shards."""
    return sum(shard.count(needle) for shard in shards)
