"""The fig. 8a workload: 1,024 one-off functions on remote-storage inputs.

Each invocation depends on a distinct input on a remote data server with
150 ms response latency, requests 1 CPU and 1 GB of memory, and performs a
trivial computation ("adds the input to itself").  The server offers 32
cores and 64 GiB, so at most 32 provisioned invocations can run - but up
to 64 can *hold memory* while fetching under the oversubscribed
"internal I/O" configuration (200 schedulable cores), which is precisely
the starvation fig. 8a quantifies.
"""

from __future__ import annotations

from ..dist.graph import EXTERNAL, JobGraph, TaskSpec

PAPER_TASKS = 1024
PAPER_INPUT_BYTES = 8 << 10  # small objects: latency-dominated
PAPER_COMPUTE_SECONDS = 3e-6  # fig. 8a: ~3 ms user time over 1,024 tasks
GB = 10**9


def build_oneoff_graph(
    tasks: int = PAPER_TASKS,
    input_bytes: int = PAPER_INPUT_BYTES,
    compute_seconds: float = PAPER_COMPUTE_SECONDS,
    memory_bytes: int = GB,
) -> JobGraph:
    """``tasks`` independent invocations, each on one external input."""
    graph = JobGraph()
    for i in range(tasks):
        name = f"input-{i:04d}"
        graph.add_data(name, input_bytes, EXTERNAL)
        graph.add_task(
            TaskSpec(
                name=f"oneoff-{i:04d}",
                fn="add-to-self",
                inputs=(name,),
                output=f"out-{i:04d}",
                output_size=input_bytes,
                compute_seconds=compute_seconds,
                cores=1,
                memory_bytes=memory_bytes,
            )
        )
    return graph


ADD_TO_SELF_SOURCE = '''\
"""The fig. 8a function body: add the input to itself."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    data = fix.read_blob(entries[2])
    doubled = bytes((2 * b) % 256 for b in data)
    return fix.create_blob(doubled)
'''
