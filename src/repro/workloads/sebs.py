"""The SeBS ports of paper section 5.6: dynamic-html and compression.

Both are Flatware programs: inputs arrive as command-line arguments and a
Unix-like filesystem of dependencies (the template, the bucket files),
and the result leaves on stdout - exactly the porting recipe the paper
describes (modify functions to read inputs from argv and the filesystem;
represent the dependencies as Fix objects in Flatware's format).

The in-program template renderer and RLE compressor are compact,
sandbox-safe subsets of :mod:`repro.flatware.template` and
:mod:`repro.flatware.archive`; the full host-side implementations verify
their outputs in the tests.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.handle import Handle
from ..fixpoint.runtime import Fixpoint
from ..flatware.wasi import compile_program, run_program

DYNAMIC_HTML_SOURCE = '''\
def _render(template, context):
    out = []
    i = 0
    while i < len(template):
        start = template.find("{{", i)
        loop = template.find("{%", i)
        if start < 0 and loop < 0:
            out.append(template[i:])
            i = len(template)
        elif loop >= 0 and (start < 0 or loop < start):
            out.append(template[i:loop])
            end = template.index("%}", loop)
            tag = template[loop + 2 : end].strip().split()
            close = template.index("{% endfor %}", end)
            body = template[end + 2 : close]
            for item in context[tag[3]]:
                scoped = dict(context)
                scoped[tag[1]] = item
                out.append(_render(body, scoped))
            i = close + len("{% endfor %}")
        else:
            out.append(template[i:start])
            end = template.index("}}", start)
            name = template[start + 2 : end].strip()
            out.append(str(context[name]))
            i = end + 2
    return "".join(out)


def wasi_main(wasi):
    username = wasi["args"][0]
    template = wasi["read_file"]("templates/template.html").decode("ascii")
    items = [line for line in
             wasi["read_file"]("data/items.txt").decode("ascii").splitlines()
             if line]
    html = _render(template, {"username": username, "items": items})
    wasi["write_stdout"](html.encode("ascii"))
'''

COMPRESSION_SOURCE = '''\
def _compress(data):
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        run = 1
        while i + run < n and run < 255 and data[i + run] == byte:
            run += 1
        if run >= 4:
            out += bytes((254, run, byte))
            i += run
        elif byte == 254:
            out += bytes((254, 0, 254))
            i += 1
        else:
            out.append(byte)
            i += 1
    return bytes(out)


def wasi_main(wasi):
    bucket = wasi["args"][0]
    names = sorted(wasi["list_dir"](bucket))
    parts = [b"FIXAR" + str(len(names)).encode("ascii") + b"\\n"]
    for name in names:
        payload = wasi["read_file"](bucket + "/" + name)
        raw = name.encode("ascii")
        header = (str(len(raw)) + " " + str(len(payload))).encode("ascii")
        parts.append(header + b"\\n" + raw + payload)
    wasi["write_stdout"](_compress(b"".join(parts)))
'''

DEFAULT_TEMPLATE = """<html><body>
<h1>Hello {{ username }}!</h1>
<ul>
{% for item in items %}  <li>{{ item }}</li>
{% endfor %}</ul>
</body></html>"""


def compile_dynamic_html(fp: Fixpoint) -> Handle:
    return compile_program(fp, DYNAMIC_HTML_SOURCE, "dynamic-html")


def compile_compression(fp: Fixpoint) -> Handle:
    return compile_program(fp, COMPRESSION_SOURCE, "compression")


def run_dynamic_html(
    fp: Fixpoint,
    username: str,
    items: Sequence[str],
    template: str = DEFAULT_TEMPLATE,
) -> bytes:
    """Render the SeBS dynamic-html page for ``username``."""
    program = compile_dynamic_html(fp)
    files = {
        "templates": {"template.html": template.encode("ascii")},
        "data": {"items.txt": "\n".join(items).encode("ascii")},
    }
    return run_program(fp, program, [username], files)


def run_compression(fp: Fixpoint, bucket: Dict[str, bytes]) -> bytes:
    """Archive + compress every file in ``bucket`` (name -> payload)."""
    program = compile_compression(fp)
    files = {"bucket": dict(bucket)}
    return run_program(fp, program, ["bucket"], files)
