"""A miniature Jinja-style template engine (for the SeBS dynamic-html port).

SeBS's ``dynamic-html`` renders an HTML page from a template with the
Jinja library; the paper ports it to Fix via Flatware.  This module is the
reproduction's "jinja2 dependency": a deterministic, dependency-free
subset supporting::

    {{ variable }}            - substitution (dotted lookups allowed)
    {% for x in seq %}...{% endfor %}
    {% if cond %}...{% else %}...{% endif %}   - truthiness of a variable

It is deliberately small but real: parsed into an AST, rendered
recursively, with informative errors - and it is sandbox-compatible, so
codelets can embed the same logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

from ..core.errors import FixError


class TemplateError(FixError):
    """Malformed template or failed lookup."""


@dataclass
class _Text:
    text: str


@dataclass
class _Var:
    path: str


@dataclass
class _For:
    var: str
    seq: str
    body: List[Any] = field(default_factory=list)


@dataclass
class _If:
    cond: str
    then: List[Any] = field(default_factory=list)
    otherwise: List[Any] = field(default_factory=list)


Node = Union[_Text, _Var, _For, _If]


def _tokenize(source: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    while i < len(source):
        var = source.find("{{", i)
        tag = source.find("{%", i)
        nxt = min(x for x in (var, tag, len(source)) if x >= 0)
        if nxt > i:
            tokens.append(source[i:nxt])
            i = nxt
            continue
        close = "}}" if source.startswith("{{", i) else "%}"
        end = source.find(close, i)
        if end < 0:
            raise TemplateError(f"unterminated tag at offset {i}")
        tokens.append(source[i : end + 2])
        i = end + 2
    return tokens


def _parse(tokens: List[str], pos: int, terminators: tuple) -> tuple:
    nodes: List[Node] = []
    while pos < len(tokens):
        token = tokens[pos]
        if token.startswith("{{"):
            nodes.append(_Var(token[2:-2].strip()))
            pos += 1
        elif token.startswith("{%"):
            body = token[2:-2].strip()
            keyword = body.split()[0] if body else ""
            if keyword in terminators:
                return nodes, pos, keyword
            if keyword == "for":
                parts = body.split()
                if len(parts) != 4 or parts[2] != "in":
                    raise TemplateError(f"bad for tag: {body!r}")
                node = _For(var=parts[1], seq=parts[3])
                node.body, pos, _ = _parse(tokens, pos + 1, ("endfor",))
                nodes.append(node)
                pos += 1
            elif keyword == "if":
                parts = body.split()
                if len(parts) != 2:
                    raise TemplateError(f"bad if tag: {body!r}")
                node = _If(cond=parts[1])
                node.then, pos, stop = _parse(tokens, pos + 1, ("else", "endif"))
                if stop == "else":
                    node.otherwise, pos, _ = _parse(tokens, pos + 1, ("endif",))
                nodes.append(node)
                pos += 1
            else:
                raise TemplateError(f"unknown tag: {body!r}")
        else:
            nodes.append(_Text(token))
            pos += 1
    if terminators:
        raise TemplateError(f"missing closing tag {terminators}")
    return nodes, pos, ""


def _lookup(path: str, context: Dict[str, Any]) -> Any:
    current: Any = context
    for part in path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            raise TemplateError(f"undefined variable {path!r}")
    return current


def _render_nodes(nodes: List[Node], context: Dict[str, Any], out: List[str]) -> None:
    for node in nodes:
        if isinstance(node, _Text):
            out.append(node.text)
        elif isinstance(node, _Var):
            out.append(str(_lookup(node.path, context)))
        elif isinstance(node, _For):
            seq = _lookup(node.seq, context)
            for item in seq:
                scoped = dict(context)
                scoped[node.var] = item
                _render_nodes(node.body, scoped, out)
        elif isinstance(node, _If):
            try:
                value = _lookup(node.cond, context)
            except TemplateError:
                value = None
            branch = node.then if value else node.otherwise
            _render_nodes(branch, context, out)


def render(source: str, context: Dict[str, Any]) -> str:
    """Render ``source`` against ``context``."""
    nodes, _, __ = _parse(_tokenize(source), 0, ())
    out: List[str] = []
    _render_nodes(nodes, context, out)
    return "".join(out)
