"""Asyncify: automatic splitting of programs at I/O points (paper sec. 6).

*"Fix's visibility into data- and control flow suggests the possibility
of lightweight continuation capture, where existing programs are
automatically split at I/O operations."*  The paper leaves this to future
work; this module implements it via **deterministic replay**:

* the programmer writes *blocking-style* code as a generator -
  ``data = yield some_ref`` wherever the original program would have
  performed a read (the moral equivalent of Listing 2's ``ray.get``);
* the Asyncify prelude runs the generator, feeding it the I/O results
  recorded so far (the *replay log*, itself a Fix Tree);
* on the first **unrecorded** request, the prelude returns a new
  Application thunk whose replay log is extended with a Strict Encode of
  the request - so the *runtime* performs the I/O, then re-invokes;
* because codelets are deterministic, re-running the generator against
  the longer log reaches exactly the same state - replay *is* the
  continuation, with zero state-capture machinery.

Each invocation's minimum repository is just the program, its arguments,
and the log of results actually needed so far - the fine-grained
decomposition of Listing 3, produced automatically from Listing-2-style
code.  The cost is re-execution of the pure prefix (quadratic in the
number of I/O points), the standard replay/Asyncify trade-off.
"""

from __future__ import annotations

from typing import Sequence

from ..core.handle import Handle
from ..core.limits import ResourceLimits
from ..fixpoint.runtime import Fixpoint

ASYNCIFY_PRELUDE = '''\
def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    rlimit = entries[0]
    prog = entries[1]
    args_blob = entries[2]
    env = entries[3]
    replay_handle = entries[4]
    replay = list(fix.read_tree(replay_handle))
    args = fix.read_blob(args_blob)
    gen = io_main(fix, args, env)
    index = 0
    try:
        request = gen.send(None)
        while True:
            if index < len(replay):
                request = gen.send(replay[index])
                index += 1
            else:
                if fix.is_thunk(request):
                    pending = fix.strict(request)
                elif fix.is_encode(request):
                    pending = request
                else:
                    pending = fix.strict(fix.identification(request))
                new_log = fix.create_tree(replay + [pending])
                resolved_log = fix.strict(fix.identification(new_log))
                tree = fix.create_tree(
                    [rlimit, prog, args_blob, env, resolved_log]
                )
                return fix.application(tree)
    except StopIteration as stop:
        result = stop.value
        if result is None:
            return fix.create_blob(b"")
        return result


'''


def compile_io_program(fp: Fixpoint, source: str, name: str) -> Handle:
    """Compile a blocking-style generator program.

    ``source`` must define ``io_main(fix, args, env)`` as a generator
    that ``yield``s Handles it wants resolved and finally returns a
    Handle (or None).
    """
    return fp.compile(ASYNCIFY_PRELUDE + source, name)


def io_invocation(
    fp: Fixpoint,
    program: Handle,
    args: bytes,
    env: Sequence[Handle],
    limits: ResourceLimits = ResourceLimits(),
) -> Handle:
    """The initial thunk: empty replay log, environment of Refs."""
    repo = fp.repo
    invocation = repo.put_tree(
        [
            limits.handle(),
            program,
            repo.put_blob(args),
            repo.put_tree(list(env)),
            repo.put_tree([]),  # replay log starts empty
        ]
    )
    return invocation.make_application()


def run_io_program(
    fp: Fixpoint,
    program: Handle,
    args: bytes,
    env: Sequence[Handle],
    limits: ResourceLimits = ResourceLimits(),
) -> Handle:
    """Evaluate a blocking-style program to completion."""
    return fp.eval(io_invocation(fp, program, args, env, limits).wrap_strict())
