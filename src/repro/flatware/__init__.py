"""``repro.flatware`` - the POSIX compatibility layer over Fix Trees.

Filesystems as nested dirent Trees (paper fig. 4), a WASI-like program
driver (paper 4.1.4), and the SeBS-port dependencies: a Jinja-subset
template engine and a tar-like archive/RLE codec (paper 5.6).
"""

from .asyncify import (
    ASYNCIFY_PRELUDE,
    compile_io_program,
    io_invocation,
    run_io_program,
)
from .archive import (
    ArchiveError,
    compress,
    compress_archive,
    create_archive,
    decompress,
    extract_archive,
    extract_compressed,
)
from .fs import (
    GET_FILE_SOURCE,
    FileTree,
    PathError,
    build_fs,
    list_dir,
    read_dir,
    read_file,
    resolve_path,
)
from .template import TemplateError, render
from .wasi import FLATWARE_PRELUDE, compile_program, run_program

__all__ = [
    "ASYNCIFY_PRELUDE",
    "ArchiveError",
    "FLATWARE_PRELUDE",
    "FileTree",
    "GET_FILE_SOURCE",
    "PathError",
    "TemplateError",
    "build_fs",
    "compile_io_program",
    "compile_program",
    "io_invocation",
    "run_io_program",
    "compress",
    "compress_archive",
    "create_archive",
    "decompress",
    "extract_archive",
    "extract_compressed",
    "list_dir",
    "read_dir",
    "read_file",
    "render",
    "resolve_path",
    "run_program",
]
