"""Flatware: running Unix-style programs on the Fix API (paper 4.1.4).

The original Flatware implements the WASI interface in terms of the
Fixpoint API, letting an off-the-shelf CPython run unmodified.  Our
analog links a *prelude* in front of a user program: the prelude's
``_fix_apply`` parses the conventional Thunk layout

    [rlimit, program, argv_blob, stdin_blob, fs_root]

builds a WASI-like capability dict (args, stdin, ``read_file``,
``list_dir``, ``write_stdout``), calls the program's ``wasi_main(wasi)``,
and returns stdout as the result Blob.  Fixpoint is oblivious to the
layer - it is an ordinary unprivileged part of the procedure, compiled
and sandboxed like everything else.

User programs define::

    def wasi_main(wasi):
        name = wasi["args"][0]
        data = wasi["read_file"]("templates/hello.html")
        wasi["write_stdout"](data.replace(b"{}", name.encode("ascii")))
"""

from __future__ import annotations

from typing import Sequence

from ..core.handle import Handle
from ..core.limits import ResourceLimits
from ..fixpoint.runtime import Fixpoint
from .fs import FileTree, build_fs

FLATWARE_PRELUDE = '''\
def _fw_parse_dir(fix, handle):
    entries = fix.read_tree(handle)
    info = fix.read_blob(entries[0]).decode("ascii")
    names = []
    kinds = []
    for line in info.splitlines():
        kinds.append(line[0])
        names.append(line[2:])
    return names, kinds, entries


def _fw_walk(fix, root, path):
    current = root
    parts = [p for p in path.split("/") if p]
    for depth, part in enumerate(parts):
        names, kinds, entries = _fw_parse_dir(fix, current)
        found = -1
        for i, name in enumerate(names):
            if name == part:
                found = i
        if found < 0:
            raise ValueError("ENOENT: " + path)
        if kinds[found] == "f" and depth != len(parts) - 1:
            raise ValueError("ENOTDIR: " + part)
        current = entries[found + 1]
    return current


def _fw_make_wasi(fix, argv, stdin, fsroot):
    stdout = []

    def read_file(path):
        return fix.read_blob(_fw_walk(fix, fsroot, path))

    def list_dir(path):
        target = _fw_walk(fix, fsroot, path) if path else fsroot
        names, kinds, entries = _fw_parse_dir(fix, target)
        return list(names)

    def stat(path):
        target = _fw_walk(fix, fsroot, path)
        return {"size": fix.get_size(target), "is_dir": fix.is_tree(target)}

    def write_stdout(data):
        stdout.append(bytes(data))

    wasi = {
        "args": argv,
        "stdin": stdin,
        "read_file": read_file,
        "list_dir": list_dir,
        "stat": stat,
        "write_stdout": write_stdout,
    }
    return wasi, stdout


def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    argv_raw = fix.read_blob(entries[2])
    argv = [a.decode("ascii") for a in argv_raw.split(b"\\x00") if a]
    stdin = fix.read_blob(entries[3])
    fsroot = entries[4]
    wasi, stdout = _fw_make_wasi(fix, argv, stdin, fsroot)
    code = wasi_main(wasi)
    if code not in (None, 0):
        raise ValueError("program exited with " + repr(code))
    return fix.create_blob(b"".join(stdout))


'''


def compile_program(fp: Fixpoint, program_source: str, name: str) -> Handle:
    """Link the Flatware prelude in front of ``program_source`` and compile.

    The program must define ``wasi_main(wasi)``; the toolchain validates
    the combined module like any codelet.
    """
    return fp.compile(FLATWARE_PRELUDE + program_source, name)


def run_program(
    fp: Fixpoint,
    program: Handle,
    args: Sequence[str],
    files: FileTree,
    stdin: bytes = b"",
    limits: ResourceLimits = ResourceLimits(),
) -> bytes:
    """Invoke a Flatware program; returns its stdout payload."""
    repo = fp.repo
    argv_blob = repo.put_blob(b"\x00".join(a.encode("ascii") for a in args))
    stdin_blob = repo.put_blob(stdin)
    fsroot = build_fs(repo, files, accessible=True)
    thunk = fp.invoke(program, [argv_blob, stdin_blob, fsroot], limits)
    result = fp.eval(thunk.wrap_strict())
    return repo.get_blob(result).data
