"""A tar-like archive format plus a simple compressor (SeBS compression).

SeBS's ``compression`` function downloads a bucket's files and creates a
compressed archive.  Python's zlib is an import - forbidden inside
codelets - so the reproduction defines its own deterministic pure-Python
format, implementable both host-side (this module, fully tested) and
inline in a codelet:

Archive layout (all integers ASCII-decimal)::

    FIXAR<count>\\n
    <name-length> <payload-length>\\n<name><payload>   (repeated)

Compression: byte-level run-length encoding with an escape marker -
``0xFE count byte`` for runs of 4..255, ``0xFE 0x00 0xFE`` escaping the
marker itself.  Not a great ratio, but a real, reversible codec whose
round-trip property tests pin down.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.errors import FixError

MAGIC = b"FIXAR"
_MARK = 0xFE


class ArchiveError(FixError):
    """Malformed archive or compressed stream."""


def create_archive(files: Dict[str, bytes]) -> bytes:
    """Pack ``files`` (name -> payload) in sorted-name order."""
    parts: List[bytes] = [MAGIC + str(len(files)).encode() + b"\n"]
    for name in sorted(files):
        raw = name.encode("utf-8")
        payload = files[name]
        parts.append(
            str(len(raw)).encode() + b" " + str(len(payload)).encode() + b"\n"
        )
        parts.append(raw)
        parts.append(payload)
    return b"".join(parts)


def extract_archive(data: bytes) -> Dict[str, bytes]:
    if not data.startswith(MAGIC):
        raise ArchiveError("bad archive magic")
    newline = data.index(b"\n")
    count = int(data[len(MAGIC) : newline])
    pos = newline + 1
    out: Dict[str, bytes] = {}
    for _ in range(count):
        newline = data.index(b"\n", pos)
        name_len_raw, _, payload_len_raw = data[pos:newline].partition(b" ")
        name_len, payload_len = int(name_len_raw), int(payload_len_raw)
        pos = newline + 1
        name = data[pos : pos + name_len].decode("utf-8")
        pos += name_len
        payload = data[pos : pos + payload_len]
        if len(payload) != payload_len:
            raise ArchiveError(f"truncated payload for {name!r}")
        pos += payload_len
        out[name] = payload
    if pos != len(data):
        raise ArchiveError("trailing bytes after archive")
    return out


def compress(data: bytes) -> bytes:
    """Run-length encode ``data`` (escape marker 0xFE)."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        run = 1
        while i + run < n and run < 255 and data[i + run] == byte:
            run += 1
        if run >= 4:
            out += bytes((_MARK, run, byte))
            i += run
        elif byte == _MARK:
            out += bytes((_MARK, 0, _MARK))
            i += 1
        else:
            out.append(byte)
            i += 1
    return bytes(out)


def decompress(data: bytes) -> bytes:
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        if byte != _MARK:
            out.append(byte)
            i += 1
            continue
        if i + 2 >= n:
            raise ArchiveError("truncated RLE escape")
        count, value = data[i + 1], data[i + 2]
        if count == 0:
            if value != _MARK:
                raise ArchiveError("bad escape sequence")
            out.append(_MARK)
        else:
            out += bytes([value]) * count
        i += 3
    return bytes(out)


def compress_archive(files: Dict[str, bytes]) -> bytes:
    return compress(create_archive(files))


def extract_compressed(data: bytes) -> Dict[str, bytes]:
    return extract_archive(decompress(data))
