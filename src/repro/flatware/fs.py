"""Filesystems encoded as nested Fix Trees (paper fig. 4).

A directory is a Tree ``[info_blob, child0, child1, ...]``; the info blob
maps indices to names and kinds (one line per child: ``"d name"`` or
``"f name"``, in child order).  A file child is a Blob handle; a directory
child is another directory Tree.

Two encodings, matching the paper's two use cases:

* ``accessible=True`` (default) - children are Objects: the whole
  filesystem sits in the minimum repository, which is how the SeBS
  functions were ported ("include everything", section 5.6);
* ``accessible=False`` - children are Refs: a consumer must descend with
  Selection thunks, fetching only what it touches - the get-file pattern
  of Algorithm 3, provided here as a real codelet.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from ..core.errors import FixError
from ..core.handle import Handle
from ..core.storage import Repository

FileTree = Dict[str, Union[bytes, "FileTree"]]


class PathError(FixError):
    """A path did not resolve within a Flatware filesystem."""


def build_fs(repo: Repository, spec: FileTree, accessible: bool = True) -> Handle:
    """Store a directory tree; returns the root directory's Tree handle."""
    info_lines: List[str] = []
    children: List[Handle] = []
    for name in sorted(spec):
        if "/" in name or "\n" in name or not name:
            raise PathError(f"bad entry name {name!r}")
        value = spec[name]
        if isinstance(value, (bytes, bytearray)):
            handle = repo.put_blob(bytes(value))
            info_lines.append(f"f {name}")
        elif isinstance(value, dict):
            handle = build_fs(repo, value, accessible)
            info_lines.append(f"d {name}")
        else:
            raise PathError(f"entry {name!r} must be bytes or a dict")
        children.append(handle if accessible else handle.as_ref())
    info = repo.put_blob("\n".join(info_lines).encode("ascii"))
    return repo.put_tree([info if accessible else info.as_ref(), *children])


def read_dir(repo: Repository, dir_handle: Handle) -> List[Tuple[str, str, Handle]]:
    """Parse one directory level: list of (kind, name, child handle)."""
    tree = repo.get_tree(dir_handle)
    if len(tree) < 1:
        raise PathError("directory tree missing its info blob")
    info = repo.get_blob(tree[0].as_object()).data.decode("ascii")
    lines = info.splitlines()
    if len(lines) != len(tree) - 1:
        raise PathError("info blob does not match directory arity")
    out = []
    for line, child in zip(lines, tree.children[1:]):
        kind, _, name = line.partition(" ")
        if kind not in ("d", "f") or not name:
            raise PathError(f"bad info line {line!r}")
        out.append((kind, name, child))
    return out


def resolve_path(repo: Repository, root: Handle, path: str) -> Handle:
    """Walk ``path`` (slash-separated) from ``root``; returns the handle."""
    current = root
    parts = [p for p in path.split("/") if p]
    for i, part in enumerate(parts):
        entries = read_dir(repo, current.as_object())
        for kind, name, child in entries:
            if name == part:
                if kind == "f" and i != len(parts) - 1:
                    raise PathError(f"{part!r} is a file, not a directory")
                current = child
                break
        else:
            raise PathError(f"no entry {part!r} in {'/'.join(parts[:i])!r}")
    return current


def read_file(repo: Repository, root: Handle, path: str) -> bytes:
    handle = resolve_path(repo, root, path)
    return repo.get_blob(handle.as_object()).data


def list_dir(repo: Repository, root: Handle, path: str = "") -> List[str]:
    handle = resolve_path(repo, root, path) if path else root
    return [name for _, name, _ in read_dir(repo, handle.as_object())]


GET_FILE_SOURCE = '''\
"""Algorithm 3: descend a directory tree one level per invocation.

Input: [rlimit, get_file, path, info_blob, dir_ref]
  - info_blob: strictly-resolved info of the current directory
  - dir_ref:   shallow TreeRef of the current directory

Each step's minimum repository holds one directory's info blob - the
directory contents are never fetched wholesale.
"""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    rlimit = entries[0]
    get_file = entries[1]
    path = fix.read_blob(entries[2]).decode("ascii")
    info = fix.read_blob(entries[3]).decode("ascii")
    dirref = entries[4]
    head, _, rest = path.partition("/")
    index = -1
    kind = ""
    lines = info.splitlines()
    for i, line in enumerate(lines):
        if line[2:] == head:
            index = i
            kind = line[0]
    if index < 0:
        raise ValueError("no such entry: " + head)
    child = fix.selection(dirref, index + 1)  # +1 skips the info blob
    if rest == "":
        return child
    if kind != "d":
        raise ValueError(head + " is not a directory")
    next_info = fix.strict(fix.selection(child, 0))
    next_dir = fix.shallow(child)
    tree = fix.create_tree(
        [rlimit, get_file, fix.create_blob(rest.encode("ascii")), next_info, next_dir]
    )
    return fix.application(tree)
'''
