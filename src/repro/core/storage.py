"""The runtime storage: a content-addressed repository of Fix data.

Maps Blobs and Trees to their contents and Encodes to their evaluation
results (paper section 4.2.1: "a runtime storage that maps from Blobs and
Trees to their data and from Encodes to evaluation results").  The store is
thread-safe - Fixpoint worker threads share one repository.

Memoization of Encode results is what makes repeated evaluation cheap and
is the hook for the paper's "computational garbage collection" future-work
item: a datum whose producing Encode is remembered can be dropped and
recomputed on demand (see :meth:`Repository.forget_data`).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..analysis.sync import TrackedRLock
from .data import Blob, Datum, Tree
from .errors import HandleError, MissingObjectError
from .handle import Handle


class Repository:
    """Thread-safe content-addressed store for Blobs, Trees, and results."""

    def __init__(self, name: str = "repo"):
        self.name = name
        self._lock = TrackedRLock("Repository._lock")
        self._data: Dict[bytes, Datum] = {}
        self._results: Dict[Handle, Handle] = {}

    # ------------------------------------------------------------------
    # Data

    def put_blob(self, data: bytes) -> Handle:
        """Store Blob contents; returns the canonical (Object) handle.

        Blobs small enough to be literals are not stored at all - their
        handle carries the payload.
        """
        blob = Blob(data)
        handle = blob.handle()
        if not handle.is_literal:
            with self._lock:
                self._data.setdefault(handle.content_key(), blob)
        return handle

    def put_tree(self, children) -> Handle:
        """Store a Tree of handles; returns the canonical (Object) handle."""
        tree = Tree(children)
        handle = tree.handle()
        with self._lock:
            self._data.setdefault(handle.content_key(), tree)
        return handle

    def put(self, datum: Datum) -> Handle:
        if isinstance(datum, Blob):
            return self.put_blob(datum.data)
        if isinstance(datum, Tree):
            return self.put_tree(datum.children)
        raise HandleError(f"cannot store {type(datum)}")

    def contains(self, handle: Handle) -> bool:
        if handle.is_literal:
            return True
        with self._lock:
            return handle.content_key() in self._data

    def get(self, handle: Handle) -> Datum:
        """The referent of ``handle``, regardless of its view bits.

        Literal handles materialize a Blob from their payload.  Raises
        :class:`MissingObjectError` when absent.
        """
        if handle.is_literal:
            return Blob(handle.literal_data)
        with self._lock:
            datum = self._data.get(handle.content_key())
        if datum is None:
            raise MissingObjectError(handle, self.name)
        return datum

    def get_blob(self, handle: Handle) -> Blob:
        datum = self.get(handle)
        if not isinstance(datum, Blob):
            raise HandleError(f"{handle!r} does not name a Blob")
        return datum

    def get_tree(self, handle: Handle) -> Tree:
        datum = self.get(handle)
        if not isinstance(datum, Tree):
            raise HandleError(f"{handle!r} does not name a Tree")
        return datum

    # ------------------------------------------------------------------
    # Encode results (memoization)

    def put_result(self, encode: Handle, result: Handle) -> None:
        """Remember that evaluating ``encode`` produced ``result``."""
        if not encode.is_encode:
            raise HandleError("results are keyed by Encode handles")
        with self._lock:
            self._results[encode] = result

    def get_result(self, encode: Handle) -> Optional[Handle]:
        with self._lock:
            return self._results.get(encode)

    # ------------------------------------------------------------------
    # Introspection / maintenance

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def result_count(self) -> int:
        with self._lock:
            return len(self._results)

    def data_bytes(self) -> int:
        """Total stored payload bytes (blobs) plus tree handle bytes."""
        with self._lock:
            return sum(
                len(d.data) if isinstance(d, Blob) else d.byte_size()
                for d in self._data.values()
            )

    def handles(self) -> Iterator[Handle]:
        """Canonical handles of every stored datum (snapshot)."""
        with self._lock:
            data = list(self._data.values())
        for datum in data:
            yield datum.handle()

    def forget_data(self, handle: Handle) -> bool:
        """Drop a datum while keeping memoized results.

        Models "delayed-availability" storage from the paper's future-work
        discussion: the provider may delete an object it knows how to
        recompute.  Returns True when something was removed.
        """
        if handle.is_literal:
            return False
        with self._lock:
            return self._data.pop(handle.content_key(), None) is not None

    def clear_results(self) -> None:
        with self._lock:
            self._results.clear()

    def absorb(self, other: "Repository") -> None:
        """Copy every datum and result from ``other`` into this repository."""
        with other._lock:
            data = dict(other._data)
            results = dict(other._results)
        with self._lock:
            for key, datum in data.items():
                self._data.setdefault(key, datum)
            self._results.update(results)
