"""Computational garbage collection ("delayed-availability storage").

Paper section 6: *"Because Fix computations are deterministic products of
known dependencies, users who opt for 'delayed-availability' storage
would grant the provider the ability to delete stored objects as long as
the provider knows how to recompute them on demand."*

This module implements that idea over the repository's memoized Encode
results:

* :class:`RecomputeIndex` records, for every memoized result, the Encode
  that produced it - the recipe;
* :func:`collect` evicts data whose recipes are known (biggest first,
  until a byte budget is met), keeping *roots* (recipes' own inputs must
  remain recoverable, so eviction walks in dependency order);
* :class:`RecoveringRepository` is a repository wrapper that, on a miss,
  transparently re-evaluates the recorded recipe - the "SLA window" where
  deleted data flows back into existence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from .data import Datum
from .errors import MissingObjectError, StorageError
from .handle import Handle
from .storage import Repository


@dataclass
class RecomputeIndex:
    """content key -> the Encode whose evaluation produces that datum."""

    recipes: Dict[bytes, Handle] = field(default_factory=dict)

    def learn(self, encode: Handle, result: Handle) -> None:
        if result.is_data and not result.is_literal:
            self.recipes[result.content_key()] = encode

    def recipe_for(self, handle: Handle) -> Optional[Handle]:
        return self.recipes.get(handle.content_key())

    def recoverable(self, handle: Handle) -> bool:
        return handle.content_key() in self.recipes


def index_from_repository(repo: Repository) -> RecomputeIndex:
    """Build the recipe index from a repository's memoized results."""
    index = RecomputeIndex()
    with repo._lock:  # snapshot; Repository is our own class
        results = dict(repo._results)
    for encode, result in results.items():
        index.learn(encode, result)
    return index


@dataclass
class CollectionReport:
    """What one GC pass did."""

    evicted: List[Handle] = field(default_factory=list)
    bytes_freed: int = 0
    kept_unrecoverable: int = 0

    def __str__(self) -> str:
        return (
            f"evicted {len(self.evicted)} objects / {self.bytes_freed} bytes; "
            f"{self.kept_unrecoverable} objects kept (no recipe)"
        )


def collect(
    repo: Repository,
    index: RecomputeIndex,
    target_bytes: int,
    protect: Optional[Set[bytes]] = None,
) -> CollectionReport:
    """Evict recoverable data, biggest first, until ``target_bytes`` freed.

    ``protect`` holds content keys that must stay resident (e.g. pinned
    session state).  Data without a recipe is never touched.
    """
    if target_bytes < 0:
        raise StorageError("cannot free a negative byte count")
    protect = protect or set()
    report = CollectionReport()
    candidates = []
    for handle in repo.handles():
        key = handle.content_key()
        if key in protect:
            continue
        if not index.recoverable(handle):
            report.kept_unrecoverable += 1
            continue
        candidates.append(handle)
    candidates.sort(key=lambda h: (-h.byte_size(), h.content_key()))
    for handle in candidates:
        if report.bytes_freed >= target_bytes:
            break
        if repo.forget_data(handle):
            report.evicted.append(handle)
            report.bytes_freed += handle.byte_size()
    return report


class RecoveringRepository(Repository):
    """A repository that recomputes evicted data on demand.

    ``recompute`` is called with the recipe Encode and must re-evaluate
    it (typically ``evaluator.eval_encode`` with memoization *disabled*
    for that call, since the memo is what got us here).  Recoveries are
    counted for the provider's SLA accounting.
    """

    def __init__(
        self,
        name: str = "recovering",
        index: Optional[RecomputeIndex] = None,
    ):
        super().__init__(name)
        self.index = index if index is not None else RecomputeIndex()
        self._recompute: Optional[Callable[[Handle], Handle]] = None
        self.recoveries = 0

    def set_recompute(self, fn: Callable[[Handle], Handle]) -> None:
        self._recompute = fn

    def put_result(self, encode: Handle, result: Handle) -> None:
        super().put_result(encode, result)
        self.index.learn(encode, result)

    def get(self, handle: Handle) -> Datum:
        try:
            return super().get(handle)
        except MissingObjectError:
            recipe = self.index.recipe_for(handle)
            if recipe is None or self._recompute is None:
                raise
            self.recoveries += 1
            self._recompute(recipe)
            return super().get(handle)
