"""Fix Data: Blobs and Trees (paper section 3.1).

A Blob is a region of memory (bytes); a Tree is an ordered collection of
Handles.  Both are immutable values with a canonical serialization, from
which their content handles are derived.  The in-memory representation
mirrors the paper's "efficient format that minimizes copying": a Blob is a
single ``bytes`` object; a Tree is a tuple of :class:`~repro.core.handle.Handle`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from .errors import HandleError
from .handle import HANDLE_BYTES, Handle, tree_digest


class Blob:
    """An immutable byte region."""

    __slots__ = ("_data",)

    def __init__(self, data: bytes):
        self._data = bytes(data)

    @property
    def data(self) -> bytes:
        return self._data

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Blob):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        return hash((Blob, self._data))

    def serialize(self) -> bytes:
        return self._data

    def handle(self) -> Handle:
        """Canonical handle: a literal when at most 30 bytes."""
        return Handle.of_blob(self._data)

    def __repr__(self) -> str:
        head = self._data[:16]
        return f"Blob({head!r}{'…' if len(self._data) > 16 else ''}, len={len(self._data)})"


class Tree:
    """An immutable ordered sequence of Handles."""

    __slots__ = ("_children",)

    def __init__(self, children: Iterable[Handle]):
        children = tuple(children)
        for child in children:
            if not isinstance(child, Handle):
                raise HandleError(f"tree entries must be Handles, got {type(child)}")
        self._children = children

    @property
    def children(self) -> tuple[Handle, ...]:
        return self._children

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator[Handle]:
        return iter(self._children)

    def __getitem__(self, index):
        return self._children[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return self._children == other._children

    def __hash__(self) -> int:
        return hash((Tree, self._children))

    def serialize(self) -> bytes:
        """Concatenation of the packed 32-byte child handles."""
        return b"".join(child.pack() for child in self._children)

    @classmethod
    def deserialize(cls, raw: bytes) -> "Tree":
        if len(raw) % HANDLE_BYTES:
            raise HandleError("tree serialization must be a multiple of 32 bytes")
        children = [
            Handle.unpack(raw[i : i + HANDLE_BYTES])
            for i in range(0, len(raw), HANDLE_BYTES)
        ]
        return cls(children)

    def handle(self) -> Handle:
        return Handle.tree(tree_digest(self.serialize()), len(self._children))

    def byte_size(self) -> int:
        return len(self._children) * HANDLE_BYTES

    def __repr__(self) -> str:
        return f"Tree(len={len(self._children)})"


Datum = Union[Blob, Tree]


def handle_for(datum: Datum) -> Handle:
    """Canonical content handle for a Blob or Tree."""
    return datum.handle()


def verify(datum: Datum, handle: Handle) -> bool:
    """Check that ``datum`` is the referent of ``handle`` (same content key)."""
    return datum.handle().content_key() == handle.content_key()
