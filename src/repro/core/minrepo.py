"""Minimum repositories (paper section 3.3).

The *minimum repository* of a Thunk is the bounded set of Fix data that
must be resident before its function starts, so the function can always
run to completion without blocking on I/O.  It is computed purely from the
Thunk's handle graph:

* data reachable through **Object** handles is included (recursively
  through Trees);
* **Refs** contribute only their metadata - the referent stays remote;
* bare **Thunks** contribute their describing Tree but nothing they would
  compute - they are somebody else's problem;
* **Encodes** are *pending work*: the runtime must evaluate them before
  the invocation, and their own minimum repositories are needed
  transitively.

A function may not change its own minimum repository, but it can create
child Thunks that grow it (by including an Encode) or shrink it (by
dropping entries) - the grow/shrink rules are checked by
:func:`check_derivation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set

from .handle import Handle, ThunkStyle
from .storage import Repository


@dataclass(frozen=True)
class Footprint:
    """The data footprint of evaluating a handle.

    ``data`` holds content keys of data that must be resident;
    ``pending`` holds Encode handles that must be evaluated first;
    ``data_bytes`` approximates the wire size of the resident set.
    """

    data: FrozenSet[bytes]
    pending: FrozenSet[Handle]
    data_bytes: int

    def __contains__(self, handle: Handle) -> bool:
        return handle.content_key() in self.data

    def is_subset_of(self, other: "Footprint") -> bool:
        return self.data <= other.data


def footprint(repo: Repository, handle: Handle) -> Footprint:
    """Compute the minimum repository of ``handle``.

    Tolerates missing data: a referenced-but-absent datum is still counted
    in ``data`` (by content key) using the size recorded in its handle, so
    schedulers can cost placements before any transfer happens.
    """
    seen: Set[bytes] = set()
    data: Set[bytes] = set()
    pending: Set[Handle] = set()
    total = 0

    def visit(h: Handle, subject: bool) -> None:
        """``subject`` is True only along the spine being evaluated.

        Paper fig. 2: a bare Thunk handed to a child *excludes* its
        definition from the minimum repository; only the thunk actually
        being evaluated needs its definition resident.
        """
        nonlocal total
        if h.is_encode:
            pending.add(h)
            if subject:
                visit(h.unwrap_encode(), subject=True)
            return
        if h.thunk_style is not ThunkStyle.NONE:
            if subject:
                visit(h.definition(), subject=False)
            return
        if h.is_ref:
            return  # metadata only
        if h.is_literal:
            return  # the payload rides inside the handle; no residency needed
        key = h.content_key()
        if key in seen:
            return
        seen.add(key)
        data.add(key)
        total += h.byte_size()
        if h.is_tree and repo.contains(h):
            for child in repo.get_tree(h):
                visit(child, subject=False)

    visit(handle, subject=True)
    return Footprint(frozenset(data), frozenset(pending), total)


def transitive_footprint(repo: Repository, handle: Handle) -> Footprint:
    """The closure of :func:`footprint` over pending Encodes.

    ``footprint`` treats an Encode entry as somebody else's problem -
    correct for placement costing, where the platform may evaluate it
    anywhere.  A *delegatee* asked to evaluate the whole object, however,
    needs everything required to evaluate every nested Encode as well.
    """
    data: Set[bytes] = set()
    pending: Set[Handle] = set()
    total = 0
    queue = [handle]
    while queue:
        fp = footprint(repo, queue.pop())
        for key in fp.data:
            if key not in data:
                data.add(key)
        for encode in fp.pending:
            if encode not in pending:
                pending.add(encode)
                queue.append(encode)
    for resident in repo.handles():
        if resident.content_key() in data:
            total += resident.byte_size()
    return Footprint(frozenset(data), frozenset(pending), total)


def check_derivation(
    repo: Repository,
    parent: Footprint,
    child: Handle,
    created: FrozenSet[bytes] = frozenset(),
) -> bool:
    """Validate the grow/shrink rules for a child Thunk.

    Every datum in the child's minimum repository must come from the
    parent's repository, from data the parent created (``created``), or be
    the (future) result of an Encode the child includes.  Returns True when
    the derivation is legal.
    """
    child_fp = footprint(repo, child)
    allowed = set(parent.data) | set(created)
    if child.thunk_style is not ThunkStyle.NONE:
        # The describing Tree of the child thunk is necessarily new data
        # the parent just built; it is always legal.
        allowed.add(child.definition().content_key())
    return child_fp.data <= allowed
