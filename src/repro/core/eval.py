"""The Fix evaluator: forcing Thunks and applying Encodes.

Implements the semantics of paper section 3:

* An **Identification** thunk forces to the datum it names.
* A **Selection** thunk forces to a child Handle (Tree target), a sub-Tree
  (Tree range), or a Blob subrange - without materializing anything else.
* An **Application** thunk's definition Tree is first *resolved*: every
  Encode entry is replaced by its result (Strict entries become Objects,
  Shallow entries become Refs).  The function codelet is then applied to
  the resolved Tree.  A result that is itself a Thunk is a tail call and is
  forced in a trampoline loop, so arbitrarily long chains (paper fig. 7b)
  never grow the Python stack.
* A **Strict** Encode forces its thunk, then deep-resolves the result:
  Trees are descended and every Thunk or Encode inside is strictly
  evaluated; the top-level result is delivered as an accessible Object.
* A **Shallow** Encode forces its thunk until the result is no longer a
  Thunk and delivers it as a Ref - the minimum work needed for a consumer
  to make progress.

Results of Encodes are memoized in the repository, so identical
computations are never repeated (and a provider may "forget" a datum it
knows how to recompute).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .errors import EvaluationError, SelectionError
from .handle import EncodeStyle, Handle, ThunkStyle
from .storage import Repository
from .thunks import Invocation, parse_invocation, parse_selection

#: Applies one invocation: ``apply_fn(evaluator, resolved_definition) -> Handle``.
ApplyFn = Callable[["Evaluator", Handle, Invocation], Handle]

_MAX_TAIL_CALLS = 1_000_000
#: Linear dependency chains (fig. 7b nests 500 encodes) recurse through
#: argument resolution; the ceiling bounds runaway programs while leaving
#: legitimate deep chains plenty of room.
_MAX_DEPTH = 20_000
_PY_FRAMES_PER_LEVEL = 16


class _DeepRecursion:
    """Temporarily widen CPython's recursion limit for deep encode chains."""

    __slots__ = ("_old",)

    def __enter__(self) -> "_DeepRecursion":
        self._old = sys.getrecursionlimit()
        needed = _MAX_DEPTH * _PY_FRAMES_PER_LEVEL
        if self._old < needed:
            sys.setrecursionlimit(needed)
        return self

    def __exit__(self, *exc) -> None:
        if sys.getrecursionlimit() > self._old:
            sys.setrecursionlimit(self._old)


@dataclass
class EvalStats:
    """Counters describing one evaluator's activity.

    Used by the tests, the ablation benches, and the fig. 9 cost model
    (which converts operation counts into simulated time).
    """

    applications: int = 0
    identifications: int = 0
    selections: int = 0
    strict_encodes: int = 0
    shallow_encodes: int = 0
    memo_hits: int = 0
    tail_calls: int = 0
    bytes_selected: int = 0

    def snapshot(self) -> "EvalStats":
        return EvalStats(**vars(self))

    def total_thunks_forced(self) -> int:
        return self.applications + self.identifications + self.selections


class Evaluator:
    """Evaluates Fix objects against a repository and an apply hook."""

    def __init__(
        self,
        repo: Repository,
        apply_fn: Optional[ApplyFn] = None,
        memoize: bool = True,
        thunk_cache: Optional[Dict[Handle, Handle]] = None,
    ):
        self.repo = repo
        self.apply_fn = apply_fn
        self.memoize = memoize
        self.stats = EvalStats()
        # May be shared across evaluators (e.g. Fixpoint worker threads);
        # writes are idempotent because evaluation is deterministic.
        self._thunk_cache: Dict[Handle, Handle] = (
            thunk_cache if thunk_cache is not None else {}
        )

    # ------------------------------------------------------------------
    # Public entry points

    def eval(self, handle: Handle) -> Handle:
        """Evaluate ``handle`` under strict semantics; return an Object.

        Data handles are deep-resolved (inner Thunks/Encodes evaluated);
        Thunks are forced then deep-resolved; Encodes are applied.
        """
        with _DeepRecursion():
            return self._eval_strict(handle, depth=0)

    def eval_encode(self, encode: Handle) -> Handle:
        """Apply one Encode (Strict or Shallow) and return its result."""
        with _DeepRecursion():
            return self._eval_encode(encode, depth=0)

    # ------------------------------------------------------------------
    # Encode semantics

    def _eval_encode(self, encode: Handle, depth: int) -> Handle:
        if not encode.is_encode:
            raise EvaluationError(f"{encode!r} is not an Encode")
        if self.memoize:
            cached = self.repo.get_result(encode)
            if cached is not None:
                self.stats.memo_hits += 1
                return cached
        thunk = encode.unwrap_encode()
        forced = self._force(thunk, depth)
        if encode.encode_style is EncodeStyle.STRICT:
            self.stats.strict_encodes += 1
            result = self._eval_strict(forced, depth)
        else:
            self.stats.shallow_encodes += 1
            result = self._to_ref(forced)
        if self.memoize:
            self.repo.put_result(encode, result)
        return result

    def _to_ref(self, handle: Handle) -> Handle:
        if handle.is_data:
            return handle.as_ref()
        raise EvaluationError(f"shallow evaluation produced a non-datum: {handle!r}")

    def _eval_strict(self, handle: Handle, depth: int) -> Handle:
        """Deliver the fully-evaluated Object for ``handle``."""
        if depth > _MAX_DEPTH:
            raise EvaluationError(f"evaluation exceeded depth {_MAX_DEPTH}")
        if handle.is_encode:
            inner = self._eval_encode(handle, depth + 1)
            return self._eval_strict(inner, depth + 1)
        if handle.is_thunk:
            forced = self._force(handle, depth)
            return self._eval_strict(forced, depth + 1)
        # Plain data: blobs are final; trees are descended.
        if handle.is_blob:
            return handle.as_object()
        return self._deep_resolve_tree(handle, depth)

    def _deep_resolve_tree(self, handle: Handle, depth: int) -> Handle:
        tree = self.repo.get_tree(handle)
        changed = False
        resolved = []
        for child in tree:
            if child.is_encode or child.is_thunk:
                new = self._eval_strict(child, depth + 1)
                changed = changed or new != child
                resolved.append(new)
            elif child.is_tree:
                new = self._deep_resolve_tree(child, depth + 1)
                changed = changed or new.content_key() != child.content_key()
                # Preserve the original accessibility view of the entry.
                resolved.append(new.as_ref() if child.is_ref else new)
            else:
                resolved.append(child)
        if not changed:
            return handle.as_object()
        return self.repo.put_tree(resolved)

    # ------------------------------------------------------------------
    # Thunk forcing (the trampoline)

    def _force(self, thunk: Handle, depth: int) -> Handle:
        """Force ``thunk`` until the result is no longer a Thunk."""
        current = thunk
        for _ in range(_MAX_TAIL_CALLS):
            if not current.is_thunk:
                if current.is_encode:
                    current = self._eval_encode(current, depth + 1)
                    continue
                return current
            cached = self._thunk_cache.get(current) if self.memoize else None
            if cached is not None:
                self.stats.memo_hits += 1
                current = cached
                continue
            result = self._step(current, depth)
            if self.memoize:
                self._thunk_cache[current] = result
            self.stats.tail_calls += result.is_thunk
            current = result
        raise EvaluationError("tail-call budget exhausted; diverging computation?")

    def _step(self, thunk: Handle, depth: int) -> Handle:
        style = thunk.thunk_style
        if style is ThunkStyle.IDENTIFICATION:
            self.stats.identifications += 1
            return thunk.definition()
        if style is ThunkStyle.SELECTION:
            self.stats.selections += 1
            return self._select(thunk, depth)
        if style is ThunkStyle.APPLICATION:
            self.stats.applications += 1
            return self._apply(thunk, depth)
        raise EvaluationError(f"cannot step {thunk!r}")

    # ------------------------------------------------------------------
    # Selection

    def _select(self, thunk: Handle, depth: int) -> Handle:
        sel = parse_selection(self.repo, thunk.definition())
        target = sel.target
        # The target may itself require evaluation before selecting.
        if target.is_encode:
            target = self._eval_encode(target, depth + 1)
        if target.is_thunk:
            target = self._force(target, depth + 1)
        if target.is_tree:
            return self._select_tree(target, sel.start, sel.end)
        return self._select_blob(target, sel.start, sel.end)

    def _select_tree(self, target: Handle, start: int, end: Optional[int]) -> Handle:
        tree = self.repo.get_tree(target)
        if end is None:
            if start >= len(tree):
                raise SelectionError(
                    f"index {start} out of range for tree of {len(tree)}"
                )
            self.stats.bytes_selected += 32
            return tree[start]
        if end > len(tree) or start > end:
            raise SelectionError(f"range [{start}, {end}) out of tree of {len(tree)}")
        self.stats.bytes_selected += 32 * (end - start)
        return self.repo.put_tree(tree.children[start:end])

    def _select_blob(self, target: Handle, start: int, end: Optional[int]) -> Handle:
        blob = self.repo.get_blob(target)
        if end is None:
            end = start + 1
        if end > len(blob) or start > end:
            raise SelectionError(f"range [{start}, {end}) out of blob of {len(blob)}")
        self.stats.bytes_selected += end - start
        return self.repo.put_blob(blob.data[start:end])

    # ------------------------------------------------------------------
    # Application

    def _apply(self, thunk: Handle, depth: int) -> Handle:
        if self.apply_fn is None:
            raise EvaluationError(
                "this evaluator has no apply hook; application thunks "
                "require a runtime (see repro.fixpoint)"
            )
        resolved = self.resolve_invocation(thunk.definition(), depth)
        invocation = parse_invocation(self.repo, resolved)
        result = self.apply_fn(self, resolved, invocation)
        if not isinstance(result, Handle):
            raise EvaluationError(
                f"codelet returned {type(result).__name__}, expected a Handle"
            )
        return result

    def resolve_invocation(self, definition: Handle, depth: int = 0) -> Handle:
        """Replace every Encode entry of an invocation Tree by its result.

        This is the step that performs (or, on a distributed runtime,
        *schedules*) all the I/O a child function needs: after resolution
        the minimum repository of the invocation is fully available.
        """
        tree = self.repo.get_tree(definition)
        changed = False
        resolved = []
        for child in tree:
            if child.is_encode:
                new = self._eval_encode(child, depth + 1)
                changed = changed or new != child
                resolved.append(new)
            else:
                resolved.append(child)
        if not changed:
            return definition.as_object()
        return self.repo.put_tree(resolved)
