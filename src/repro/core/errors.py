"""Exception hierarchy for the Fix reproduction.

Every error raised by ``repro`` derives from :class:`FixError` so callers can
catch library failures without also swallowing programming errors.  The
sub-hierarchy mirrors the subsystems: handles, storage, evaluation, the
codelet sandbox, resource limits, and the cluster simulator.
"""

from __future__ import annotations


class FixError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class HandleError(FixError):
    """A handle was malformed, or an illegal derivation was requested.

    Examples: unpacking fewer than 32 bytes, wrapping a non-thunk in an
    Encode, or requesting the literal payload of a non-literal handle.
    """


class StorageError(FixError):
    """Base class for repository failures."""


class MissingObjectError(StorageError):
    """A handle's referent was not present in the repository.

    Under Fix semantics this indicates a platform bug or an incomplete
    minimum repository: the runtime must stage every dependency before an
    invocation starts (paper section 3.3).
    """

    def __init__(self, handle, where: str = "repository"):
        self.handle = handle
        self.where = where
        super().__init__(f"object for {handle!r} not found in {where}")


class AccessError(FixError):
    """A codelet touched data outside its minimum repository.

    Raised when a procedure attempts to read a Ref's payload, or presents a
    handle that is not reachable from its input tree (paper section 4.1.3).
    """


class EvaluationError(FixError):
    """The evaluator could not make progress on a well-formed object."""


class SelectionError(EvaluationError):
    """A Selection thunk addressed an index or range outside its target."""


class NotAFunctionError(EvaluationError):
    """An Application thunk's function slot did not hold runnable code."""


class CodeletError(FixError):
    """An exception escaped a user codelet.

    The original exception is preserved as ``__cause__``; the codelet's
    handle (if known) is carried for diagnostics.
    """

    def __init__(self, message: str, codelet=None):
        self.codelet = codelet
        super().__init__(message)


class SandboxError(FixError):
    """The trusted toolchain rejected a codelet.

    Raised ahead of time, at "compile" time - never while user code runs -
    mirroring Fixpoint's requirement that functions be converted to safe
    machine code before execution (paper section 4.1.1).
    """


class ResourceLimitError(FixError):
    """A codelet exceeded the memory budget in its resource-limits blob."""

    def __init__(self, used: int, limit: int):
        self.used = used
        self.limit = limit
        super().__init__(f"memory limit exceeded: used {used} bytes of {limit}")


class SerializationError(FixError):
    """A wire frame could not be encoded or decoded."""


class SchedulingError(FixError):
    """The scheduler could not produce a valid placement."""


class SimulationError(FixError):
    """The discrete-event engine detected an inconsistency.

    Examples: a process resumed after the simulation ended, time moving
    backwards, or releasing more of a resource than was held.
    """
