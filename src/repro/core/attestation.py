"""Signed results and cross-provider double-checking (paper section 6).

*"Because computations will have a single, unambiguous result, providers
could sign statements with their answers - 'f(x) -> y, according to
Provider Z' - and customers could bid out jobs to any provider that
carries acceptable 'wrong answer' insurance and double-check answers if
and when they choose."*

Implemented here with HMAC-SHA256 over the canonical (encode, result)
handle pair:

* a :class:`Provider` evaluates Encodes and returns :class:`Attestation`s;
* :func:`verify` checks a statement against a provider's key;
* :class:`Auditor` re-runs a sampled fraction of attested computations on
  a second provider and flags disagreements - which, thanks to
  determinism, are proof of a wrong (or forged) answer.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Callable, List, Optional

from .errors import FixError
from .handle import Handle


class AttestationError(FixError):
    """Forged, malformed, or disproven statements."""


@dataclass(frozen=True)
class Attestation:
    """'Evaluating ``encode`` yields ``result``, according to ``provider``.'"""

    provider: str
    encode: Handle
    result: Handle
    signature: bytes

    def statement(self) -> bytes:
        return _statement(self.provider, self.encode, self.result)


def _statement(provider: str, encode: Handle, result: Handle) -> bytes:
    return b"fix-attest\x00" + provider.encode() + b"\x00" + encode.pack() + result.pack()


def sign(provider: str, key: bytes, encode: Handle, result: Handle) -> Attestation:
    signature = hmac.new(
        key, _statement(provider, encode, result), hashlib.sha256
    ).digest()
    return Attestation(provider, encode, result, signature)


def verify(attestation: Attestation, key: bytes) -> bool:
    expected = hmac.new(key, attestation.statement(), hashlib.sha256).digest()
    return hmac.compare_digest(expected, attestation.signature)


class Provider:
    """A named evaluation service that signs what it computes."""

    def __init__(self, name: str, key: bytes, evaluate: Callable[[Handle], Handle]):
        if not key:
            raise AttestationError("provider key must be non-empty")
        self.name = name
        self._key = key
        self._evaluate = evaluate
        self.attestations_issued = 0

    def run(self, encode: Handle) -> Attestation:
        result = self._evaluate(encode)
        self.attestations_issued += 1
        return sign(self.name, self._key, encode, result)

    def public_check(self, attestation: Attestation) -> bool:
        """Key-holder verification (stands in for signature verification
        against the provider's published key)."""
        return verify(attestation, self._key)


@dataclass
class AuditFinding:
    attestation: Attestation
    recomputed: Handle

    def __str__(self) -> str:
        return (
            f"provider {self.attestation.provider!r} claimed "
            f"{self.attestation.result!r}, recomputation says "
            f"{self.recomputed!r}"
        )


class Auditor:
    """Double-checks attested answers on an independent provider.

    Determinism makes disagreement decisive: one of the two is wrong, and
    the signed statement is the loser's liability ("wrong answer"
    insurance claims attach to it).
    """

    def __init__(self, reference: Provider, sample_every: int = 1):
        if sample_every < 1:
            raise AttestationError("sample_every must be >= 1")
        self.reference = reference
        self.sample_every = sample_every
        self._seen = 0
        self.findings: List[AuditFinding] = []
        self.checked = 0

    def observe(self, attestation: Attestation, key: bytes) -> Optional[AuditFinding]:
        """Verify the signature, maybe recompute; returns a finding if bad."""
        if not verify(attestation, key):
            raise AttestationError(
                f"signature check failed for provider {attestation.provider!r}"
            )
        self._seen += 1
        if self._seen % self.sample_every:
            return None
        self.checked += 1
        reference_answer = self.reference.run(attestation.encode)
        if reference_answer.result != attestation.result:
            finding = AuditFinding(attestation, reference_answer.result)
            self.findings.append(finding)
            return finding
        return None
