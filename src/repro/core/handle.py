"""Fix Handles: 256-bit names for every object in the system.

The paper (section 3.2) specifies that every value in Fix is assigned a
unique deterministic Handle consisting of a truncated 192-bit BLAKE3 hash,
16 bits of metadata and type information, and a 48-bit size field, with
Blobs of 30 bytes or smaller inlined directly into the Handle ("literals").

This module reproduces that layout bit-for-bit.  The only substitution is
the hash function: BLAKE3 is not available offline, so we use BLAKE2b
truncated to 192 bits (``hashlib.blake2b(digest_size=24)``), which fills the
same role (collision-resistant content digest).  Digests are domain
separated: Blob and Tree contents never collide.

Packed layout (32 bytes, little-endian fields)::

    non-literal:  bytes[0:24]  = digest
                  bytes[24:30] = size (48-bit LE)
                  bytes[30:32] = metadata (16-bit LE)
    literal:      bytes[0:30]  = payload, zero padded
                  bytes[30:32] = metadata (length lives in the metadata)

Metadata bits::

    bit 0      content is a Tree (else a Blob)
    bit 1      inaccessible (Ref) - zero for accessible Objects
    bits 2-3   thunk style: 0 none, 1 application, 2 identification, 3 selection
    bits 4-5   encode style: 0 none, 1 strict, 2 shallow
    bit 6      literal (payload inlined)
    bits 8-12  literal length (0..30)
    others     reserved, must be zero

A Handle is a pure value: hashable, comparable, immutable.  Deriving a
Thunk from its definition, or an Encode from a Thunk, only re-tags the
metadata - the digest and size travel unchanged, which is what lets any
node parse a computation without consulting a scheduler.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Optional

from .errors import HandleError

DIGEST_BYTES = 24  # 192 bits
HANDLE_BYTES = 32  # 256 bits; fits one AVX2 register in the original
LITERAL_MAX = 30  # blobs at most this size inline into the handle
SIZE_MAX = (1 << 48) - 1

_BLOB_PERSON = b"fix:blob"
_TREE_PERSON = b"fix:tree"

_META_TREE = 1 << 0
_META_REF = 1 << 1
_META_THUNK_SHIFT = 2
_META_THUNK_MASK = 0b11 << _META_THUNK_SHIFT
_META_ENCODE_SHIFT = 4
_META_ENCODE_MASK = 0b11 << _META_ENCODE_SHIFT
_META_LITERAL = 1 << 6
_META_LITLEN_SHIFT = 8
_META_LITLEN_MASK = 0b11111 << _META_LITLEN_SHIFT
_META_KNOWN = (
    _META_TREE
    | _META_REF
    | _META_THUNK_MASK
    | _META_ENCODE_MASK
    | _META_LITERAL
    | _META_LITLEN_MASK
)


class ThunkStyle(enum.IntEnum):
    """The three styles of deferred computation (paper section 3.1)."""

    NONE = 0
    APPLICATION = 1
    IDENTIFICATION = 2
    SELECTION = 3


class EncodeStyle(enum.IntEnum):
    """Strict and Shallow evaluation requests (paper section 3.2)."""

    NONE = 0
    STRICT = 1
    SHALLOW = 2


def blob_digest(data: bytes) -> bytes:
    """Domain-separated 192-bit digest of Blob contents."""
    return hashlib.blake2b(data, digest_size=DIGEST_BYTES, person=_BLOB_PERSON).digest()


def tree_digest(serialized_children: bytes) -> bytes:
    """Domain-separated 192-bit digest of a Tree's serialized handles."""
    return hashlib.blake2b(
        serialized_children, digest_size=DIGEST_BYTES, person=_TREE_PERSON
    ).digest()


class Handle:
    """An immutable 256-bit Fix handle.

    Construct via the classmethods (:meth:`blob`, :meth:`tree`,
    :meth:`literal`, :meth:`unpack`) rather than ``__init__``, which is
    internal and validates invariants.
    """

    __slots__ = ("_payload", "_size", "_meta")

    def __init__(self, payload: bytes, size: int, meta: int):
        if meta & ~_META_KNOWN:
            raise HandleError(f"reserved metadata bits set: {meta:#06x}")
        if not 0 <= size <= SIZE_MAX:
            raise HandleError(f"size out of range: {size}")
        literal = bool(meta & _META_LITERAL)
        litlen = (meta & _META_LITLEN_MASK) >> _META_LITLEN_SHIFT
        if literal:
            if meta & _META_TREE:
                raise HandleError("literal handles are always Blobs")
            if meta & _META_REF:
                raise HandleError("literal handles are always accessible")
            if len(payload) != litlen or litlen > LITERAL_MAX:
                raise HandleError("literal payload/length mismatch")
            if size != litlen:
                raise HandleError("literal size must equal its length")
        else:
            if litlen:
                raise HandleError("literal length set on a non-literal handle")
            if len(payload) != DIGEST_BYTES:
                raise HandleError(
                    f"digest must be {DIGEST_BYTES} bytes, got {len(payload)}"
                )
        thunk = (meta & _META_THUNK_MASK) >> _META_THUNK_SHIFT
        encode = (meta & _META_ENCODE_MASK) >> _META_ENCODE_SHIFT
        if encode and not thunk:
            raise HandleError("an Encode must wrap a Thunk")
        if thunk in (ThunkStyle.APPLICATION, ThunkStyle.SELECTION):
            if not meta & _META_TREE:
                raise HandleError("application/selection thunks refer to Trees")
        self._payload = bytes(payload)
        self._size = size
        self._meta = meta

    # ------------------------------------------------------------------
    # Constructors

    @classmethod
    def blob(cls, digest: bytes, size: int, accessible: bool = True) -> "Handle":
        """Handle for an out-of-line Blob of ``size`` bytes."""
        meta = 0 if accessible else _META_REF
        return cls(digest, size, meta)

    @classmethod
    def tree(cls, digest: bytes, length: int, accessible: bool = True) -> "Handle":
        """Handle for a Tree with ``length`` entries."""
        meta = _META_TREE | (0 if accessible else _META_REF)
        return cls(digest, length, meta)

    @classmethod
    def literal(cls, data: bytes) -> "Handle":
        """Handle with the Blob payload inlined (size <= 30 bytes)."""
        if len(data) > LITERAL_MAX:
            raise HandleError(f"literal blobs hold at most {LITERAL_MAX} bytes")
        meta = _META_LITERAL | (len(data) << _META_LITLEN_SHIFT)
        return cls(bytes(data), len(data), meta)

    @classmethod
    def of_blob(cls, data: bytes) -> "Handle":
        """Canonical handle for Blob contents: literal when small enough."""
        if len(data) <= LITERAL_MAX:
            return cls.literal(data)
        return cls.blob(blob_digest(data), len(data))

    # ------------------------------------------------------------------
    # Introspection

    @property
    def meta(self) -> int:
        return self._meta

    @property
    def size(self) -> int:
        """Blob byte count, or Tree entry count, of the referenced datum."""
        return self._size

    @property
    def is_literal(self) -> bool:
        return bool(self._meta & _META_LITERAL)

    @property
    def is_tree(self) -> bool:
        """True when the referenced datum (or definition) is a Tree."""
        return bool(self._meta & _META_TREE)

    @property
    def is_blob(self) -> bool:
        return not self.is_tree

    @property
    def thunk_style(self) -> ThunkStyle:
        return ThunkStyle((self._meta & _META_THUNK_MASK) >> _META_THUNK_SHIFT)

    @property
    def encode_style(self) -> EncodeStyle:
        return EncodeStyle((self._meta & _META_ENCODE_MASK) >> _META_ENCODE_SHIFT)

    @property
    def is_thunk(self) -> bool:
        """True for bare Thunks (not wrapped in an Encode)."""
        return self.thunk_style is not ThunkStyle.NONE and not self.is_encode

    @property
    def is_encode(self) -> bool:
        return self.encode_style is not EncodeStyle.NONE

    @property
    def is_data(self) -> bool:
        """True for plain data handles (Objects and Refs)."""
        return self.thunk_style is ThunkStyle.NONE

    @property
    def is_object(self) -> bool:
        """True for accessible data (mappable by a codelet)."""
        return self.is_data and not (self._meta & _META_REF)

    @property
    def is_ref(self) -> bool:
        """True for inaccessible data (type/size visible, payload not)."""
        return self.is_data and bool(self._meta & _META_REF)

    @property
    def digest(self) -> bytes:
        if self.is_literal:
            raise HandleError("literal handles carry no digest")
        return self._payload

    @property
    def literal_data(self) -> bytes:
        if not self.is_literal:
            raise HandleError("not a literal handle")
        return self._payload

    def content_key(self) -> bytes:
        """Storage key: identity of the referenced datum.

        Ignores the view bits (Ref/Object, thunk and encode wrappers) so a
        repository stores each datum once regardless of how it is named.
        """
        tag = b"T" if self.is_tree else b"B"
        if self.is_literal:
            return b"L" + self._payload
        return tag + self._payload

    def byte_size(self) -> int:
        """Approximate wire size in bytes of the referenced datum."""
        if self.is_tree:
            return self._size * HANDLE_BYTES
        return self._size

    # ------------------------------------------------------------------
    # Derivations (re-tagging; digest and size are unchanged)

    def _with_meta(self, meta: int) -> "Handle":
        return Handle(self._payload, self._size, meta)

    def as_object(self) -> "Handle":
        """The accessible view of a data handle."""
        if not self.is_data:
            raise HandleError(f"{self!r} is not a data handle")
        return self._with_meta(self._meta & ~_META_REF)

    def as_ref(self) -> "Handle":
        """The inaccessible view of a data handle."""
        if not self.is_data:
            raise HandleError(f"{self!r} is not a data handle")
        if self.is_literal:
            # Literals are their own payload; hiding them gains nothing and
            # the ABI keeps them always accessible.
            return self
        return self._with_meta(self._meta | _META_REF)

    def _as_thunk(self, style: ThunkStyle) -> "Handle":
        if not self.is_data:
            raise HandleError("thunks are derived from data handles")
        meta = self._meta & ~(_META_REF | _META_THUNK_MASK | _META_ENCODE_MASK)
        return self._with_meta(meta | (style << _META_THUNK_SHIFT))

    def make_application(self) -> "Handle":
        """Application thunk whose definition is this Tree (paper fig. 1)."""
        if not self.is_tree:
            raise HandleError("application thunks are defined by Trees")
        return self._as_thunk(ThunkStyle.APPLICATION)

    def make_identification(self) -> "Handle":
        """Identification thunk: the identity function on this datum."""
        return self._as_thunk(ThunkStyle.IDENTIFICATION)

    def make_selection(self) -> "Handle":
        """Selection thunk whose definition is this Tree ([target, index])."""
        if not self.is_tree:
            raise HandleError("selection thunks are defined by Trees")
        return self._as_thunk(ThunkStyle.SELECTION)

    def _wrap(self, style: EncodeStyle) -> "Handle":
        if not self.is_thunk:
            raise HandleError("encodes wrap bare thunks")
        meta = self._meta & ~_META_ENCODE_MASK
        return self._with_meta(meta | (style << _META_ENCODE_SHIFT))

    def wrap_strict(self) -> "Handle":
        return self._wrap(EncodeStyle.STRICT)

    def wrap_shallow(self) -> "Handle":
        return self._wrap(EncodeStyle.SHALLOW)

    def unwrap_encode(self) -> "Handle":
        """The Thunk inside an Encode."""
        if not self.is_encode:
            raise HandleError("not an encode handle")
        return self._with_meta(self._meta & ~_META_ENCODE_MASK)

    def definition(self) -> "Handle":
        """The data handle a Thunk (or Encode) was derived from.

        For an Application or Selection thunk this names the describing
        Tree; for an Identification thunk, the datum itself.  The result is
        an accessible Object view.
        """
        if self.thunk_style is ThunkStyle.NONE:
            raise HandleError("only thunks/encodes have definitions")
        meta = self._meta & ~(_META_THUNK_MASK | _META_ENCODE_MASK | _META_REF)
        return self._with_meta(meta)

    # ------------------------------------------------------------------
    # Packing

    def pack(self) -> bytes:
        """Serialize to the 32-byte wire representation."""
        if self.is_literal:
            body = self._payload + b"\x00" * (LITERAL_MAX - len(self._payload))
        else:
            body = self._payload + self._size.to_bytes(6, "little")
        return body + self._meta.to_bytes(2, "little")

    @classmethod
    def unpack(cls, raw: bytes) -> "Handle":
        """Parse a 32-byte wire representation."""
        if len(raw) != HANDLE_BYTES:
            raise HandleError(f"handles are {HANDLE_BYTES} bytes, got {len(raw)}")
        meta = int.from_bytes(raw[30:32], "little")
        if meta & ~_META_KNOWN:
            raise HandleError(f"reserved metadata bits set: {meta:#06x}")
        if meta & _META_LITERAL:
            litlen = (meta & _META_LITLEN_MASK) >> _META_LITLEN_SHIFT
            if any(raw[litlen:LITERAL_MAX]):
                raise HandleError("literal padding must be zero")
            return cls(raw[:litlen], litlen, meta)
        size = int.from_bytes(raw[24:30], "little")
        return cls(raw[:DIGEST_BYTES], size, meta)

    # ------------------------------------------------------------------
    # Value semantics

    def __eq__(self, other) -> bool:
        if not isinstance(other, Handle):
            return NotImplemented
        return (
            self._meta == other._meta
            and self._size == other._size
            and self._payload == other._payload
        )

    def __hash__(self) -> int:
        return hash((self._payload, self._size, self._meta))

    def __repr__(self) -> str:
        kind = self._describe_kind()
        if self.is_literal:
            return f"<Handle {kind} literal={self._payload!r}>"
        return f"<Handle {kind} {self._payload[:4].hex()}… size={self._size}>"

    def _describe_kind(self) -> str:
        parts = []
        if self.is_encode:
            parts.append(self.encode_style.name.lower())
        if self.thunk_style is not ThunkStyle.NONE:
            parts.append(self.thunk_style.name.lower())
        parts.append("tree" if self.is_tree else "blob")
        if self.is_data:
            parts.append("ref" if self.is_ref else "object")
        return ":".join(parts)


def literal_or_none(handle: Handle) -> Optional[bytes]:
    """The inline payload of a literal handle, or ``None``."""
    return handle.literal_data if handle.is_literal else None
