"""The Fix API surface handed to running codelets.

Reproduces the pseudocode API of the paper's Table 1 and the Fixpoint API
of Listing 1.  A :class:`FixAPI` instance is the single capability a
codelet receives (alongside its input handle); everything a function may
observe or produce flows through it:

* ``read_blob`` / ``read_tree`` (the paper's ``attach_blob`` /
  ``attach_tree``) map accessible data into the function;
* ``create_blob`` / ``create_tree`` build new data, metered against the
  invocation's memory limit;
* ``application`` / ``identification`` / ``selection`` build Thunks;
* ``strict`` / ``shallow`` build Encodes;
* ``is_*`` / ``get_size`` query Handles (the only operations allowed on
  Refs).

Accessibility is enforced exactly as in paper section 4.1.3: a procedure
may only map data whose handles it obtained by recursively mapping Trees,
starting from its input - plus anything it created itself.  Attempting to
read a Ref, or a handle conjured out of thin air, raises
:class:`~repro.core.errors.AccessError` (the moral equivalent of a Wasm
trap).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .errors import AccessError, ResourceLimitError
from .handle import Handle
from .limits import DEFAULT_LIMITS, ResourceLimits
from .storage import Repository
from .thunks import (
    make_application,
    make_identification,
    make_invocation_tree,
    make_selection,
    make_selection_range,
    shallow,
    strict,
)


class FixAPI:
    """Capability object given to one codelet invocation."""

    def __init__(
        self,
        repo: Repository,
        input_handle: Handle,
        limits: ResourceLimits = DEFAULT_LIMITS,
    ):
        self._repo = repo
        self._limits = limits
        self._used_bytes = 0
        self._accessible: set[bytes] = set()
        self.input = input_handle
        self._grant(input_handle)

    # ------------------------------------------------------------------
    # Accessibility bookkeeping

    def _grant(self, handle: Handle) -> None:
        if handle.is_data and handle.is_object:
            self._accessible.add(handle.content_key())

    def _require_accessible(self, handle: Handle, action: str) -> None:
        if not handle.is_data:
            raise AccessError(f"cannot {action} {handle!r}: not a data handle")
        if handle.is_ref:
            raise AccessError(
                f"cannot {action} {handle!r}: Refs are inaccessible "
                "(only type and size may be inspected)"
            )
        if handle.is_literal:
            return  # literals carry their own payload
        if handle.content_key() not in self._accessible:
            raise AccessError(
                f"cannot {action} {handle!r}: outside this invocation's "
                "minimum repository"
            )

    def _meter(self, nbytes: int) -> None:
        self._used_bytes += nbytes
        if self._used_bytes > self._limits.memory_bytes:
            raise ResourceLimitError(self._used_bytes, self._limits.memory_bytes)

    @property
    def bytes_used(self) -> int:
        return self._used_bytes

    @property
    def limits(self) -> ResourceLimits:
        return self._limits

    # ------------------------------------------------------------------
    # Table 1: reading and creating data

    def read_blob(self, handle: Handle) -> bytes:
        """Read a Blob into the function (zero-copy in spirit)."""
        self._require_accessible(handle, "read blob")
        blob = self._repo.get_blob(handle)
        self._meter(len(blob))
        return blob.data

    def read_tree(self, handle: Handle) -> tuple[Handle, ...]:
        """Read a Tree into the function; its Object children become accessible."""
        self._require_accessible(handle, "read tree")
        tree = self._repo.get_tree(handle)
        self._meter(tree.byte_size())
        for child in tree:
            self._grant(child)
        return tree.children

    # Listing 1 names the same operations attach_blob / attach_tree.
    attach_blob = read_blob
    attach_tree = read_tree

    def create_blob(self, data: bytes) -> Handle:
        self._meter(len(data))
        handle = self._repo.put_blob(data)
        self._grant(handle)
        return handle

    def create_tree(self, children: Iterable[Handle]) -> Handle:
        children = tuple(children)
        self._meter(32 * len(children))
        handle = self._repo.put_tree(children)
        self._grant(handle)
        return handle

    # ------------------------------------------------------------------
    # Table 1: thunks and encodes

    def application(self, definition: Handle) -> Handle:
        """Apply a function lazily: a Thunk over an invocation Tree."""
        return definition.make_application()

    def identification(self, value: Handle) -> Handle:
        return make_identification(value)

    def selection(self, target: Handle, index: int) -> Handle:
        """Select one child (Tree target) or byte (Blob target)."""
        thunk = make_selection(self._repo, target, index)
        return thunk

    def selection_range(self, target: Handle, start: int, end: int) -> Handle:
        return make_selection_range(self._repo, target, start, end)

    def strict(self, thunk: Handle) -> Handle:
        return strict(thunk)

    def shallow(self, thunk: Handle) -> Handle:
        return shallow(thunk)

    # ------------------------------------------------------------------
    # Convenience composition (sugar over Table 1, used by examples)

    def invoke(
        self,
        function: Handle,
        args: Sequence[Handle],
        limits: ResourceLimits | None = None,
    ) -> Handle:
        """Build an Application thunk for ``function(*args)``."""
        limits = limits if limits is not None else self._limits
        tree = make_invocation_tree(self._repo, function, args, limits)
        self._grant(tree)
        return tree.make_application()

    # ------------------------------------------------------------------
    # Listing 1: handle queries (legal on every handle, including Refs)

    @staticmethod
    def is_blob(handle: Handle) -> bool:
        return handle.is_data and handle.is_blob

    @staticmethod
    def is_tree(handle: Handle) -> bool:
        return handle.is_data and handle.is_tree

    @staticmethod
    def is_ref(handle: Handle) -> bool:
        return handle.is_ref

    @staticmethod
    def is_thunk(handle: Handle) -> bool:
        return handle.is_thunk

    @staticmethod
    def is_encode(handle: Handle) -> bool:
        return handle.is_encode

    @staticmethod
    def get_size(handle: Handle) -> int:
        """Blob byte length or Tree entry count - visible even for Refs."""
        return handle.size
