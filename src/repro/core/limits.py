"""Resource-limit blobs.

Every Application tree's first entry is a resource-limits Blob (paper
fig. 1: "resource limits").  It bounds the hardware resources a Thunk may
use, and optionally carries an *output-size hint* that the scheduler uses
to include the cost of moving a result when choosing a placement (paper
section 4.2.2: "Applications can 'hint' an estimated output size of a
Thunk").

The packed format is 16 bytes - small enough to inline as a literal handle,
so limits never cost a storage round-trip::

    bytes[0:8]   memory limit in bytes (LE; 0 means the platform default)
    bytes[8:16]  output size hint in bytes (LE; 0 means no hint)
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import HandleError
from .handle import Handle

DEFAULT_MEMORY_LIMIT = 1 << 30  # 1 GiB, matching the paper's fig. 8a tasks
_PACKED_LEN = 16


@dataclass(frozen=True)
class ResourceLimits:
    """Memory budget and optional output-size hint for one invocation."""

    memory_bytes: int = DEFAULT_MEMORY_LIMIT
    output_size_hint: int = 0

    def __post_init__(self):
        if self.memory_bytes < 0 or self.output_size_hint < 0:
            raise HandleError("resource limits must be non-negative")

    def pack(self) -> bytes:
        return self.memory_bytes.to_bytes(8, "little") + self.output_size_hint.to_bytes(
            8, "little"
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "ResourceLimits":
        if len(raw) != _PACKED_LEN:
            raise HandleError(f"resource limits are {_PACKED_LEN} bytes, got {len(raw)}")
        return cls(
            memory_bytes=int.from_bytes(raw[0:8], "little"),
            output_size_hint=int.from_bytes(raw[8:16], "little"),
        )

    def handle(self) -> Handle:
        """The literal handle carrying this limits blob."""
        return Handle.of_blob(self.pack())

    def with_hint(self, output_size_hint: int) -> "ResourceLimits":
        return ResourceLimits(self.memory_bytes, output_size_hint)


DEFAULT_LIMITS = ResourceLimits()


def limits_from_handle(handle: Handle, payload: bytes | None = None) -> ResourceLimits:
    """Decode limits from a handle (literal) or an out-of-line payload."""
    if handle.is_literal:
        return ResourceLimits.unpack(handle.literal_data)
    if payload is None:
        raise HandleError("out-of-line limits blob requires its payload")
    return ResourceLimits.unpack(payload)
