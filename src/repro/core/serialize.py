"""Wire format for shipping Fix objects between nodes.

A Fixpoint node delegates jobs to remote nodes by sending Fix values -
Blobs and Trees - in a packed binary format that any node can parse
without consulting a scheduler (paper section 4.2.1).  A *frame* carries
one datum; a *bundle* carries a set of frames (for example, a Thunk's
minimum repository shipped alongside the invocation).

Frame layout::

    [32-byte handle][u32 payload length][payload]

The payload is the Blob's bytes or the Tree's serialized children.  The
receiver verifies content addresses: a frame whose payload does not hash
to its handle is rejected.
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from .data import Blob, Tree
from .errors import SerializationError
from .handle import HANDLE_BYTES, Handle
from .storage import Repository

_LEN = struct.Struct("<I")
MAGIC = b"FIXB"  # bundle magic


def encode_frame(repo: Repository, handle: Handle) -> bytes:
    """Serialize one datum (by its handle) into a frame."""
    if not handle.is_data:
        raise SerializationError(f"frames carry data, not {handle!r}")
    if handle.is_literal:
        return handle.pack() + _LEN.pack(0)
    datum = repo.get(handle)
    payload = datum.serialize()
    return handle.pack() + _LEN.pack(len(payload)) + payload


def decode_frame(repo: Repository, raw: bytes, offset: int = 0) -> tuple[Handle, int]:
    """Parse one frame, verify it, store the datum; return (handle, next offset)."""
    if len(raw) - offset < HANDLE_BYTES + _LEN.size:
        raise SerializationError("truncated frame header")
    handle = Handle.unpack(raw[offset : offset + HANDLE_BYTES])
    offset += HANDLE_BYTES
    (length,) = _LEN.unpack_from(raw, offset)
    offset += _LEN.size
    if len(raw) - offset < length:
        raise SerializationError("truncated frame payload")
    payload = raw[offset : offset + length]
    offset += length
    if handle.is_literal:
        if length:
            raise SerializationError("literal frames carry no payload")
        return handle, offset
    datum = Tree.deserialize(payload) if handle.is_tree else Blob(payload)
    if datum.handle().content_key() != handle.content_key():
        raise SerializationError(f"payload does not match handle {handle!r}")
    repo.put(datum)
    return handle, offset


def encode_bundle(repo: Repository, handles: Iterable[Handle]) -> bytes:
    """Serialize several data (deduplicated by content) into one bundle."""
    frames: List[bytes] = []
    seen: set[bytes] = set()
    count = 0
    for handle in handles:
        key = handle.content_key()
        if key in seen:
            continue
        seen.add(key)
        frames.append(encode_frame(repo, handle))
        count += 1
    return MAGIC + _LEN.pack(count) + b"".join(frames)


def decode_bundle(repo: Repository, raw: bytes) -> List[Handle]:
    """Parse a bundle into the repository; return the handles in order."""
    if raw[:4] != MAGIC:
        raise SerializationError("bad bundle magic")
    if len(raw) < 4 + _LEN.size:
        raise SerializationError("truncated bundle header")
    (count,) = _LEN.unpack_from(raw, 4)
    offset = 4 + _LEN.size
    handles: List[Handle] = []
    for _ in range(count):
        handle, offset = decode_frame(repo, raw, offset)
        handles.append(handle)
    if offset != len(raw):
        raise SerializationError("trailing bytes after bundle")
    return handles
