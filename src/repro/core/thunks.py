"""Constructors and structural accessors for Thunks and Encodes.

The paper (section 3.2, fig. 1) defines three thunk styles:

* **Application** - a Tree in the *invocation format*
  ``[resource_limits, function, arg...]`` describing the execution of a
  function in a container of available data.
* **Identification** - the identity function on a datum; evaluating it
  yields the datum itself.  Its purpose is to let a function ask the
  runtime to perform I/O: an Encode of an Identification of a Ref makes the
  referent available to a child.
* **Selection** - a "pinpoint" data dependency: a Tree in the *selection
  format* ``[target, index]`` or ``[target, start, end]`` extracting a
  child, a sub-Tree, or a Blob subrange without materializing the whole
  target.

and two encode styles, **Strict** (fully evaluate, recursing into Trees,
deliver an Object) and **Shallow** (evaluate until the result is no longer
a Thunk, deliver a Ref).

Integers embedded in selection trees are packed as 8-byte little-endian
literal blobs, so a selection costs no storage round-trips beyond its
describing Tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .errors import HandleError, SelectionError
from .handle import Handle, ThunkStyle
from .limits import DEFAULT_LIMITS, ResourceLimits
from .storage import Repository

_INT_LEN = 8


def pack_index(value: int) -> Handle:
    """A literal handle carrying a non-negative 64-bit integer."""
    if value < 0:
        raise SelectionError(f"selection indices must be non-negative, got {value}")
    return Handle.of_blob(value.to_bytes(_INT_LEN, "little"))


def unpack_index(handle: Handle, payload: bytes | None = None) -> int:
    raw = handle.literal_data if handle.is_literal else payload
    if raw is None or len(raw) != _INT_LEN:
        raise SelectionError("selection index must be an 8-byte literal blob")
    return int.from_bytes(raw, "little")


# ----------------------------------------------------------------------
# Application thunks


@dataclass(frozen=True)
class Invocation:
    """Parsed view of an Application definition Tree."""

    limits: ResourceLimits
    function: Handle
    args: tuple[Handle, ...]

    @property
    def arity(self) -> int:
        return len(self.args)


def make_invocation_tree(
    repo: Repository,
    function: Handle,
    args: Sequence[Handle],
    limits: ResourceLimits = DEFAULT_LIMITS,
) -> Handle:
    """Store the ``[rlimits, function, arg...]`` Tree; return its handle."""
    return repo.put_tree([limits.handle(), function, *args])


def make_application(
    repo: Repository,
    function: Handle,
    args: Sequence[Handle],
    limits: ResourceLimits = DEFAULT_LIMITS,
) -> Handle:
    """An Application thunk for ``function(*args)`` under ``limits``."""
    return make_invocation_tree(repo, function, args, limits).make_application()


def parse_invocation(repo: Repository, definition: Handle) -> Invocation:
    """Decode an invocation Tree back into its parts."""
    tree = repo.get_tree(definition)
    if len(tree) < 2:
        raise HandleError("invocation trees hold at least [rlimits, function]")
    limits_handle = tree[0]
    if limits_handle.is_literal:
        limits = ResourceLimits.unpack(limits_handle.literal_data)
    else:
        limits = ResourceLimits.unpack(repo.get_blob(limits_handle).data)
    return Invocation(limits=limits, function=tree[1], args=tuple(tree[2:]))


# ----------------------------------------------------------------------
# Selection thunks


@dataclass(frozen=True)
class Selection:
    """Parsed view of a Selection definition Tree.

    ``end is None`` means a single-element selection (a child Handle for a
    Tree target, a single byte for a Blob target); otherwise the half-open
    range ``[start, end)``.
    """

    target: Handle
    start: int
    end: Optional[int]

    @property
    def is_range(self) -> bool:
        return self.end is not None


def make_selection(repo: Repository, target: Handle, index: int) -> Handle:
    """A Selection thunk extracting ``target[index]``."""
    tree = repo.put_tree([target, pack_index(index)])
    return tree.make_selection()


def make_selection_range(
    repo: Repository, target: Handle, start: int, end: int
) -> Handle:
    """A Selection thunk extracting the half-open subrange ``[start, end)``."""
    if end < start:
        raise SelectionError(f"empty-reversed range [{start}, {end})")
    tree = repo.put_tree([target, pack_index(start), pack_index(end)])
    return tree.make_selection()


def parse_selection(repo: Repository, definition: Handle) -> Selection:
    tree = repo.get_tree(definition)
    if len(tree) == 2:
        return Selection(target=tree[0], start=unpack_index(tree[1]), end=None)
    if len(tree) == 3:
        return Selection(
            target=tree[0], start=unpack_index(tree[1]), end=unpack_index(tree[2])
        )
    raise HandleError("selection trees are [target, index] or [target, start, end]")


# ----------------------------------------------------------------------
# Identification thunks


def make_identification(value: Handle) -> Handle:
    """An Identification thunk over a datum (the identity function)."""
    if not value.is_data:
        raise HandleError("identification thunks refer to data handles")
    return value.make_identification()


def identified_value(thunk: Handle) -> Handle:
    """The datum an Identification thunk refers to (as an Object view)."""
    if thunk.thunk_style is not ThunkStyle.IDENTIFICATION:
        raise HandleError("not an identification thunk")
    return thunk.definition()


# ----------------------------------------------------------------------
# Encodes


def strict(thunk: Handle) -> Handle:
    """Request the maximum evaluation: deliver a fully-resolved Object."""
    return thunk.wrap_strict()


def shallow(thunk: Handle) -> Handle:
    """Request the minimum evaluation to make progress: deliver a Ref."""
    return thunk.wrap_shallow()
