"""Epidemic anti-entropy over :class:`~repro.dist.objectview.ObjectView`s.

The paper's inventory handshake (4.2.2) keeps placement beliefs fresh,
but running it all-pairs is O(n^2) handshakes with each one re-shipping
full state.  This module runs it *epidemically* instead: every round,
each view push-pulls a digest+delta exchange with ``fanout`` random
peers, so new beliefs double their audience roughly every round and the
whole group converges in O(log n) rounds shipping O(delta) bytes per
handshake - the Dynamo/Ray-style gossip the ROADMAP called for.

:class:`GossipCoordinator` is the round driver both consumers use:

* the simulated platform (:class:`~repro.dist.engine.FixpointSim` with a
  :class:`GossipConfig`) gossips machine views plus the scheduler's view
  between outputs, so scheduler beliefs age realistically instead of
  snapshotting ground truth;
* the benchmarks/tests drive it directly to measure convergence rounds,
  bytes per round, and the staleness-induced redundant transfers a
  stale belief regime pays.

Everything is seeded: the same seed replays the identical schedule of
peer choices round by round, which is what makes convergence-rounds
assertions deterministic.

The module also carries the real wire codec for digests and deltas
(:func:`pack_digest` / :func:`pack_delta` and their unpack twins) used
by the executing runtime's GOSSIP frames in :mod:`repro.fixpoint.net` -
the byte *accounting* in ``Digest.wire_bytes``/``Delta.wire_bytes``
mirrors exactly this encoding.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import FixError
from ..obs import NULL_OBS, Obs
from .membership import MembershipView
from .objectview import Delta, Digest, EMPTY_DIGEST, Entry, ObjectView

_COUNT = struct.Struct("<I")
_LEN = struct.Struct("<H")
_U64 = struct.Struct("<Q")

_NAME_STR = b"\x00"
_NAME_BYTES = b"\x01"
_NO_SIZE = b"\x00"
_HAS_SIZE = b"\x01"


class GossipError(FixError):
    """Anti-entropy failures (round budget exhausted, bad wire frames)."""


# ----------------------------------------------------------------------
# Wire codec (shared with repro.fixpoint.net's GOSSIP frames)


def pack_digest(digest: Digest) -> bytes:
    parts = [_COUNT.pack(len(digest.versions))]
    for origin in sorted(digest.versions):
        raw = origin.encode("utf-8")
        parts.append(_LEN.pack(len(raw)) + raw + _U64.pack(digest.versions[origin]))
    return b"".join(parts)


def unpack_digest(raw: bytes, offset: int = 0) -> Tuple[Digest, int]:
    (count,) = _COUNT.unpack_from(raw, offset)
    offset += _COUNT.size
    versions: Dict[str, int] = {}
    for _ in range(count):
        (length,) = _LEN.unpack_from(raw, offset)
        offset += _LEN.size
        origin = raw[offset : offset + length].decode("utf-8")
        offset += length
        (version,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        versions[origin] = version
    return Digest(versions), offset


def _pack_name(name) -> bytes:
    if isinstance(name, bytes):
        return _NAME_BYTES + _LEN.pack(len(name)) + name
    if isinstance(name, str):
        raw = name.encode("utf-8")
        return _NAME_STR + _LEN.pack(len(raw)) + raw
    raise GossipError(
        f"cannot serialize object name of type {type(name).__name__!r} "
        "(wire gossip carries str or bytes names)"
    )


def _unpack_name(raw: bytes, offset: int):
    tag = raw[offset : offset + 1]
    offset += 1
    (length,) = _LEN.unpack_from(raw, offset)
    offset += _LEN.size
    body = raw[offset : offset + length]
    offset += length
    if tag == _NAME_BYTES:
        return bytes(body), offset
    if tag == _NAME_STR:
        return body.decode("utf-8"), offset
    raise GossipError(f"bad name tag byte {tag!r} in gossip delta")


def pack_delta(delta: Delta) -> bytes:
    parts = [pack_digest(Digest(delta.versions)), _COUNT.pack(len(delta.entries))]
    for origin, version, name, location, size in delta.entries:
        origin_raw = origin.encode("utf-8")
        location_raw = location.encode("utf-8")
        parts.append(_LEN.pack(len(origin_raw)) + origin_raw + _U64.pack(version))
        parts.append(_pack_name(name))
        parts.append(_LEN.pack(len(location_raw)) + location_raw)
        if size is None:
            parts.append(_NO_SIZE)
        else:
            parts.append(_HAS_SIZE + _U64.pack(size))
    return b"".join(parts)


def unpack_delta(raw: bytes, offset: int = 0) -> Tuple[Delta, int]:
    caps, offset = unpack_digest(raw, offset)
    (count,) = _COUNT.unpack_from(raw, offset)
    offset += _COUNT.size
    entries: List[Entry] = []
    for _ in range(count):
        (length,) = _LEN.unpack_from(raw, offset)
        offset += _LEN.size
        origin = raw[offset : offset + length].decode("utf-8")
        offset += length
        (version,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        name, offset = _unpack_name(raw, offset)
        (length,) = _LEN.unpack_from(raw, offset)
        offset += _LEN.size
        location = raw[offset : offset + length].decode("utf-8")
        offset += length
        flag = raw[offset : offset + 1]
        offset += 1
        size: Optional[int] = None
        if flag == _HAS_SIZE:
            (size,) = _U64.unpack_from(raw, offset)
            offset += _U64.size
        elif flag != _NO_SIZE:
            raise GossipError(f"bad size flag byte {flag!r} in gossip delta")
        entries.append((origin, version, name, location, size))
    return Delta(tuple(entries), dict(caps.versions)), offset


# ----------------------------------------------------------------------
# The round driver


@dataclass(frozen=True)
class GossipConfig:
    """Knobs for wiring gossip into a platform (see FixpointSim).

    ``startup_rounds`` run when a graph's initial placements register;
    ``rounds_per_output`` run each time an output materializes - the
    aging knob: 0 means the scheduler only ever knows what it saw at
    startup, higher values keep beliefs fresher at more gossip traffic.

    ``membership=True`` turns on the liveness side: every participant
    keeps a :class:`~repro.dist.membership.MembershipView` that beats,
    piggybacks on each round's exchanges, and confirms unresponsive
    nodes dead after ``suspect_after`` + ``confirm_after`` observed
    rounds - at which point their holdings are evicted from that
    participant's :class:`ObjectView` and the platform's schedulers
    stop placing on them.
    """

    fanout: int = 1
    startup_rounds: int = 2
    rounds_per_output: int = 1
    seed: int = 0
    membership: bool = False
    suspect_after: int = 4
    confirm_after: int = 4


@dataclass(frozen=True)
class RoundStats:
    """Per-round accounting: who exchanged, and what it cost."""

    index: int
    pairs: Tuple[Tuple[str, str], ...]
    digest_bytes: int
    delta_bytes: int
    entries_shipped: int
    #: Liveness piggyback bytes (0 when membership is off): each
    #: handshake also swapped both sides' membership maps.
    membership_bytes: int = 0

    @property
    def bytes_shipped(self) -> int:
        return self.digest_bytes + self.delta_bytes + self.membership_bytes


class GossipCoordinator:
    """Seeded random-peer anti-entropy rounds over a set of views.

    One round: every participating view (in registration order)
    initiates a push-pull exchange with ``fanout`` uniformly random
    other participants.  With the digest/delta protocol each handshake
    ships only what the peer lacks; ``full_state=True`` is the ablation
    that re-ships both full states every handshake (what the old
    ``exchange`` did), kept measurable so the benchmark can price the
    difference.

    The coordinator is a driver, not a lock: views guard themselves, so
    rounds may run concurrently with live traffic mutating the views
    (the executing runtime's stress test does exactly that).
    """

    def __init__(
        self,
        views: Iterable[ObjectView],
        fanout: int = 1,
        seed: int = 0,
        full_state: bool = False,
        obs: Obs = NULL_OBS,
        membership: bool = False,
        suspect_after: int = 4,
        confirm_after: int = 4,
    ):
        self._views: List[ObjectView] = list(views)
        if fanout < 1:
            raise GossipError("gossip fanout must be at least 1")
        self.fanout = fanout
        self.full_state = full_state
        self.rng = random.Random(seed)
        self.rounds: List[RoundStats] = []
        #: Ground-truth dead set (:meth:`kill`): these views stop
        #: participating, and the *survivors'* failure detectors notice
        #: the silence - nothing here tells them directly.
        self._dead: Set[str] = set()
        #: Liveness: one failure detector per participant, piggybacked
        #: on every exchange.  Each detector's tombstones evict the dead
        #: node's holdings from its *own* paired ObjectView - beliefs
        #: die per-observer, epidemically, like they spread.
        self._suspect_after = suspect_after
        self._confirm_after = confirm_after
        self._membership: Dict[str, MembershipView] = {}
        #: node -> current incarnation, so :meth:`restart` knows what
        #: the survivors' tombstone says and can outrank it by one.
        self._incarnations: Dict[str, int] = {}
        if membership:
            for view in self._views:
                self._enroll(view)
        #: NULL_OBS by default; the simulated platform passes its
        #: sim-clocked obs so round/byte counters land in the same
        #: export as the scheduler's (and stay replay-deterministic).
        self.obs = obs
        self._m_rounds = obs.registry.counter(
            "gossip_coordinator_rounds_total", "Epidemic rounds driven"
        )
        self._m_exchanges = obs.registry.counter(
            "gossip_coordinator_exchanges_total",
            "Pairwise handshakes across all rounds",
        )
        self._m_bytes = obs.registry.counter(
            "gossip_coordinator_bytes_total",
            "Handshake bytes by kind (digest vs delta)",
        )
        self._m_entries = obs.registry.counter(
            "gossip_coordinator_entries_total", "Delta entries shipped"
        )
        self._m_convergence = obs.registry.histogram(
            "gossip_convergence_rounds",
            "Rounds a run() needed to converge every view",
            buckets=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0,
                     32.0, 48.0, 64.0),
        )

    @property
    def views(self) -> Sequence[ObjectView]:
        return tuple(self._views)

    def add_view(self, view: ObjectView) -> None:
        """Late joiners participate from the next round on."""
        self._views.append(view)
        if self._membership:
            self._enroll(view)

    # ------------------------------------------------------------------
    # Liveness

    def _enroll(self, view: ObjectView, incarnation: int = 1) -> None:
        self._membership[view.node] = MembershipView(
            view.node,
            suspect_after=self._suspect_after,
            confirm_after=self._confirm_after,
            on_dead=view.evict,
            on_rejoin=view.readmit,
            on_refute=view.advance_epoch,
            incarnation=incarnation,
        )
        self._incarnations[view.node] = incarnation

    @property
    def membership_enabled(self) -> bool:
        return bool(self._membership)

    def membership_view(self, node: str) -> MembershipView:
        """The failure detector paired with ``node``'s ObjectView."""
        return self._membership[node]

    def kill(self, node: str) -> None:
        """Ground truth: ``node`` crashes *now*.

        Its view stops initiating and being chosen, and its heartbeat
        stops advancing - survivors' detectors must notice the silence
        through suspect -> confirm, gossip the tombstone, and evict.
        The rounds-to-no-dead-placement gap is exactly what
        ``bench_churn.py`` measures.
        """
        self._dead.add(node)

    def restart(self, node: str, clock=None) -> ObjectView:
        """The killed ``node`` comes back, one incarnation up.

        Models a machine reboot: the old view and detector are gone
        (state did not survive the crash), and a *fresh* ObjectView is
        minted at ``epoch = incarnation + 1`` alongside a fresh
        MembershipView asserting ``ALIVE`` at that incarnation - which
        outranks every survivor's tombstone in the lattice, so ordinary
        gossip readmits the node (``on_rejoin`` lifts each survivor's
        eviction gate) and its fresh-origin beliefs merge while replays
        of its pre-death gossip still apply 0 entries.  Returns the
        fresh view so the experiment can seed its holdings.
        """
        if node not in self._dead:
            raise GossipError(
                f"cannot restart {node!r}: it was never killed"
            )
        index = next(
            (i for i, v in enumerate(self._views) if v.node == node), None
        )
        if index is None:
            raise GossipError(f"cannot restart unknown node {node!r}")
        incarnation = self._incarnations.get(node, 1) + 1
        fresh = ObjectView(node, clock=clock, epoch=incarnation)
        self._views[index] = fresh
        self._dead.discard(node)
        if self._membership:
            self._enroll(fresh, incarnation=incarnation)
        return fresh

    def declared_dead(self, node: str) -> Set[str]:
        """Which participants have tombstoned ``node`` so far."""
        return {
            observer
            for observer, membership in self._membership.items()
            if observer not in self._dead and membership.is_dead(node)
        }

    def readmitted(self, node: str) -> Set[str]:
        """Which survivors believe ``node`` alive *at its current
        incarnation* - i.e. have merged the rejoin, not merely never
        heard of the death."""
        current = self._incarnations.get(node, 1)
        return {
            observer
            for observer, membership in self._membership.items()
            if observer not in self._dead
            and observer != node
            and not membership.is_dead(node)
            and membership.incarnation(node) >= current
        }

    # ------------------------------------------------------------------

    def _exchange(self, view: ObjectView, peer: ObjectView):
        if not self.full_state:
            return view.exchange(peer)
        # Ablation: both directions ship everything, no digests first.
        mine = view.delta_since(EMPTY_DIGEST)
        theirs = peer.delta_since(EMPTY_DIGEST)
        peer.merge_delta(mine)
        view.merge_delta(theirs)
        from .objectview import ExchangeStats

        return ExchangeStats(
            digest_bytes=0,
            delta_bytes=mine.wire_bytes() + theirs.wire_bytes(),
            entries_shipped=len(mine) + len(theirs),
        )

    def round(self, participants: Optional[Set[str]] = None) -> RoundStats:
        """Run one gossip round; returns its accounting.

        ``participants`` (node names) restricts who takes part - the
        staleness experiments exclude a view from k rounds and measure
        how much worse its placements price.
        """
        active = [
            v
            for v in self._views
            if (participants is None or v.node in participants)
            and v.node not in self._dead
        ]
        if self._membership:
            # Heartbeats advance once per round a node participates in -
            # stamped like inventory versions, so the freshest beat wins
            # any merge.  A killed node's counter simply stops.
            for view in active:
                self._membership[view.node].beat()
        pairs: List[Tuple[str, str]] = []
        digest_bytes = delta_bytes = entries = membership_bytes = 0
        for view in active:
            peers = [p for p in active if p is not view]
            if not peers:
                continue
            chosen = self.rng.sample(peers, min(self.fanout, len(peers)))
            for peer in chosen:
                if self._membership:
                    # The liveness piggyback: both maps ride the same
                    # handshake (in fixpoint.net they ride the SYN/ACK
                    # frames), merged with the same join algebra.
                    # Liveness merges *before* inventory, so a
                    # tombstone evicts ahead of the stale entries it
                    # shadows and - the rejoin mirror - a readmission
                    # lifts the eviction gate ahead of the returning
                    # node's fresh entries.  Inventory-first would drop
                    # those entries *and* advance the caps past them,
                    # losing them for good.
                    mine = self._membership[view.node]
                    theirs = self._membership[peer.node]
                    membership_bytes += mine.wire_bytes()
                    membership_bytes += theirs.wire_bytes()
                    members_out = mine.members()
                    mine.merge(theirs.members())
                    theirs.merge(members_out)
                stats = self._exchange(view, peer)
                pairs.append((view.node, peer.node))
                digest_bytes += stats.digest_bytes
                delta_bytes += stats.delta_bytes
                entries += stats.entries_shipped
        if self._membership:
            # One observed round per participant: age records, run the
            # suspect -> confirm detector.  Confirmations fire on_dead,
            # which evicts the dead node from the paired ObjectView.
            for view in active:
                self._membership[view.node].tick()
        stats = RoundStats(
            index=len(self.rounds),
            pairs=tuple(pairs),
            digest_bytes=digest_bytes,
            delta_bytes=delta_bytes,
            entries_shipped=entries,
            membership_bytes=membership_bytes,
        )
        self.rounds.append(stats)
        self._m_rounds.inc()
        self._m_exchanges.inc(len(pairs))
        self._m_bytes.inc(digest_bytes, kind="digest")
        self._m_bytes.inc(delta_bytes, kind="delta")
        if membership_bytes:
            self._m_bytes.inc(membership_bytes, kind="membership")
        self._m_entries.inc(entries)
        return stats

    def run_rounds(
        self, count: int, participants: Optional[Set[str]] = None
    ) -> List[RoundStats]:
        """``count`` unconditional rounds (the platform's aging budget)."""
        return [self.round(participants) for _ in range(count)]

    def run(self, max_rounds: int = 64) -> int:
        """Gossip until every view agrees; returns rounds used.

        Raises :class:`GossipError` when the budget runs out first - a
        convergence *assertion*, not a best-effort loop.  At most
        ``max_rounds`` rounds execute (convergence is checked once more
        after the last one), so the accounting in :attr:`rounds` never
        includes a round past the budget.
        """
        for used in range(max_rounds):
            if self.converged():
                self._m_convergence.observe(float(used))
                return used
            self.round()
        if self.converged():
            self._m_convergence.observe(float(max_rounds))
            return max_rounds
        raise GossipError(
            f"gossip failed to converge within {max_rounds} rounds "
            f"({len(self._views)} views)"
        )

    # ------------------------------------------------------------------

    def converged(self) -> bool:
        """True when every *surviving* view's belief snapshot agrees.

        Killed views are excluded: they stopped participating, so their
        beliefs are frozen at death - survivors converge around them.
        """
        live = [v for v in self._views if v.node not in self._dead]
        if len(live) < 2:
            return True
        first = live[0].snapshot()
        return all(view.snapshot() == first for view in live[1:])

    def union_snapshot(self) -> Dict:
        """What a converged group must agree on: the union of beliefs."""
        union = ObjectView("gossip-union")
        for view in self._views:
            union.merge_delta(view.delta_since(union.digest()))
        return union.snapshot()

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_shipped for r in self.rounds)

    @property
    def total_entries(self) -> int:
        return sum(r.entries_shipped for r in self.rounds)
