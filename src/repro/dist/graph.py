"""The abstract job IR executed by every simulated platform.

A :class:`JobGraph` declares *data* (named, sized objects with an initial
placement) and *tasks* (functions consuming named objects and producing
exactly one named output).  It is the common currency of the evaluation:
distributed Fixpoint (:mod:`repro.dist.engine`) and every baseline in
:mod:`repro.baselines` execute the same graphs on the same simulated
clusters - only the platform machinery differs, which is the point.

Placements may name a cluster machine, the :data:`CLIENT` endpoint (data
that starts on the submitting host and must be uploaded), or
:data:`EXTERNAL` (data living on a remote storage service, fig. 8a's
150 ms server).  Validation is eager where it can be (duplicate names,
shadowing, negative sizes) and deferred to :meth:`JobGraph.validate`
where construction order makes eager checks impossible (unknown inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.errors import SchedulingError

#: The submitting client: a network endpoint, not a cluster machine.
CLIENT = "client"
#: A remote storage service (fig. 8a's 150 ms data server); fetched
#: through :class:`repro.sim.storage_service.StorageService`, never a NIC.
EXTERNAL = "external"

#: Placement sentinels that are not schedulable machines.
NON_MACHINE_LOCATIONS = frozenset({CLIENT, EXTERNAL})


@dataclass(frozen=True)
class DataSpec:
    """A named input datum: declared size and initial placement."""

    name: str
    size: int
    location: str


@dataclass(frozen=True)
class TaskSpec:
    """One invocation: a function, its named inputs, its single output.

    Sizes are declared (the simulator moves byte *counts*, not contents);
    ``compute_seconds`` is the pure user-time of the function body, and
    ``cores`` / ``memory_bytes`` are what the platform must bind to run it.
    """

    name: str
    fn: str
    inputs: Tuple[str, ...]
    output: str
    output_size: int
    compute_seconds: float
    cores: int = 1
    memory_bytes: int = 64 << 20

    def __post_init__(self) -> None:
        if self.output_size < 0:
            raise SchedulingError(
                f"task {self.name!r}: negative output size {self.output_size}"
            )
        if self.compute_seconds < 0:
            raise SchedulingError(
                f"task {self.name!r}: negative compute time {self.compute_seconds}"
            )
        if self.cores < 1:
            raise SchedulingError(
                f"task {self.name!r}: needs at least one core, got {self.cores}"
            )
        if self.memory_bytes < 0:
            raise SchedulingError(
                f"task {self.name!r}: negative memory {self.memory_bytes}"
            )


class JobGraph:
    """Data + tasks + the dependency structure implied by named objects."""

    def __init__(self) -> None:
        self.data: Dict[str, DataSpec] = {}
        self.tasks: Dict[str, TaskSpec] = {}
        #: output name -> producing task name, maintained incrementally so
        #: :meth:`producers` stays O(1) and always fresh.
        self._producers: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Construction

    def add_data(self, name: str, size: int, location: str) -> DataSpec:
        if size < 0:
            raise SchedulingError(f"data {name!r}: negative size {size}")
        if name in self.data:
            raise SchedulingError(f"duplicate data object {name!r}")
        if name in self._producers:
            raise SchedulingError(
                f"data {name!r} would shadow the output of task "
                f"{self._producers[name]!r}"
            )
        spec = DataSpec(name=name, size=size, location=location)
        self.data[name] = spec
        return spec

    def add_task(self, task: TaskSpec) -> TaskSpec:
        if task.name in self.tasks:
            raise SchedulingError(f"duplicate task {task.name!r}")
        if task.output in self._producers:
            raise SchedulingError(
                f"task {task.name!r}: output {task.output!r} already "
                f"produced by {self._producers[task.output]!r}"
            )
        if task.output in self.data:
            raise SchedulingError(
                f"task {task.name!r}: output {task.output!r} shadows an "
                "input data object"
            )
        self.tasks[task.name] = task
        self._producers[task.output] = task.name
        return task

    def prefixed(self, prefix: str) -> "JobGraph":
        """A renamed copy: every data, task, and object name gains
        ``prefix/``.

        The cluster's object registry is a single namespace, so running
        two instances of one graph (two tenants submitting the same
        wordcount) would collide on object names; the admission layer
        prefixes each submission with its ticket name.  Placements,
        sizes, and compute are untouched - only names change.
        """
        out = JobGraph()
        for spec in self.data.values():
            out.add_data(f"{prefix}/{spec.name}", spec.size, spec.location)
        for task in self.tasks.values():
            out.add_task(
                TaskSpec(
                    name=f"{prefix}/{task.name}",
                    fn=task.fn,
                    inputs=tuple(f"{prefix}/{name}" for name in task.inputs),
                    output=f"{prefix}/{task.output}",
                    output_size=task.output_size,
                    compute_seconds=task.compute_seconds,
                    cores=task.cores,
                    memory_bytes=task.memory_bytes,
                )
            )
        return out

    # ------------------------------------------------------------------
    # Validation

    def validate(self) -> None:
        """Every task input must be a declared datum or a task output."""
        for task in self.tasks.values():
            for name in task.inputs:
                if name not in self.data and name not in self._producers:
                    raise SchedulingError(
                        f"task {task.name!r}: unknown input {name!r}"
                    )

    # ------------------------------------------------------------------
    # Topology queries

    def producers(self) -> Dict[str, str]:
        """Output name -> producing task name."""
        return dict(self._producers)

    def producer_of(self, name: str) -> Optional[TaskSpec]:
        """The task producing ``name``, or None for initial data."""
        task_name = self._producers.get(name)
        return None if task_name is None else self.tasks[task_name]

    def dependencies(self, task: TaskSpec) -> List[str]:
        """Names of the tasks whose outputs ``task`` consumes (deduped,
        input order)."""
        deps = [
            self._producers[name]
            for name in task.inputs
            if name in self._producers
        ]
        return list(dict.fromkeys(deps))

    def topological_order(self) -> List[TaskSpec]:
        """Tasks in dependency order (stable within a rank).

        Raises :class:`SchedulingError` when the graph has a cycle.
        """
        indegree = {name: len(self.dependencies(t)) for name, t in self.tasks.items()}
        consumers: Dict[str, List[str]] = {name: [] for name in self.tasks}
        for name, task in self.tasks.items():
            for dep in self.dependencies(task):
                consumers[dep].append(name)
        ready = [name for name, degree in indegree.items() if degree == 0]
        order: List[TaskSpec] = []
        cursor = 0
        while cursor < len(ready):
            name = ready[cursor]
            cursor += 1
            order.append(self.tasks[name])
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.tasks):
            stuck = sorted(set(self.tasks) - {t.name for t in order})
            raise SchedulingError(f"dependency cycle involving {stuck}")
        return order

    def ready(self, available: Iterable[str]) -> Iterator[TaskSpec]:
        """The ready set a dataflow scheduler iterates as objects
        materialize: tasks whose every input is in ``available`` and whose
        own output has not materialized yet (a finished task's output is
        in ``available``, which retires it from the set)."""
        have: Set[str] = set(available)
        for task in self.tasks.values():
            if task.output not in have and all(
                name in have for name in task.inputs
            ):
                yield task

    # ------------------------------------------------------------------
    # Aggregates

    def total_input_bytes(self) -> int:
        return sum(spec.size for spec in self.data.values())

    def total_compute_seconds(self) -> float:
        return sum(task.compute_seconds for task in self.tasks.values())

    def critical_path_seconds(self) -> float:
        """Longest chain of compute time through the graph (the makespan
        floor on an infinitely wide cluster with free data movement)."""
        finish: Dict[str, float] = {}
        longest = 0.0
        for task in self.topological_order():
            start = max(
                (finish[dep] for dep in self.dependencies(task)), default=0.0
            )
            finish[task.name] = start + task.compute_seconds
            longest = max(longest, finish[task.name])
        return longest
