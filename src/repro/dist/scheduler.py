"""Dataflow-aware placement: run the code where the data already lives.

The scheduler prices every machine by the bytes its :class:`ObjectView`
believes would have to move (paper 4.2.2), so a task lands on the holder
of its largest dependency and ``predicted_move_bytes`` is zero when the
data is local.  Pricing and the decision itself live in
:mod:`repro.dist.costmodel` - the same policy the executing runtime's
:meth:`repro.fixpoint.net.FixpointNode.delegate_best` resolves through -
and all machines are priced in one pass over the inputs (the holdings
index in the view), so a wide task like fig. 10's 1,987-input link does
not pay O(machines x inputs).  Equal-cost candidates (independent tasks,
external-only inputs) spread by outstanding load, fed back through
:meth:`DataflowScheduler.task_started` / :meth:`task_finished`.

Two ablation/extension levers:

* ``locality=False`` - seeded-random placement, the fig. 8b
  "Fixpoint (no locality)" row;
* ``use_hints=True`` - output-size hints: when the caller knows where the
  task's consumer will run, moving the *output* is priced too, which can
  pull a small-input/large-output producer toward its consumer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.errors import SchedulingError
from ..obs import NULL_OBS, Obs
from .costmodel import choose
from .graph import TaskSpec
from .membership import MembershipView
from .objectview import ObjectView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cluster import Cluster


@dataclass(frozen=True)
class Placement:
    """A scheduling decision and its believed data-movement price."""

    task: str
    machine: str
    #: Input bytes the view believes are absent from ``machine`` (what the
    #: network workers will actually have to fetch there).
    predicted_move_bytes: int


class DataflowScheduler:
    """Locality-first placement over a (possibly stale) object view."""

    def __init__(
        self,
        cluster: "Cluster",
        view: ObjectView,
        locality: bool = True,
        use_hints: bool = False,
        seed: int = 0,
        outstanding: Optional[Dict[str, int]] = None,
        obs: Obs = NULL_OBS,
        membership: Optional[MembershipView] = None,
    ):
        self.cluster = cluster
        self.view = view
        #: Liveness beliefs: when wired (FixpointSim under gossip with
        #: membership on), confirmed-dead machines are excluded from
        #: every placement - in the locality path via
        #: ``costmodel.choose(exclude=...)``, and in the random-ablation
        #: path by filtering before the draw.
        self.membership = membership
        self.locality = locality
        self.use_hints = use_hints
        self.rng = random.Random(seed)
        #: Observability is off (``NULL_OBS``) unless the platform wires
        #: one in - :class:`~repro.dist.engine.FixpointSim` passes its
        #: sim-clocked obs, so ``scheduler_place_seconds`` observes
        #: simulated durations (0.0: placement is instantaneous in sim
        #: time) and stays bit-identical under seeded replay, while the
        #: benchmarks pass a wall-clocked obs to get real us/decision.
        self.obs = obs
        self._m_place = obs.registry.histogram(
            "scheduler_place_seconds", "Placement decision time"
        )
        self._m_placements = obs.registry.counter(
            "scheduler_placements_total", "Placement decisions, by machine"
        )
        self._m_move_bytes = obs.registry.counter(
            "scheduler_predicted_move_bytes_total",
            "Believed bytes the chosen placements must move",
        )
        self._machines: List[str] = cluster.machine_names()
        if not self._machines:
            raise SchedulingError("cannot schedule on an empty cluster")
        #: Outstanding tasks per machine - the load-feedback signal that
        #: spreads equal-cost siblings instead of convoying them.  Pass a
        #: shared dict to let several schedulers (one per concurrent job,
        #: each with its own possibly-stale view) see one cluster-wide
        #: load picture, so co-resident jobs spread around each other.
        self._outstanding: Dict[str, int] = (
            {m: 0 for m in self._machines} if outstanding is None else outstanding
        )

    # ------------------------------------------------------------------
    # Load feedback

    def task_started(self, machine: str) -> None:
        self._outstanding[machine] += 1

    def task_finished(self, machine: str) -> None:
        if self._outstanding.get(machine, 0) <= 0:
            raise SchedulingError(f"no outstanding task on {machine!r}")
        self._outstanding[machine] -= 1

    def note_output(
        self, name: str, machine: str, size: Optional[int] = None
    ) -> None:
        """Advance the view when an output materializes somewhere."""
        self.view.learn(name, machine, size)

    # ------------------------------------------------------------------
    # Placement

    def place(
        self, task: TaskSpec, consumer_location: Optional[str] = None
    ) -> Placement:
        """Choose a machine for ``task``.

        With locality on, the winner minimises believed bytes moved: its
        missing inputs, plus - when hints are enabled and the consumer's
        location is known - the output's journey to that consumer.  Ties
        break by outstanding load, then name (determinism).  The whole
        decision is one :func:`repro.dist.costmodel.choose` call.
        """
        with self._m_place.time():
            missing = self.view.bytes_missing_many(
                self.cluster, task.inputs, self._machines
            )
            dead = (
                self.membership.dead_nodes()
                if self.membership is not None
                else None
            )
            if not self.locality:
                live = (
                    self._machines
                    if not dead
                    else [m for m in self._machines if m not in dead]
                )
                if not live:
                    raise SchedulingError("every machine is confirmed dead")
                machine = self.rng.choice(live)
                placement = Placement(
                    task=task.name,
                    machine=machine,
                    predicted_move_bytes=missing[machine],
                )
            else:
                best = choose(
                    self._machines,
                    missing.__getitem__,
                    self._outstanding.__getitem__,
                    output_size=task.output_size,
                    consumer_location=(
                        consumer_location if self.use_hints else None
                    ),
                    exclude=dead,
                )
                placement = Placement(
                    task=task.name,
                    machine=best.candidate,
                    predicted_move_bytes=best.move_bytes,
                )
        self._m_placements.inc(machine=placement.machine)
        if placement.predicted_move_bytes:
            self._m_move_bytes.inc(placement.predicted_move_bytes)
        return placement
