"""The simulated distributed Fixpoint platform.

:class:`FixpointSim` executes :class:`~repro.dist.graph.JobGraph`s the
way the paper's system does:

* **dataflow-aware placement** - a :class:`DataflowScheduler` over a
  passive :class:`ObjectView` puts each invocation at the holder of its
  largest dependency (ablatable with ``locality=False``);
* **externalized network I/O** - dedicated network workers fetch inputs
  *before* any core or memory is bound, so fetches overlap freely and no
  claimed core ever sits in iowait (the cluster shows *idle*, i.e.
  schedulable, cores instead - fig. 8's central distinction);
* **late binding** - a core + the task's memory are claimed only once
  every input is resident, then released the moment the function returns.

The ``internal_io=True`` ablation inverts both I/O properties: resources
are bound at admission (like a provisioned serverless pod) and the fetch
happens while holding them, charged as iowait.  ``oversubscribe_cores``
reproduces the paper's internal-I/O configurations (fig. 8a: 200
schedulable cores on a 32-core box), with the measured ~7.5% compute
penalty once schedulable exceeds physical cores.

**Many jobs, one platform** - :meth:`FixpointSim.start` (inherited
lifecycle, specialised here) lets several ``(tenant, JobGraph)``
submissions execute concurrently on one shared cluster, the regime the
admission layer (:mod:`repro.dist.admission`) packs for.  Each job gets
its *own* :class:`DataflowScheduler` over its own :class:`ObjectView`
snapshot - a late-arriving job believes the cluster as it looked at its
admission, and staleness costs only redundant transfers, never
correctness - while all job schedulers share one outstanding-load map so
co-resident jobs spread around each other's work.

**Gossiped beliefs** - pass a :class:`~repro.dist.gossip.GossipConfig`
and the platform stops granting its global scheduler a free
coordinator-eye registry snapshot.  Instead every machine keeps its own
:class:`ObjectView` (a node always knows its disk), the scheduler's
view joins them in a :class:`~repro.dist.gossip.GossipCoordinator`, and
beliefs reach the scheduler only as gossip rounds carry them:
``startup_rounds`` when a graph's placements register,
``rounds_per_output`` each time an output materializes.  A job's own
scheduler still observes the outputs it placed (the result handle came
back to it), but everything else ages realistically - the staleness the
paper's design tolerates becomes a measurable knob instead of an
abstraction.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..baselines.base import JobRun, Platform
from ..core.errors import SchedulingError
from ..baselines.calibration import (
    FIXPOINT_INVOKE,
    INTERNAL_IO_RESUME,
    OVERSUBSCRIPTION_PENALTY,
)
from ..obs import Obs
from ..sim.cluster import Cluster
from ..sim.engine import Event, Simulator
from .gossip import GossipConfig, GossipCoordinator
from .graph import CLIENT, JobGraph, TaskSpec
from .objectview import ObjectView
from .scheduler import DataflowScheduler


class FixpointSim(Platform):
    """Distributed Fixpoint on the simulated cluster."""

    name = "Fixpoint"

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        locality: bool = True,
        internal_io: bool = False,
        oversubscribe_cores: Optional[int] = None,
        use_hints: bool = False,
        consumer_pins: Optional[Dict[str, str]] = None,
        seed: int = 0,
        gossip: Optional[GossipConfig] = None,
        obs: Optional[Obs] = None,
        **kwargs,
    ):
        super().__init__(sim, cluster, seed=seed, **kwargs)
        #: Platform-wide observability on the *simulated* clock: every
        #: duration a metric or span records is ``sim.now`` time, so the
        #: whole export is bit-identical under seeded replay (asserted
        #: by the obs tests) - determinism is a property of the
        #: substrate, and measurement must not break it.
        self.obs = obs if obs is not None else Obs(
            name="fixpoint-sim", clock=lambda: sim.now
        )
        self.locality = locality
        self.internal_io = internal_io
        self.use_hints = use_hints
        #: Explicit consumer-location hints per producer task name; used by
        #: the output-size-hint ablation to pin where a consumer will run.
        self.consumer_pins: Dict[str, str] = dict(consumer_pins or {})
        self._physical_cores = {
            name: machine.spec.cores for name, machine in cluster.machines.items()
        }
        if oversubscribe_cores is not None:
            for machine in cluster.machines.values():
                machine.resize_cores(oversubscribe_cores)
        self._seed = seed
        #: The platform-global scheduler: its view is the coordinator-eye
        #: belief (synced at every load, learns every output).  Jobs place
        #: through their own per-job schedulers (see :meth:`start`), which
        #: share this scheduler's outstanding-load map.
        self.scheduler = DataflowScheduler(
            cluster,
            ObjectView("fixpoint-scheduler", clock=self.obs.clock),
            locality=locality,
            use_hints=use_hints,
            seed=seed,
            obs=self.obs,
        )
        #: job_id -> that job's scheduler (own view, shared load).
        self._job_schedulers: Dict[str, DataflowScheduler] = {}
        self._graph: Optional[JobGraph] = None
        #: Gossiped-belief mode: per-machine views plus the scheduler's
        #: view anti-entropy through one seeded coordinator; the global
        #: view then learns only what gossip has carried to it.
        self.gossip_config = gossip
        self.machine_views: Dict[str, ObjectView] = {}
        self.gossip: Optional[GossipCoordinator] = None
        if gossip is not None:
            self.machine_views = {
                name: ObjectView(name, clock=self.obs.clock)
                for name in cluster.machines
            }
            self.gossip = GossipCoordinator(
                list(self.machine_views.values()) + [self.scheduler.view],
                fanout=gossip.fanout,
                seed=gossip.seed,
                obs=self.obs,
                membership=gossip.membership,
                suspect_after=gossip.suspect_after,
                confirm_after=gossip.confirm_after,
            )
            if gossip.membership:
                # Placement happens platform-side, so every scheduler
                # (global and per-job) consults the *scheduler view's*
                # failure detector: a machine is excluded once the
                # tombstone has gossiped its way to the scheduler, not
                # the instant it dies - the detection lag the churn
                # bench measures.
                self.scheduler.membership = self.gossip.membership_view(
                    self.scheduler.view.node
                )
        self.name = self._ablation_name()

    def _ablation_name(self) -> str:
        parts = []
        if not self.locality:
            parts.append("no locality")
        if self.internal_io:
            parts.append("internal I/O")
        if not parts:
            return "Fixpoint"
        return f"Fixpoint ({' + '.join(parts)})"

    # ------------------------------------------------------------------

    def load(self, graph: JobGraph) -> None:
        super().load(graph)
        self._graph = graph
        if self.gossip is None:
            # The scheduler's view snapshots the initial placements;
            # outputs are learned as they materialize (note_output below).
            self.scheduler.view.sync_from_cluster(self.cluster)
        else:
            # No free registry snapshot: each machine learns its own
            # disk, and the scheduler's view hears whatever the startup
            # gossip budget carries to it.
            for view in self.machine_views.values():
                view.refresh_local(self.cluster)
            self.gossip.run_rounds(self.gossip_config.startup_rounds)

    def start(
        self,
        graph: JobGraph,
        submitter: str = CLIENT,
        deadline_slack_hours: float = 0.0,
    ) -> JobRun:
        """Launch one of possibly many concurrent jobs on this platform.

        The job gets its own scheduler: a fresh :class:`ObjectView`
        snapshot of the cluster as of admission (later jobs' outputs stay
        unknown to it - tolerated staleness), a per-job rng stream for
        the ``locality=False`` ablation (derived from the platform seed
        and the job index, so concurrent no-locality jobs don't convoy
        onto identical "random" nodes), and the *shared* outstanding-load
        map, which is how one job's burst is visible to another's
        placement.
        """
        job = super().start(
            graph, submitter, deadline_slack_hours=deadline_slack_hours
        )
        view = ObjectView(f"fixpoint-{job.job_id}", clock=self.obs.clock)
        if self.gossip is None:
            view.sync_from_cluster(self.cluster)
        else:
            # The job believes what the (gossip-aged) scheduler believes
            # at admission - one delta, not a registry snapshot.
            view.merge_delta(self.scheduler.view.delta_since(view.digest()))
        self._job_schedulers[job.job_id] = DataflowScheduler(
            self.cluster,
            view,
            locality=self.locality,
            use_hints=self.use_hints,
            seed=self._seed + job.index,
            outstanding=self.scheduler._outstanding,
            obs=self.obs,
            membership=self.scheduler.membership,
        )
        # The per-job view dies with the job (no invocation of a
        # finished job can run again); without this, admission-heavy
        # runs would leak one full-cluster snapshot per finished job.
        job.done.add_callback(
            lambda _event, jid=job.job_id: self._job_schedulers.pop(jid, None)
        )
        return job

    def fail_machine(self, name: str) -> None:
        """Ground-truth crash of one machine (gossip+membership mode).

        The machine's view stops gossiping and its heartbeat stops;
        nothing informs the schedulers directly.  Survivors' failure
        detectors must confirm the death epidemically, after which the
        scheduler's detector excludes the machine from every placement
        and its believed holdings are evicted - the bounded detection
        lag ``bench_churn.py`` asserts on.
        """
        if self.gossip is None or not self.gossip.membership_enabled:
            raise SchedulingError(
                "fail_machine requires gossip with membership enabled "
                "(GossipConfig(membership=True))"
            )
        if name not in self.machine_views:
            raise SchedulingError(f"unknown machine {name!r}")
        self.gossip.kill(name)

    def restart_machine(self, name: str) -> None:
        """The failed machine reboots (gossip+membership mode).

        Kill -> restart -> readmission: the coordinator mints a fresh
        view one incarnation up, the machine relearns its own disk
        (stamped under the new epoch, so survivors' retained version
        caps do not swallow the assertions), and ordinary gossip rounds
        carry the rejoin - survivors readmit it, the scheduler's
        detector stops excluding it, and placement uses it again.
        Nothing informs the schedulers directly, mirroring
        :meth:`fail_machine`.
        """
        if self.gossip is None or not self.gossip.membership_enabled:
            raise SchedulingError(
                "restart_machine requires gossip with membership enabled "
                "(GossipConfig(membership=True))"
            )
        if name not in self.machine_views:
            raise SchedulingError(f"unknown machine {name!r}")
        fresh = self.gossip.restart(name, clock=self.obs.clock)
        self.machine_views[name] = fresh
        fresh.refresh_local(self.cluster)

    def _compute_penalty(self, machine: str) -> float:
        """Context-switch/cache pressure once schedulable > physical cores
        (the paper measures 7.5% on fig. 8b's internal-I/O row)."""
        capacity = self.cluster.machine(machine).cores.capacity
        if capacity > self._physical_cores[machine]:
            return 1.0 + OVERSUBSCRIPTION_PENALTY
        return 1.0

    def _consumer_hint(
        self,
        task: TaskSpec,
        graph: Optional[JobGraph],
        scheduler: DataflowScheduler,
    ) -> Optional[str]:
        """Where this task's consumer is expected to run, if known.

        Explicit pins win; otherwise, with hints enabled, the unique
        consumer's largest co-input with a believed machine location
        anchors it (data gravity), and the scheduler's cost model weighs
        moving the output there against moving the inputs here.
        """
        if not self.use_hints:
            return None
        pin = self.consumer_pins.get(task.name)
        if pin is not None:
            return pin
        if graph is None:
            return None
        consumers = [
            t for t in graph.tasks.values() if task.output in t.inputs
        ]
        if len(consumers) != 1:
            return None
        anchor: Optional[str] = None
        anchor_size = -1
        for name in consumers[0].inputs:
            if name == task.output or name not in self.cluster.objects:
                continue
            locations = [
                loc
                for loc in scheduler.view.where(name)
                if loc in self.cluster.machines
            ]
            size = self.cluster.object(name).size
            if locations and size > anchor_size:
                anchor_size = size
                anchor = min(locations)
        return anchor

    # ------------------------------------------------------------------

    def invoke(
        self, task: TaskSpec, submitter: str, job: Optional[JobRun] = None
    ) -> Event:
        """Run one task, placed by its job's scheduler when it has one."""
        self.invocations += 1
        return self.sim.process(
            self._invoke_proc(task, submitter, job),
            name=f"{self.name}:{task.name}",
        )

    def _invoke_proc(
        self, task: TaskSpec, submitter: str, job: Optional[JobRun] = None
    ):
        scheduler = self.scheduler
        graph = self._graph
        if job is not None and job.job_id in self._job_schedulers:
            scheduler = self._job_schedulers[job.job_id]
            graph = job.graph
        placement = scheduler.place(
            task, consumer_location=self._consumer_hint(task, graph, scheduler)
        )
        node = placement.machine
        machine = self.cluster.machine(node)
        scheduler.task_started(node)
        try:
            # Delegation is one self-describing message: the handle carries
            # the dependency information (no scheduler round trips).
            yield self.cluster.network.message(submitter, node)
            penalty = self._compute_penalty(node)
            if self.internal_io:
                # Ablation: provision first, fetch while occupying the
                # reservation - the claimed core starves (iowait).
                yield machine.cores.acquire(task.cores)
                yield machine.memory.acquire(task.memory_bytes)
                try:
                    started = self.sim.now
                    yield self._fetch_all(task.inputs, node)
                    self.cluster.accountant.charge(
                        node, "iowait", (self.sim.now - started) * task.cores
                    )
                    # The blocked worker resumes through the run queue: the
                    # per-invocation price of reading while provisioned.
                    yield from self._busy(
                        node,
                        "system",
                        task.cores,
                        FIXPOINT_INVOKE + INTERNAL_IO_RESUME,
                    )
                    yield from self._busy(
                        node, "user", task.cores, task.compute_seconds * penalty
                    )
                finally:
                    machine.memory.release(task.memory_bytes)
                    machine.cores.release(task.cores)
            else:
                # Externalized I/O: network workers make every input
                # resident while cores stay free (idle, not iowait)...
                yield self._fetch_all(task.inputs, node)
                # ...and late binding claims resources only now.
                yield machine.cores.acquire(task.cores)
                yield machine.memory.acquire(task.memory_bytes)
                try:
                    yield from self._busy(
                        node, "system", task.cores, FIXPOINT_INVOKE
                    )
                    yield from self._busy(
                        node, "user", task.cores, task.compute_seconds * penalty
                    )
                finally:
                    machine.memory.release(task.memory_bytes)
                    machine.cores.release(task.cores)
        finally:
            scheduler.task_finished(node)
        # The output materializes at the execution site, and the
        # scheduler's view learns it (consumers will chase the data).
        self.cluster.add_object(task.output, task.output_size, node)
        scheduler.note_output(task.output, node, task.output_size)
        if self.gossip is None:
            # The platform-global view learns it too: it is the
            # coordinator-eye belief other jobs snapshot at admission.
            if scheduler is not self.scheduler:
                self.scheduler.note_output(task.output, node, task.output_size)
        else:
            # Gossiped beliefs: the executing machine knows its own new
            # replica; everyone else - the global view included - only
            # hears about it as the round budget spreads it.
            self.machine_views[node].learn(
                task.output, node, task.output_size
            )
            self.gossip.run_rounds(self.gossip_config.rounds_per_output)
        return node
