"""One placement policy: believed bytes moved, then load, then name.

The paper's central scheduling mechanism (section 4.2.2) is a single
cost model: price every candidate location by the bytes the local
*belief* says would have to move, spread genuine ties by outstanding
load, and stay deterministic by breaking what remains on the candidate
name.  Both runtimes in this repo resolve placements here:

* the simulator's :class:`~repro.dist.scheduler.DataflowScheduler`
  prices cluster machines for :class:`~repro.dist.engine.FixpointSim`;
* the executing runtime's
  :meth:`~repro.fixpoint.net.FixpointNode.delegate_best` prices peers by
  the believed missing bytes of a Fix footprint.

Keeping the policy in one module means a delegation-policy change is
made exactly once and both the perf conclusions (simulated) and the
executing code follow it.

Everything here is pure: no cluster, no repository, no I/O.  Beliefs
arrive as callables/pairs so any view representation can plug in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Container,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..core.errors import SchedulingError


@dataclass(frozen=True)
class Quote:
    """The priced option for running one task at one candidate location.

    ``move_bytes`` is what the belief says must travel *to* the
    candidate; ``hint_bytes`` is the output's onward journey when the
    consumer's location is known (the output-size-hint lever); ``load``
    is the outstanding work already assigned there.
    """

    candidate: str
    move_bytes: int
    hint_bytes: int
    load: int

    @property
    def priced_bytes(self) -> int:
        """The quantity the policy minimises: input + hinted output bytes."""
        return self.move_bytes + self.hint_bytes

    def sort_key(self) -> Tuple[int, int, str]:
        """Cheapest bytes first; ties spread by load, then name."""
        return (self.priced_bytes, self.load, self.candidate)


def price_moves(
    needs: Iterable[Tuple[Hashable, int]],
    locations: Callable[[Hashable], Iterable[str]],
    candidates: Iterable[str],
) -> Dict[str, int]:
    """Believed bytes that must move to each candidate, in one pass.

    ``needs`` is ``(object, size)`` pairs; ``locations(object)`` yields
    the believed replica holders.  Each object is visited once and
    charged to the candidates *not* believed to hold it by subtraction
    (total minus believed-present), so the cost is
    O(needs + believed replicas + candidates) - not
    O(candidates x needs), which is what made fig. 10's 1,987-input
    link task a scheduler hot spot.

    Concurrency contract: this function is pure but iterates whatever
    ``locations`` returns, so the *caller* must keep those collections
    stable for the duration of the pass.  Belief stores that mutate on
    other threads (the executing runtime's async delegation absorbs
    replies concurrently) satisfy this by holding their own lock around
    the whole call - see :meth:`repro.dist.objectview.ObjectView.price_moves`.
    """
    present = dict.fromkeys(candidates, 0)
    total = 0
    for name, size in needs:
        total += size
        for location in locations(name):
            if location in present:
                present[location] += size
    return {candidate: total - held for candidate, held in present.items()}


def quote(
    candidate: str,
    move_bytes: int,
    load: int,
    *,
    output_size: int = 0,
    consumer_location: Optional[str] = None,
) -> Quote:
    """Price one candidate; the output hint applies only off-consumer."""
    hint_bytes = (
        output_size
        if consumer_location is not None and candidate != consumer_location
        else 0
    )
    return Quote(
        candidate=candidate,
        move_bytes=move_bytes,
        hint_bytes=hint_bytes,
        load=load,
    )


def choose(
    candidates: Iterable[str],
    move_bytes: Callable[[str], int],
    load: Callable[[str], int],
    *,
    output_size: int = 0,
    consumer_location: Optional[str] = None,
    exclude: Optional[Container[str]] = None,
) -> Quote:
    """The shared decision: the cheapest :class:`Quote`.

    Minimises ``(priced bytes, load, name)``.  A candidate believed to
    hold *nothing* is still priced (the full footprint), never skipped:
    staleness costs a redundant transfer, not a scheduling failure.

    ``exclude`` is the one exception, and it is about *liveness*, not
    staleness: membership tombstones (:mod:`repro.dist.membership`)
    name candidates that are confirmed dead, and pricing a dead machine
    is not a redundant transfer but a lost delegation.  Keeping the
    exclusion here - rather than in each caller - preserves the repo's
    one-placement-policy invariant: the simulated scheduler and the
    executing runtime drop dead candidates by exactly the same rule.
    """
    quotes: List[Quote] = [
        quote(
            candidate,
            move_bytes(candidate),
            load(candidate),
            output_size=output_size,
            consumer_location=consumer_location,
        )
        for candidate in candidates
        if exclude is None or candidate not in exclude
    ]
    if not quotes:
        raise SchedulingError("no candidate locations to place on")
    return min(quotes, key=Quote.sort_key)
