"""``repro.dist`` - distributed Fixpoint: the simulated-evaluation layer.

Five modules, mirroring the paper's distributed design (sections 4.2, 5-6):

* :mod:`repro.dist.graph` - the abstract job IR (:class:`JobGraph`,
  :class:`TaskSpec`, the :data:`CLIENT` / :data:`EXTERNAL` placements);
* :mod:`repro.dist.objectview` - :class:`ObjectView`, the passive,
  possibly-stale per-node replica map with its incremental holdings
  index and the versioned digest/delta anti-entropy state;
* :mod:`repro.dist.gossip` - :class:`GossipCoordinator`, seeded
  random-peer anti-entropy rounds (O(log n) convergence, O(delta) bytes
  per handshake) plus the digest/delta wire codec the executing
  runtime's GOSSIP frames use;
* :mod:`repro.dist.membership` - :class:`MembershipView`, SWIM-style
  gossiped liveness (heartbeats, suspect -> confirm, tombstones) whose
  confirmations evict a dead node's beliefs and placement candidacy;
* :mod:`repro.dist.costmodel` - the one placement policy (believed
  bytes moved, load tiebreak, output hints, dead-node exclusion) shared
  by the simulated scheduler and the executing runtime in
  :mod:`repro.fixpoint.net`;
* :mod:`repro.dist.scheduler` - :class:`DataflowScheduler`,
  locality-first placement with load feedback and output-size hints;
* :mod:`repro.dist.engine` - :class:`FixpointSim`, the distributed
  platform with externalized I/O and late binding (plus its ablations);
* :mod:`repro.dist.multitenancy` - section 6's footprint-aware packing,
  the profile-from-graph derivation, and the online single-bin check;
* :mod:`repro.dist.admission` - :class:`AdmissionController`, the
  multi-tenant queue/admit/fair-share/bill layer that connects the
  engine to the packing model (section 6 end to end).

``engine`` and ``admission`` are imported lazily (PEP 562): they build
on :mod:`repro.baselines.base`, which itself consumes the job IR from
this package, so an eager import here would complete the baselines <->
dist cycle.  Everything in ``__all__`` is still reachable as
``repro.dist.<name>``.
"""

from __future__ import annotations

from .costmodel import Quote, choose, price_moves
from .gossip import (
    GossipConfig,
    GossipCoordinator,
    GossipError,
    RoundStats,
)
from .graph import (
    CLIENT,
    EXTERNAL,
    DataSpec,
    JobGraph,
    TaskSpec,
)
from .multitenancy import (
    AppProfile,
    Packing,
    Phase,
    density_ratio,
    fits_online,
    footprint_aware_packing,
    peak_reservation_packing,
    profile_from_graph,
    spiky_workload,
    validate_packing,
    validate_timeline,
)
from .membership import (
    Member,
    MembershipConfig,
    MembershipError,
    MembershipView,
)
from .objectview import Delta, Digest, ExchangeStats, ObjectView
from .scheduler import DataflowScheduler, Placement

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionReport",
    "AppProfile",
    "CLIENT",
    "DataSpec",
    "DataflowScheduler",
    "Delta",
    "Digest",
    "EXTERNAL",
    "ExchangeStats",
    "FixpointSim",
    "GossipConfig",
    "GossipCoordinator",
    "GossipError",
    "JobGraph",
    "JobTicket",
    "Member",
    "MembershipConfig",
    "MembershipError",
    "MembershipView",
    "ObjectView",
    "RoundStats",
    "Packing",
    "Phase",
    "Placement",
    "Quote",
    "TaskSpec",
    "TenantBill",
    "TenantQueue",
    "choose",
    "density_ratio",
    "fits_online",
    "footprint_aware_packing",
    "peak_reservation_packing",
    "price_moves",
    "profile_from_graph",
    "spike_job",
    "spiky_workload",
    "validate_packing",
    "validate_timeline",
]

_LAZY = {
    "FixpointSim": ("repro.dist.engine", "FixpointSim"),
    "AdmissionController": ("repro.dist.admission", "AdmissionController"),
    "AdmissionError": ("repro.dist.admission", "AdmissionError"),
    "AdmissionReport": ("repro.dist.admission", "AdmissionReport"),
    "JobTicket": ("repro.dist.admission", "JobTicket"),
    "TenantBill": ("repro.dist.admission", "TenantBill"),
    "TenantQueue": ("repro.dist.admission", "TenantQueue"),
    "spike_job": ("repro.dist.admission", "spike_job"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
