"""Multi-job admission: one platform, many tenants, real bills.

This module closes the gap between the two halves of the paper's
section 6: :class:`~repro.dist.engine.FixpointSim` executes declared
dataflows, and :mod:`repro.dist.multitenancy` proves what declared
footprints are worth - but until an admission layer connects them, no
engine ever packs real jobs and no bill ever meters real work.  Each
class here reproduces a specific section-6 claim:

* :class:`AdmissionController` - *"a declared dataflow lets the platform
  admit by footprint, not by peak reservation"*: it derives each
  submitted :class:`~repro.dist.graph.JobGraph`'s piecewise memory
  profile (:func:`~repro.dist.multitenancy.profile_from_graph`, the
  critical-path schedule), and admits a job only when the *pointwise*
  projected footprint sum stays within capacity
  (:func:`~repro.dist.multitenancy.fits_online` - the online single-bin
  form of ``footprint_aware_packing``).  The ``policy="peak"`` ablation
  is the status quo it beats: every admitted job reserves its peak for
  its whole lifetime.

* :class:`TenantQueue` - *"dense multitenancy must not mean starvation"*:
  jobs that do not fit yet wait in per-tenant FIFO queues, and a
  deficit-round-robin pass (equal byte-second quanta per tenant per
  round) picks which queued job starts when capacity frees, so one
  tenant's burst cannot push another's jobs back beyond its fair share.
  The ``fairness="fifo"`` ablation is the single global queue whose
  head-of-line blocking DRR exists to avoid.

* :class:`JobTicket` / :class:`TenantBill` - *"pay for results, not for
  effort"*: every completed invocation of an admitted job emits a real
  :class:`~repro.fixpoint.billing.InvocationMeter` (metered by the
  engine as the work executes), and per-tenant bills are
  :func:`~repro.fixpoint.billing.job_bill` over those executed meters -
  so the effort-vs-results divergence under bad placement is measured
  on real runs, never synthesized.

The controller never overcommits: every admission decision is provable
after the fact by :func:`~repro.dist.multitenancy.validate_timeline`
over :attr:`AdmissionController.timeline`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..core.errors import SchedulingError
from ..fixpoint.billing import job_bill
from ..obs import NULL_OBS, Obs
from ..sim.engine import Event, Signal
from .graph import JobGraph, TaskSpec
from .multitenancy import AppProfile, fits_online, profile_from_graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..baselines.base import JobRun, Platform


class AdmissionError(SchedulingError):
    """A submission the admission layer can never or did never place."""


@dataclass(eq=False)
class JobTicket:
    """What a tenant holds for one submission, from queue to bill.

    Identity equality (``eq=False``): tickets are queue entries looked
    up by ``deque.remove``, and field-by-field comparison over graphs
    and profiles would be both slow and accidentally semantic.
    """

    tenant: str
    name: str
    graph: JobGraph
    profile: AppProfile
    deadline_slack_hours: float
    #: Byte-seconds of declared footprint - the DRR service cost.
    cost: float
    admitted: Event
    submitted_at: Optional[float] = None
    admitted_at: Optional[float] = None
    finished_at: Optional[float] = None
    job: Optional["JobRun"] = None
    failure: Optional[BaseException] = None

    @property
    def meters(self):
        """The executed invocations' meters (empty until admitted)."""
        return self.job.meters if self.job is not None else []

    @property
    def queue_delay(self) -> Optional[float]:
        if self.submitted_at is None or self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at


@dataclass
class TenantQueue:
    """One tenant's FIFO of not-yet-admitted jobs plus its DRR state."""

    tenant: str
    pending: Deque[JobTicket] = field(default_factory=deque)
    #: Unspent service credit in byte-seconds; grows by one quantum per
    #: DRR round while the tenant has pending work, resets when idle
    #: (no banking credit while the queue is empty - standard DRR).
    deficit: float = 0.0


@dataclass
class TenantBill:
    """Per-tenant totals over executed invocations, both billing models."""

    tenant: str
    jobs: int
    invocations: int
    results_total: float
    effort_total: float


@dataclass
class AdmissionReport:
    """What one admission run did: order, density, and real bills."""

    admit_order: List[str]
    max_concurrent: int
    makespan: float
    bills: Dict[str, TenantBill]
    #: ``(profile, admitted_at)`` per admitted job - feed to
    #: :func:`repro.dist.multitenancy.validate_timeline` to prove the
    #: whole history never exceeded capacity at any instant.
    timeline: List[Tuple[AppProfile, float]]


class AdmissionController:
    """Admit many ``(tenant, JobGraph)`` submissions onto one platform.

    Built on any :class:`~repro.baselines.base.Platform` that supports
    the multi-job :meth:`~repro.baselines.base.Platform.start` lifecycle
    (in practice :class:`~repro.dist.engine.FixpointSim`, whose per-job
    scheduler views make concurrent jobs first-class).

    ``capacity_bytes`` defaults to the cluster's total RAM; pass a
    smaller budget to study admission under pressure without shrinking
    the simulated machines.  ``policy`` picks the admission check
    (``"footprint"`` pointwise vs ``"peak"`` reservation ablation);
    ``fairness`` picks the dequeue discipline (``"drr"`` deficit round
    robin vs ``"fifo"`` single global queue).  Everything is
    deterministic: same submissions, same seed, same clock - same admit
    order and same bills.
    """

    def __init__(
        self,
        platform: "Platform",
        capacity_bytes: Optional[int] = None,
        policy: str = "footprint",
        fairness: str = "drr",
        quantum: Optional[float] = None,
        namespace: bool = True,
        obs: Optional[Obs] = None,
    ):
        if policy not in ("footprint", "peak"):
            raise AdmissionError(f"unknown admission policy {policy!r}")
        if fairness not in ("drr", "fifo"):
            raise AdmissionError(f"unknown fairness discipline {fairness!r}")
        if quantum is not None and quantum <= 0:
            raise AdmissionError(f"quantum must be positive: {quantum}")
        self.platform = platform
        self.sim = platform.sim
        self.capacity_bytes = (
            platform.cluster.total_memory if capacity_bytes is None else capacity_bytes
        )
        if self.capacity_bytes <= 0:
            raise AdmissionError(
                f"capacity must be positive: {self.capacity_bytes}"
            )
        self.policy = policy
        self.fairness = fairness
        self.quantum = quantum
        self.namespace = namespace
        self.queues: Dict[str, TenantQueue] = {}
        self.tickets: List[JobTicket] = []
        self.admit_order: List[str] = []
        self.timeline: List[Tuple[AppProfile, float]] = []
        self.max_concurrent = 0
        self._fifo: Deque[JobTicket] = deque()
        #: DRR service order: rotated on every admission so the tenant
        #: just served goes to the back - without this, the fixed visit
        #: order would hand every freed slot to the first-submitting
        #: tenant (exactly the starvation fair share must prevent).
        self._rr: Deque[str] = deque()
        self._active: List[JobTicket] = []
        self._names: set = set()
        self._seq = 0
        #: Instant of the earliest pending pump alarm (None when none).
        self._alarm_at: Optional[float] = None
        #: "The world changed" - a submission arrived or a job finished.
        self._stirred = Signal(self.sim, "admission")
        #: Inherits the platform's obs when it has one (FixpointSim's is
        #: sim-clocked, so queue delays are simulated seconds and stay
        #: replay-deterministic); NULL_OBS otherwise.
        if obs is None:
            obs = getattr(platform, "obs", None) or NULL_OBS
        self.obs = obs
        registry = obs.registry
        self._m_submitted = registry.counter(
            "admission_submitted_total", "Submissions accepted into a queue"
        )
        self._m_admitted = registry.counter(
            "admission_admitted_total", "Jobs launched, by tenant"
        )
        self._m_rejected = registry.counter(
            "admission_rejected_total", "Submissions rejected, by reason"
        )
        self._m_wait = registry.histogram(
            "admission_wait_seconds", "Queue delay from submit to launch"
        )
        registry.gauge(
            "admission_queue_depth", "Jobs waiting for admission"
        ).set_function(lambda: float(len(self._fifo)))
        registry.gauge(
            "admission_active_jobs", "Jobs admitted and not yet finished"
        ).set_function(lambda: float(len(self._active)))
        self.sim.process(self._pump(), name="admission-pump")

    # ------------------------------------------------------------------
    # Submission

    def submit(
        self,
        tenant: str,
        graph: JobGraph,
        at: Optional[float] = None,
        name: Optional[str] = None,
        deadline_slack_hours: float = 0.0,
    ) -> JobTicket:
        """Queue one job for ``tenant``; returns its ticket.

        ``at`` schedules the submission at a future simulated instant
        (the staggered-arrival experiments); by default the job is
        submitted now.  A job whose *derived peak* exceeds the admission
        capacity can never run and is rejected immediately; one whose
        peak merely exceeds what is currently free is queued - the
        controller never violates the pointwise capacity proof to squeeze
        it in.
        """
        if name is None:
            name = f"{tenant}-{self._seq}"
        if name in self._names:
            # Names namespace the shared object registry: a duplicate
            # would silently alias two tenants' objects onto each other.
            raise AdmissionError(f"duplicate submission name {name!r}")
        graph.validate()
        namespaced = graph.prefixed(name) if self.namespace else graph
        profile = profile_from_graph(namespaced, name=name)
        if profile.peak_bytes > self.capacity_bytes:
            self._m_rejected.inc(tenant=tenant, reason="peak_over_capacity")
            raise AdmissionError(
                f"job {name!r}: derived peak {profile.peak_bytes} exceeds "
                f"admission capacity {self.capacity_bytes}"
            )
        # Admission capacity is an aggregate; execution is not.  A task
        # wider than every machine's RAM would pass the aggregate check
        # and then crash the simulation at memory.acquire - reject it
        # here, where the tenant can see why.
        widest = max(
            (task.memory_bytes for task in namespaced.tasks.values()),
            default=0,
        )
        machine_cap = max(
            machine.memory.capacity
            for machine in self.platform.cluster.machines.values()
        )
        if widest > machine_cap:
            self._m_rejected.inc(tenant=tenant, reason="task_over_machine")
            raise AdmissionError(
                f"job {name!r}: a task needs {widest} bytes but the "
                f"largest machine has {machine_cap}"
            )
        # The name is claimed (and the auto-name sequence advanced) only
        # once the submission is accepted: a tenant that fixes a rejected
        # graph may resubmit under the same name.
        self._names.add(name)
        self._seq += 1
        ticket = JobTicket(
            tenant=tenant,
            name=name,
            graph=namespaced,
            profile=profile,
            deadline_slack_hours=deadline_slack_hours,
            cost=profile.mem_time_integral(),
            admitted=self.sim.event(f"admitted:{name}"),
        )
        self.tickets.append(ticket)
        self._m_submitted.inc(tenant=tenant)
        if at is None or at <= self.sim.now:
            self._enqueue(ticket)
        else:
            self.sim.process(
                self._delayed_submission(ticket, at - self.sim.now),
                name=f"submit:{name}",
            )
        return ticket

    def _delayed_submission(self, ticket: JobTicket, delay: float):
        yield self.sim.timeout(delay)
        self._enqueue(ticket)

    def _enqueue(self, ticket: JobTicket) -> None:
        ticket.submitted_at = self.sim.now
        if ticket.tenant not in self.queues:
            self._rr.append(ticket.tenant)
        queue = self.queues.setdefault(ticket.tenant, TenantQueue(ticket.tenant))
        queue.pending.append(ticket)
        self._fifo.append(ticket)
        self._stirred.fire()

    # ------------------------------------------------------------------
    # Admission

    def _admits(self, ticket: JobTicket) -> bool:
        """Can ``ticket`` start *now* without ever exceeding capacity?"""
        if self.policy == "peak":
            reserved = sum(t.profile.peak_bytes for t in self._active)
            return reserved + ticket.profile.peak_bytes <= self.capacity_bytes
        return fits_online(
            [(t.profile, t.admitted_at) for t in self._active],
            ticket.profile,
            self.sim.now,
            self.capacity_bytes,
        )

    def _launch(self, ticket: JobTicket) -> None:
        self.queues[ticket.tenant].pending.remove(ticket)
        self._fifo.remove(ticket)
        ticket.admitted_at = self.sim.now
        ticket.job = self.platform.start(
            ticket.graph, deadline_slack_hours=ticket.deadline_slack_hours
        )
        self._active.append(ticket)
        # Served: this tenant goes to the back of the service order.
        self._rr.remove(ticket.tenant)
        self._rr.append(ticket.tenant)
        self.admit_order.append(ticket.name)
        self._m_admitted.inc(tenant=ticket.tenant)
        self._m_wait.observe(ticket.admitted_at - ticket.submitted_at)
        self.timeline.append((ticket.profile, ticket.admitted_at))
        self.max_concurrent = max(self.max_concurrent, len(self._active))
        ticket.admitted.succeed(ticket.admitted_at)
        ticket.job.done.add_callback(
            lambda event, t=ticket: self._on_finish(t, event)
        )

    def _on_finish(self, ticket: JobTicket, event: Event) -> None:
        if not event.ok:
            ticket.failure = event.value
        ticket.finished_at = self.sim.now
        self._active.remove(ticket)
        self._stirred.fire()

    def _pump(self):
        """The admission daemon: drain whenever the world changes."""
        while True:
            self._drain()
            yield self._stirred.wait()

    def _schedule_retry(self) -> None:
        """Wake the pump at the next declared-footprint breakpoint.

        Under the pointwise policy, capacity frees by *pure passage of
        time* - an active job's declared spike decaying into its tail -
        not only by submissions and completions.  Without this alarm a
        head blocked at t=0 would wait for a whole job to finish even
        though ``fits_online`` admits it the instant the spike ends,
        silently degenerating footprint admission into the peak
        ablation.  (Peak reservations hold for a job's entire lifetime,
        so under ``policy="peak"`` there is nothing to wake for.)
        """
        if self.policy != "footprint":
            return
        now = self.sim.now
        future = [
            ticket.admitted_at + point
            for ticket in self._active
            for point in ticket.profile.breakpoints()
            if ticket.admitted_at + point > now
        ]
        if not future:
            return
        wake = min(future)
        if (
            self._alarm_at is not None
            and now < self._alarm_at <= wake
        ):
            return  # an earlier-or-equal alarm is already pending
        self._alarm_at = wake
        self.sim.process(self._alarm(wake - now, wake), name="admission-alarm")

    def _alarm(self, delay: float, wake: float):
        yield self.sim.timeout(delay)
        # A superseded alarm (an earlier wake was scheduled after this
        # one) must not wipe the bookkeeping for the current one.
        if self._alarm_at == wake:
            self._alarm_at = None
        self._stirred.fire()

    def _drain(self) -> None:
        if self.fairness == "fifo":
            # The ablation: one global queue, head-of-line blocking.
            while self._fifo and self._admits(self._fifo[0]):
                self._launch(self._fifo[0])
            if self._fifo:
                self._schedule_retry()
            return
        # Deficit round robin over tenant queues.  Tenants are visited in
        # rotating service order (the tenant just served goes last);
        # each busy tenant earns one equal quantum per round and admits
        # queued jobs while its deficit covers their byte-second cost
        # and the capacity proof holds.
        while True:
            busy = [q for q in self.queues.values() if q.pending]
            if not busy:
                return
            quantum = self.quantum
            if quantum is None:
                # Adaptive: the largest head cost this round, so every
                # tenant can afford at least its head job - fairness
                # comes from the quantum being *equal*, not small.
                quantum = max(q.pending[0].cost for q in busy)
            admitted = False
            deficit_blocked = False
            for tenant in list(self._rr):
                queue = self.queues[tenant]
                if not queue.pending:
                    queue.deficit = 0.0
                    continue
                queue.deficit += quantum
                while queue.pending:
                    head = queue.pending[0]
                    if head.cost > queue.deficit:
                        deficit_blocked = True
                        break
                    if not self._admits(head):
                        # Capacity-blocked: keep the earned deficit, a
                        # completion will stir the pump again.
                        break
                    queue.deficit -= head.cost
                    self._launch(head)
                    admitted = True
            if not admitted and not deficit_blocked:
                # Every affordable head is capacity-blocked; besides a
                # completion, the next chance is a declared breakpoint.
                self._schedule_retry()
                return

    # ------------------------------------------------------------------
    # Driving

    def run(self) -> AdmissionReport:
        """Advance the clock until every submission has run; report.

        Raises the first job failure, and :class:`AdmissionError` if
        anything was somehow left unadmitted (impossible for jobs that
        pass the submit-time peak check, kept as a guard).
        """
        self.sim.run()
        for ticket in self.tickets:
            if ticket.failure is not None:
                raise ticket.failure
        stuck = [t.name for t in self.tickets if t.finished_at is None]
        if stuck:
            raise AdmissionError(f"jobs never completed: {stuck}")
        return self.report()

    def report(self) -> AdmissionReport:
        bills: Dict[str, TenantBill] = {}
        for tenant in self.queues:
            tenant_tickets = [t for t in self.tickets if t.tenant == tenant]
            meters = [m for t in tenant_tickets for m in t.meters]
            bills[tenant] = TenantBill(
                tenant=tenant,
                jobs=len(tenant_tickets),
                invocations=len(meters),
                results_total=job_bill(meters, "results"),
                effort_total=job_bill(meters, "effort"),
            )
        submitted = [
            t.submitted_at for t in self.tickets if t.submitted_at is not None
        ]
        finished = [
            t.finished_at for t in self.tickets if t.finished_at is not None
        ]
        makespan = (
            max(finished) - min(submitted) if submitted and finished else 0.0
        )
        return AdmissionReport(
            admit_order=list(self.admit_order),
            max_concurrent=self.max_concurrent,
            makespan=makespan,
            bills=bills,
            timeline=list(self.timeline),
        )


# ----------------------------------------------------------------------
# Workload shapes


def spike_job(
    peak_bytes: int = 4 << 30,
    sustained_bytes: int = 256 << 20,
    spike_seconds: float = 1.0,
    sustain_seconds: float = 15.0,
    data_bytes: int = 1 << 20,
    location: str = "node0",
) -> JobGraph:
    """The executable analogue of
    :func:`~repro.dist.multitenancy.spiky_workload`: a two-task chain
    whose *derived* profile is a short high-memory spike followed by a
    long low-memory tail - ``profile_from_graph(spike_job(...))`` is
    exactly the section-6 spike shape, so admission experiments run the
    same fleets the packing model packs.
    """
    graph = JobGraph()
    graph.add_data("in", data_bytes, location)
    graph.add_task(
        TaskSpec(
            name="spike",
            fn="spike",
            inputs=("in",),
            output="mid",
            output_size=data_bytes,
            compute_seconds=spike_seconds,
            memory_bytes=peak_bytes,
        )
    )
    graph.add_task(
        TaskSpec(
            name="tail",
            fn="tail",
            inputs=("mid",),
            output="out",
            output_size=8,
            compute_seconds=sustain_seconds,
            memory_bytes=sustained_bytes,
        )
    )
    return graph
