"""Gossiped cluster membership: SWIM-style failure detection + tombstones.

The rest of :mod:`repro.dist` deliberately never *invalidates* a belief:
:class:`~repro.dist.objectview.ObjectView` staleness costs a redundant
transfer, not correctness.  Node death breaks that bargain - a dead
peer's gossiped holdings keep winning placement quotes forever, so one
crash degrades every future decision.  This module is the liveness side
of gossip, built so the fix *composes* with the existing anti-entropy
machinery instead of adding a second protocol:

* every node keeps a **heartbeat counter** stamped exactly like an
  inventory version: it only ever grows, and the freshest stamp wins a
  merge - so membership state piggybacks on the same SYN/ACK/PUSH
  rounds (:meth:`repro.fixpoint.net.FixpointNode.gossip_with`) and
  :class:`~repro.dist.gossip.GossipCoordinator` rounds that spread
  inventory, and converges in the same O(log n) epidemic rounds;
* a node whose heartbeat stops advancing is **suspected** after
  ``suspect_after`` local observations and **confirmed dead** after
  ``confirm_after`` more (the SWIM suspect -> confirm split: suspicion
  gossips onward so a live-but-lagging node can refute it by beating,
  and only unrefuted suspicion hardens into a tombstone);
* a **tombstone** (:data:`DEAD`) is terminal *within an incarnation*:
  it beats any heartbeat of the same incarnation and survives any
  merge order - but a node carries a SWIM **incarnation number**, and
  a higher incarnation outranks a lower incarnation's tombstone.  The
  per-node key ``(incarnation, dead?, heartbeat, status-rank)`` stays
  a total order, so the merge stays idempotent, commutative, and
  associative (property-tested) and rejoin needs no second protocol:
  a restarted node simply asserts ``ALIVE`` at ``incarnation + 1``,
  and a falsely-tombstoned node *refutes* the tombstone the same way
  the SWIM self-defense refutes suspicion - by reasserting itself one
  incarnation up (:meth:`MembershipView.beat` on a tombstoned self).

Consumers subscribe with ``on_dead`` callbacks (fired once per
tombstoned *(node, incarnation)*, outside this view's lock): the gossip
coordinator and :class:`~repro.fixpoint.net.FixpointNode` use them to
evict the dead node's beliefs from every :class:`ObjectView`, drop it
from placement candidates, and close its channels so parked waiters
fail fast.  The mirrors are ``on_rejoin`` (a previously tombstoned node
came back at a higher incarnation: readmit its beliefs, restore its
candidacy) and ``on_refute`` (*this* node just beat a tombstone about
itself: re-register, restamp, and gossip the refutation onward).  A
tombstone about this node never fires ``on_dead`` - self-destructing
on someone else's false accusation is exactly the bug refutation
exists to fix.

Time here is *logical*: :meth:`MembershipView.tick` advances a local
observation counter (one per gossip round the node participates in),
never the wall clock - the module lives in a sim-clocked path and must
replay deterministically under a seed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..analysis.sync import TrackedLock
from ..core.errors import FixError

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECT",
    "Member",
    "join_members",
    "MembershipConfig",
    "MembershipError",
    "MembershipView",
    "pack_members",
    "unpack_members",
]

#: Member liveness states.  ``ALIVE`` and ``SUSPECT`` are refutable
#: (a fresher heartbeat wins); ``DEAD`` is the tombstone, terminal
#: within its incarnation.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

_RANK = {ALIVE: 0, SUSPECT: 1, DEAD: 2}
_BY_RANK = {rank: status for status, rank in _RANK.items()}

_COUNT = struct.Struct("<I")
_LEN = struct.Struct("<H")
_U64 = struct.Struct("<Q")
_STATUS = struct.Struct("<B")


class MembershipError(FixError):
    """Membership failures (bad wire frames, invalid transitions)."""


@dataclass(frozen=True)
class Member:
    """One node's liveness assertion: ``(node, heartbeat, status,
    incarnation)``.

    The heartbeat is the node's own version counter (stamped like an
    inventory version: bumped by :meth:`MembershipView.beat`, only ever
    forward).  A suspicion is stamped *at* the heartbeat it doubts, so
    the suspected node refutes it simply by beating past it.  The
    incarnation only the node itself may bump: it resets the heartbeat
    race entirely, which is how a restarted or falsely-accused node
    outranks its own tombstone.
    """

    node: str
    heartbeat: int
    status: str = ALIVE
    incarnation: int = 1

    def order_key(self) -> Tuple[int, int, int, int]:
        """Total order per node; the merge keeps the max.

        The incarnation dominates everything: a node's fresh life
        outranks its old death.  Within an incarnation ``DEAD`` sorts
        above every live stamp regardless of heartbeat (the tombstone
        is terminal until the node itself refutes it one incarnation
        up); among live stamps the fresher heartbeat wins, and at equal
        heartbeats the doubt wins (``SUSPECT`` > ``ALIVE``), which is
        what lets an unrefuted suspicion spread instead of being
        shouted down by stale optimism.
        """
        if self.status == DEAD:
            return (self.incarnation, 1, self.heartbeat, _RANK[DEAD])
        return (self.incarnation, 0, self.heartbeat, _RANK[self.status])

    @property
    def is_dead(self) -> bool:
        return self.status == DEAD

    def wire_bytes(self) -> int:
        """Bytes this entry occupies in :func:`pack_members`."""
        return (
            _LEN.size
            + len(self.node.encode("utf-8"))
            + _U64.size  # incarnation
            + _U64.size  # heartbeat
            + 1
        )


def join_members(a: Member, b: Member) -> Member:
    """The merge: the greater assertion under :meth:`Member.order_key`.

    A total order per node makes this an idempotent, commutative,
    associative join - the same algebra the inventory delta merge has,
    so epidemic spread converges regardless of delivery order or
    duplication (property-tested in tests/test_properties.py).
    """
    if a.node != b.node:
        raise MembershipError(
            f"cannot join membership entries for {a.node!r} and {b.node!r}"
        )
    return b if b.order_key() > a.order_key() else a


# ----------------------------------------------------------------------
# Wire codec (piggybacked on the gossip SYN/ACK frames in fixpoint.net)


def pack_members(members: Iterable[Member]) -> bytes:
    """``[u32 count]`` then per member
    ``[u16 len][node][u64 incarnation][u64 hb][u8 st]``."""
    entries = sorted(members, key=lambda m: m.node)
    parts = [_COUNT.pack(len(entries))]
    for member in entries:
        raw = member.node.encode("utf-8")
        parts.append(
            _LEN.pack(len(raw))
            + raw
            + _U64.pack(member.incarnation)
            + _U64.pack(member.heartbeat)
            + _STATUS.pack(_RANK[member.status])
        )
    return b"".join(parts)


def _bounded(raw: bytes, offset: int, size: int, field: str) -> None:
    """Refuse a read past the frame instead of letting ``struct`` raise
    a bare error (or a name slice silently truncate and misparse the
    tail as garbage fields)."""
    if offset + size > len(raw):
        raise MembershipError(
            f"truncated membership frame: {field} needs {size} byte(s) at "
            f"offset {offset} but only {len(raw)} byte(s) total"
        )


def unpack_members(raw: bytes, offset: int = 0) -> Tuple[Tuple[Member, ...], int]:
    _bounded(raw, offset, _COUNT.size, "count")
    (count,) = _COUNT.unpack_from(raw, offset)
    offset += _COUNT.size
    members: List[Member] = []
    for _ in range(count):
        _bounded(raw, offset, _LEN.size, "node length")
        (length,) = _LEN.unpack_from(raw, offset)
        offset += _LEN.size
        _bounded(raw, offset, length, "node name")
        node = raw[offset : offset + length].decode("utf-8")
        offset += length
        _bounded(raw, offset, _U64.size, "incarnation")
        (incarnation,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        _bounded(raw, offset, _U64.size, "heartbeat")
        (heartbeat,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        _bounded(raw, offset, _STATUS.size, "status")
        (rank,) = _STATUS.unpack_from(raw, offset)
        offset += _STATUS.size
        status = _BY_RANK.get(rank)
        if status is None:
            raise MembershipError(f"bad membership status byte {rank}")
        members.append(Member(node, heartbeat, status, incarnation))
    return tuple(members), offset


@dataclass(frozen=True)
class MembershipConfig:
    """Failure-detector thresholds, in *observed gossip rounds*.

    ``suspect_after`` rounds without a heartbeat advance mark a node
    suspect; ``confirm_after`` further rounds of unrefuted suspicion
    confirm it dead.  Both must exceed the epidemic propagation age
    (~ceil(log2 n) rounds at fanout 1) or a live-but-lagging node's
    suspicion can harden before its refuting beat arrives.
    """

    suspect_after: int = 4
    confirm_after: int = 4


class MembershipView:
    """One node's gossiped belief about who is alive.

    Thread-safe the same way :class:`ObjectView` is: every public
    method holds the view's lock, and the ``on_dead`` / ``on_rejoin`` /
    ``on_refute`` callbacks fire *outside* it (they close channels and
    take other locks).  Each tombstoned *(node, incarnation)* fires
    ``on_dead`` exactly once per view, no matter how many merges
    re-deliver the tombstone; each dead->alive flip (only possible via
    a higher incarnation) fires ``on_rejoin`` once per transition.
    """

    def __init__(
        self,
        node: str,
        suspect_after: int = 4,
        confirm_after: int = 4,
        on_dead: Optional[Callable[[str], None]] = None,
        on_rejoin: Optional[Callable[[str], None]] = None,
        on_refute: Optional[Callable[[int], None]] = None,
        incarnation: int = 1,
    ):
        self.node = node
        self.suspect_after = suspect_after
        self.confirm_after = confirm_after
        self._lock = TrackedLock("MembershipView._lock")
        self._members: Dict[str, Member] = {
            node: Member(node, 1, ALIVE, incarnation)
        }
        #: Local logical clock: one tick per observed gossip round.
        self._ticks = 0
        #: Tick at which each node's record last *changed* - the
        #: staleness the detector ages against.
        self._since: Dict[str, int] = {node: 0}
        #: node -> highest incarnation whose tombstone was announced.
        #: A later death (necessarily at a higher incarnation, after a
        #: rejoin) announces again; re-delivery of the same tombstone
        #: never does.
        self._announced: Dict[str, int] = {}
        self._callbacks: List[Callable[[str], None]] = (
            [on_dead] if on_dead is not None else []
        )
        self._rejoin_callbacks: List[Callable[[str], None]] = (
            [on_rejoin] if on_rejoin is not None else []
        )
        self._refute_callbacks: List[Callable[[int], None]] = (
            [on_refute] if on_refute is not None else []
        )

    def on_dead(self, callback: Callable[[str], None]) -> None:
        """Subscribe to tombstone transitions (fired outside the lock)."""
        with self._lock:
            self._callbacks.append(callback)

    def on_rejoin(self, callback: Callable[[str], None]) -> None:
        """Subscribe to dead->alive transitions: a tombstoned node came
        back at a higher incarnation (fired outside the lock)."""
        with self._lock:
            self._rejoin_callbacks.append(callback)

    def on_refute(self, callback: Callable[[int], None]) -> None:
        """Subscribe to self-refutations: *this* node saw its own
        tombstone and reasserted life; the callback receives the new
        incarnation (fired outside the lock)."""
        with self._lock:
            self._refute_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Introspection

    def heartbeat(self, node: Optional[str] = None) -> int:
        with self._lock:
            member = self._members.get(node or self.node)
            return member.heartbeat if member is not None else 0

    def incarnation(self, node: Optional[str] = None) -> int:
        with self._lock:
            member = self._members.get(node or self.node)
            return member.incarnation if member is not None else 0

    def status(self, node: str) -> Optional[str]:
        with self._lock:
            member = self._members.get(node)
            return member.status if member is not None else None

    def is_dead(self, node: str) -> bool:
        with self._lock:
            member = self._members.get(node)
            return member is not None and member.is_dead

    def dead_nodes(self) -> Set[str]:
        """Every *currently* tombstoned node - the placement exclusion
        set.  A rejoined node (alive at a higher incarnation) is not in
        it, which is what restores its candidacy everywhere the set is
        consulted live (``costmodel.choose(exclude=...)``)."""
        with self._lock:
            return {n for n, m in self._members.items() if m.is_dead}

    def live_nodes(self) -> Set[str]:
        with self._lock:
            return {n for n, m in self._members.items() if not m.is_dead}

    def members(self) -> Tuple[Member, ...]:
        """The full map, for piggybacking on a gossip frame.

        Membership is O(nodes), not O(objects), so unlike inventory it
        ships whole every round - a few dozen bytes buys idempotent
        convergence with no digest bookkeeping.
        """
        with self._lock:
            return tuple(
                self._members[node] for node in sorted(self._members)
            )

    def wire_bytes(self) -> int:
        with self._lock:
            return _COUNT.size + sum(
                m.wire_bytes() for m in self._members.values()
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    # ------------------------------------------------------------------
    # Local transitions

    def beat(self) -> int:
        """Advance this node's own heartbeat (once per gossip round).

        The generalized SWIM self-defense: a tombstoned self does not
        stay tombstoned - it *refutes* the tombstone by bumping its
        incarnation and reasserting ``ALIVE``, which outranks the
        tombstone in every peer's lattice once it gossips there.
        ``on_refute`` fires with the new incarnation.
        """
        with self._lock:
            heartbeat, refuted = self._beat_locked()
        if refuted is not None:
            self._fire([], [], refuted)
        return heartbeat

    def _beat_locked(self) -> Tuple[int, Optional[int]]:
        """Returns ``(heartbeat, refuted_incarnation-or-None)``."""
        me = self._members[self.node]
        if me.is_dead:
            reborn = Member(self.node, 1, ALIVE, me.incarnation + 1)
            self._members[self.node] = reborn
            self._since[self.node] = self._ticks
            return reborn.heartbeat, reborn.incarnation
        bumped = Member(self.node, me.heartbeat + 1, ALIVE, me.incarnation)
        self._members[self.node] = bumped
        self._since[self.node] = self._ticks
        return bumped.heartbeat, None

    def suspect(self, node: str) -> None:
        """Direct evidence of trouble (a failed send, a refused dial).

        Records suspicion at the node's currently-believed heartbeat
        and incarnation, so a fresher beat arriving later still refutes
        it.  Unknown nodes are ignored (nothing to suspect), and
        tombstones are final within their incarnation.
        """
        with self._lock:
            member = self._members.get(node)
            if member is None or member.is_dead or node == self.node:
                return
            self._store(
                join_members(
                    member,
                    Member(
                        node, member.heartbeat, SUSPECT, member.incarnation
                    ),
                )
            )

    def declare_dead(self, node: str) -> None:
        """Tombstone ``node`` outright (ground-truth kill in tests, or an
        operator decision); fires ``on_dead`` like any confirmation."""
        with self._lock:
            member = self._members.get(node)
            heartbeat = member.heartbeat if member is not None else 0
            incarnation = member.incarnation if member is not None else 1
            newly_dead, rejoined = self._store(
                Member(node, heartbeat, DEAD, incarnation)
            )
        self._fire(newly_dead, rejoined)

    def _store(self, member: Member) -> Tuple[List[str], List[str]]:
        """Write one record (lock held); returns ``(newly tombstoned,
        newly rejoined)`` nodes.

        Never announces a tombstone about *this* node: acting on one's
        own death notice (evicting holdings, unregistering from the
        directory) is the self-destruct bug - the record is stored so
        the next :meth:`beat` or :meth:`merge` sees it and refutes it.
        """
        current = self._members.get(member.node)
        merged = member if current is None else join_members(current, member)
        if current is not None and merged == current:
            return [], []
        self._members[member.node] = merged
        self._since[member.node] = self._ticks
        if merged.is_dead:
            if (
                merged.node != self.node
                and self._announced.get(merged.node, 0) < merged.incarnation
            ):
                self._announced[merged.node] = merged.incarnation
                return [merged.node], []
        elif (
            current is not None
            and current.is_dead
            and merged.node != self.node
        ):
            # Only a strictly higher incarnation outranks a tombstone,
            # so this is a genuine rejoin, not heartbeat noise.
            return [], [merged.node]
        return [], []

    # ------------------------------------------------------------------
    # Merge (the gossip piggyback) and detection

    def merge(self, members: Iterable[Member]) -> int:
        """Join a peer's membership map into this one; returns how many
        records changed.  Idempotent by the lattice: replaying a map
        changes nothing.  A suspicion *about this node* is refuted on
        the spot by beating past it, and a tombstone about this node by
        bumping the incarnation - the SWIM self-defense, generalized."""
        newly_dead: List[str] = []
        rejoined: List[str] = []
        refuted: Optional[int] = None
        with self._lock:
            applied = 0
            for member in members:
                before = self._members.get(member.node)
                dead, back = self._store(member)
                newly_dead.extend(dead)
                rejoined.extend(back)
                if self._members[member.node] != before:
                    applied += 1
            me = self._members[self.node]
            if me.status == SUSPECT or me.is_dead:
                _, refuted = self._beat_locked()
        self._fire(newly_dead, rejoined, refuted)
        return applied

    def tick(self) -> List[str]:
        """One observed gossip round: age every record, run detection.

        A node whose record has not changed in ``suspect_after`` ticks
        is suspected (the suspicion gossips onward from the next
        :meth:`members` snapshot); a suspicion unrefuted for
        ``confirm_after`` more ticks hardens into a tombstone.  Returns
        the nodes newly confirmed dead.
        """
        newly_dead: List[str] = []
        with self._lock:
            self._ticks += 1
            for node, member in list(self._members.items()):
                if node == self.node or member.is_dead:
                    continue
                age = self._ticks - self._since.get(node, 0)
                if member.status == ALIVE and age >= self.suspect_after:
                    self._store(
                        Member(
                            node,
                            member.heartbeat,
                            SUSPECT,
                            member.incarnation,
                        )
                    )
                elif member.status == SUSPECT and age >= self.confirm_after:
                    dead, _ = self._store(
                        Member(
                            node, member.heartbeat, DEAD, member.incarnation
                        )
                    )
                    newly_dead.extend(dead)
        self._fire(newly_dead)
        return newly_dead

    def _fire(
        self,
        newly_dead: List[str],
        rejoined: Iterable[str] = (),
        refuted: Optional[int] = None,
    ) -> None:
        """Run subscribers outside the lock: they evict views, close
        channels, and unregister directories - all of which take their
        own locks.  Order matters: deaths first, then rejoins, then
        this node's own refutation."""
        rejoined = list(rejoined)
        if not newly_dead and not rejoined and refuted is None:
            return
        with self._lock:
            callbacks = list(self._callbacks)
            rejoin_callbacks = list(self._rejoin_callbacks)
            refute_callbacks = list(self._refute_callbacks)
        for node in newly_dead:
            for callback in callbacks:
                callback(node)
        for node in rejoined:
            for callback in rejoin_callbacks:
                callback(node)
        if refuted is not None:
            for callback in refute_callbacks:
                callback(refuted)
