"""Gossiped cluster membership: SWIM-style failure detection + tombstones.

The rest of :mod:`repro.dist` deliberately never *invalidates* a belief:
:class:`~repro.dist.objectview.ObjectView` staleness costs a redundant
transfer, not correctness.  Node death breaks that bargain - a dead
peer's gossiped holdings keep winning placement quotes forever, so one
crash degrades every future decision.  This module is the liveness side
of gossip, built so the fix *composes* with the existing anti-entropy
machinery instead of adding a second protocol:

* every node keeps a **heartbeat counter** stamped exactly like an
  inventory version: it only ever grows, and the freshest stamp wins a
  merge - so membership state piggybacks on the same SYN/ACK/PUSH
  rounds (:meth:`repro.fixpoint.net.FixpointNode.gossip_with`) and
  :class:`~repro.dist.gossip.GossipCoordinator` rounds that spread
  inventory, and converges in the same O(log n) epidemic rounds;
* a node whose heartbeat stops advancing is **suspected** after
  ``suspect_after`` local observations and **confirmed dead** after
  ``confirm_after`` more (the SWIM suspect -> confirm split: suspicion
  gossips onward so a live-but-lagging node can refute it by beating,
  and only unrefuted suspicion hardens into a tombstone);
* a **tombstone** (:data:`DEAD`) is the top of the per-node join
  lattice: it beats any heartbeat, survives any merge order, and is
  terminal - there is no rejoin without incarnation numbers (the
  recorded follow-up).  That totality is what makes the merge
  idempotent, commutative, and associative, so the hypothesis property
  suite for the inventory delta algebra extends to membership verbatim.

Consumers subscribe with ``on_dead`` callbacks (fired exactly once per
tombstoned node, outside this view's lock): the gossip coordinator and
:class:`~repro.fixpoint.net.FixpointNode` use them to evict the dead
node's beliefs from every :class:`ObjectView`, drop it from placement
candidates, and close its channels so parked waiters fail fast.

Time here is *logical*: :meth:`MembershipView.tick` advances a local
observation counter (one per gossip round the node participates in),
never the wall clock - the module lives in a sim-clocked path and must
replay deterministically under a seed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..analysis.sync import TrackedLock
from ..core.errors import FixError

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECT",
    "Member",
    "join_members",
    "MembershipConfig",
    "MembershipError",
    "MembershipView",
    "pack_members",
    "unpack_members",
]

#: Member liveness states.  ``ALIVE`` and ``SUSPECT`` are refutable
#: (a fresher heartbeat wins); ``DEAD`` is the terminal tombstone.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

_RANK = {ALIVE: 0, SUSPECT: 1, DEAD: 2}
_BY_RANK = {rank: status for status, rank in _RANK.items()}

_COUNT = struct.Struct("<I")
_LEN = struct.Struct("<H")
_U64 = struct.Struct("<Q")
_STATUS = struct.Struct("<B")


class MembershipError(FixError):
    """Membership failures (bad wire frames, invalid transitions)."""


@dataclass(frozen=True)
class Member:
    """One node's liveness assertion: ``(node, heartbeat, status)``.

    The heartbeat is the node's own version counter (stamped like an
    inventory version: bumped by :meth:`MembershipView.beat`, only ever
    forward).  A suspicion is stamped *at* the heartbeat it doubts, so
    the suspected node refutes it simply by beating past it.
    """

    node: str
    heartbeat: int
    status: str = ALIVE

    def order_key(self) -> Tuple[int, int, int]:
        """Total order per node; the merge keeps the max.

        ``DEAD`` sorts above every live stamp regardless of heartbeat
        (a tombstone is terminal - no heartbeat refutes it); among live
        stamps the fresher heartbeat wins, and at equal heartbeats the
        doubt wins (``SUSPECT`` > ``ALIVE``), which is what lets an
        unrefuted suspicion spread instead of being shouted down by
        stale optimism.
        """
        if self.status == DEAD:
            return (1, self.heartbeat, _RANK[DEAD])
        return (0, self.heartbeat, _RANK[self.status])

    @property
    def is_dead(self) -> bool:
        return self.status == DEAD

    def wire_bytes(self) -> int:
        """Bytes this entry occupies in :func:`pack_members`."""
        return _LEN.size + len(self.node.encode("utf-8")) + _U64.size + 1


def join_members(a: Member, b: Member) -> Member:
    """The merge: the greater assertion under :meth:`Member.order_key`.

    A total order per node makes this an idempotent, commutative,
    associative join - the same algebra the inventory delta merge has,
    so epidemic spread converges regardless of delivery order or
    duplication (property-tested in tests/test_properties.py).
    """
    if a.node != b.node:
        raise MembershipError(
            f"cannot join membership entries for {a.node!r} and {b.node!r}"
        )
    return b if b.order_key() > a.order_key() else a


# ----------------------------------------------------------------------
# Wire codec (piggybacked on the gossip SYN/ACK frames in fixpoint.net)


def pack_members(members: Iterable[Member]) -> bytes:
    """``[u32 count]`` then per member ``[u16 len][node][u64 hb][u8 st]``."""
    entries = sorted(members, key=lambda m: m.node)
    parts = [_COUNT.pack(len(entries))]
    for member in entries:
        raw = member.node.encode("utf-8")
        parts.append(
            _LEN.pack(len(raw))
            + raw
            + _U64.pack(member.heartbeat)
            + _STATUS.pack(_RANK[member.status])
        )
    return b"".join(parts)


def unpack_members(raw: bytes, offset: int = 0) -> Tuple[Tuple[Member, ...], int]:
    (count,) = _COUNT.unpack_from(raw, offset)
    offset += _COUNT.size
    members: List[Member] = []
    for _ in range(count):
        (length,) = _LEN.unpack_from(raw, offset)
        offset += _LEN.size
        node = raw[offset : offset + length].decode("utf-8")
        offset += length
        (heartbeat,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        (rank,) = _STATUS.unpack_from(raw, offset)
        offset += _STATUS.size
        status = _BY_RANK.get(rank)
        if status is None:
            raise MembershipError(f"bad membership status byte {rank}")
        members.append(Member(node, heartbeat, status))
    return tuple(members), offset


@dataclass(frozen=True)
class MembershipConfig:
    """Failure-detector thresholds, in *observed gossip rounds*.

    ``suspect_after`` rounds without a heartbeat advance mark a node
    suspect; ``confirm_after`` further rounds of unrefuted suspicion
    confirm it dead.  Both must exceed the epidemic propagation age
    (~ceil(log2 n) rounds at fanout 1) or a live-but-lagging node's
    suspicion can harden before its refuting beat arrives.
    """

    suspect_after: int = 4
    confirm_after: int = 4


class MembershipView:
    """One node's gossiped belief about who is alive.

    Thread-safe the same way :class:`ObjectView` is: every public
    method holds the view's lock, and ``on_dead`` callbacks fire
    *outside* it (they close channels and take other locks).  Each
    tombstoned node fires the callbacks exactly once per view, no
    matter how many merges re-deliver the tombstone.
    """

    def __init__(
        self,
        node: str,
        suspect_after: int = 4,
        confirm_after: int = 4,
        on_dead: Optional[Callable[[str], None]] = None,
    ):
        self.node = node
        self.suspect_after = suspect_after
        self.confirm_after = confirm_after
        self._lock = TrackedLock("MembershipView._lock")
        self._members: Dict[str, Member] = {node: Member(node, 1, ALIVE)}
        #: Local logical clock: one tick per observed gossip round.
        self._ticks = 0
        #: Tick at which each node's record last *changed* - the
        #: staleness the detector ages against.
        self._since: Dict[str, int] = {node: 0}
        self._announced: Set[str] = set()
        self._callbacks: List[Callable[[str], None]] = (
            [on_dead] if on_dead is not None else []
        )

    def on_dead(self, callback: Callable[[str], None]) -> None:
        """Subscribe to tombstone transitions (fired outside the lock)."""
        with self._lock:
            self._callbacks.append(callback)

    # ------------------------------------------------------------------
    # Introspection

    def heartbeat(self, node: Optional[str] = None) -> int:
        with self._lock:
            member = self._members.get(node or self.node)
            return member.heartbeat if member is not None else 0

    def status(self, node: str) -> Optional[str]:
        with self._lock:
            member = self._members.get(node)
            return member.status if member is not None else None

    def is_dead(self, node: str) -> bool:
        with self._lock:
            member = self._members.get(node)
            return member is not None and member.is_dead

    def dead_nodes(self) -> Set[str]:
        """Every tombstoned node - the placement exclusion set."""
        with self._lock:
            return {n for n, m in self._members.items() if m.is_dead}

    def live_nodes(self) -> Set[str]:
        with self._lock:
            return {n for n, m in self._members.items() if not m.is_dead}

    def members(self) -> Tuple[Member, ...]:
        """The full map, for piggybacking on a gossip frame.

        Membership is O(nodes), not O(objects), so unlike inventory it
        ships whole every round - a few dozen bytes buys idempotent
        convergence with no digest bookkeeping.
        """
        with self._lock:
            return tuple(
                self._members[node] for node in sorted(self._members)
            )

    def wire_bytes(self) -> int:
        with self._lock:
            return _COUNT.size + sum(
                m.wire_bytes() for m in self._members.values()
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    # ------------------------------------------------------------------
    # Local transitions

    def beat(self) -> int:
        """Advance this node's own heartbeat (once per gossip round).

        A tombstoned self stays tombstoned: without incarnation numbers
        a node that the cluster declared dead cannot rejoin - it keeps
        running, but every peer ignores it (the recorded follow-up).
        """
        with self._lock:
            return self._beat_locked()

    def _beat_locked(self) -> int:
        me = self._members[self.node]
        if me.is_dead:
            return me.heartbeat
        self._store(Member(self.node, me.heartbeat + 1, ALIVE))
        return me.heartbeat + 1

    def suspect(self, node: str) -> None:
        """Direct evidence of trouble (a failed send, a refused dial).

        Records suspicion at the node's currently-believed heartbeat, so
        a fresher beat arriving later still refutes it.  Unknown nodes
        are ignored (nothing to suspect), and tombstones are final.
        """
        with self._lock:
            member = self._members.get(node)
            if member is None or member.is_dead or node == self.node:
                return
            self._store(join_members(member, Member(node, member.heartbeat, SUSPECT)))

    def declare_dead(self, node: str) -> None:
        """Tombstone ``node`` outright (ground-truth kill in tests, or an
        operator decision); fires ``on_dead`` like any confirmation."""
        with self._lock:
            member = self._members.get(node)
            heartbeat = member.heartbeat if member is not None else 0
            newly_dead = self._store(Member(node, heartbeat, DEAD))
        self._fire(newly_dead)

    def _store(self, member: Member) -> List[str]:
        """Write one record (lock held); returns nodes newly tombstoned."""
        current = self._members.get(member.node)
        merged = member if current is None else join_members(current, member)
        if current is not None and merged == current:
            return []
        self._members[member.node] = merged
        self._since[member.node] = self._ticks
        if merged.is_dead and merged.node not in self._announced:
            self._announced.add(merged.node)
            return [merged.node]
        return []

    # ------------------------------------------------------------------
    # Merge (the gossip piggyback) and detection

    def merge(self, members: Iterable[Member]) -> int:
        """Join a peer's membership map into this one; returns how many
        records changed.  Idempotent by the lattice: replaying a map
        changes nothing.  A suspicion *about this node* is refuted on
        the spot by beating past it - the SWIM self-defense."""
        newly_dead: List[str] = []
        with self._lock:
            applied = 0
            for member in members:
                before = self._members.get(member.node)
                dead = self._store(member)
                newly_dead.extend(dead)
                if self._members[member.node] != before:
                    applied += 1
            me = self._members[self.node]
            if me.status == SUSPECT:
                self._beat_locked()
        self._fire(newly_dead)
        return applied

    def tick(self) -> List[str]:
        """One observed gossip round: age every record, run detection.

        A node whose record has not changed in ``suspect_after`` ticks
        is suspected (the suspicion gossips onward from the next
        :meth:`members` snapshot); a suspicion unrefuted for
        ``confirm_after`` more ticks hardens into a tombstone.  Returns
        the nodes newly confirmed dead.
        """
        newly_dead: List[str] = []
        with self._lock:
            self._ticks += 1
            for node, member in list(self._members.items()):
                if node == self.node or member.is_dead:
                    continue
                age = self._ticks - self._since.get(node, 0)
                if member.status == ALIVE and age >= self.suspect_after:
                    self._store(Member(node, member.heartbeat, SUSPECT))
                elif member.status == SUSPECT and age >= self.confirm_after:
                    newly_dead.extend(
                        self._store(Member(node, member.heartbeat, DEAD))
                    )
        self._fire(newly_dead)
        return newly_dead

    def _fire(self, newly_dead: List[str]) -> None:
        """Run ``on_dead`` subscribers outside the lock: they evict
        views, close channels, and unregister directories - all of
        which take their own locks."""
        if not newly_dead:
            return
        with self._lock:
            callbacks = list(self._callbacks)
        for node in newly_dead:
            for callback in callbacks:
                callback(node)
