"""Ultra-high-density multitenancy packing (paper section 6).

Fix's declared, deterministic dataflow gives the platform each
application's *memory footprint over time* - not just a peak reservation.
This module quantifies what that knowledge is worth:

* :class:`Phase` / :class:`AppProfile` - a piecewise-constant memory
  profile (e.g. a 4 GB startup spike followed by a long 256 MB tail);
* :func:`peak_reservation_packing` - the status quo: every app reserves
  its peak for its whole lifetime (first-fit decreasing on peaks);
* :func:`footprint_aware_packing` - packing against the *time-varying*
  sum: apps whose spikes interleave share a machine safely;
* :func:`validate_packing` - proves a packing never exceeds capacity at
  any instant (density must never come from overcommitting);
* :func:`spiky_workload` / :func:`density_ratio` - the section-6
  experiment: staggered spiky fleets pack several times denser;
* :func:`profile_from_graph` - derive a job's declared profile from its
  :class:`~repro.dist.graph.JobGraph` critical-path schedule, the bridge
  the admission layer (:mod:`repro.dist.admission`) crosses from the
  executable job IR into this packing model;
* :func:`fits_online` / :func:`validate_timeline` - the *online*
  single-bin variant of the same pointwise check: jobs arrive at
  arbitrary instants on one shared cluster, and an admission is legal
  exactly when the projected footprint sum stays within capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Sequence, Tuple

from ..core.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .graph import JobGraph


@dataclass(frozen=True)
class Phase:
    """A constant-memory interval of an application's life."""

    seconds: float
    bytes: int

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise SchedulingError(f"phase duration must be positive: {self.seconds}")
        if self.bytes < 0:
            raise SchedulingError(f"phase memory cannot be negative: {self.bytes}")


@dataclass(frozen=True)
class AppProfile:
    """An application's declared memory footprint over time."""

    name: str
    phases: Tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise SchedulingError(f"app {self.name!r}: profile has no phases")

    @property
    def peak_bytes(self) -> int:
        return max(phase.bytes for phase in self.phases)

    @property
    def lifetime(self) -> float:
        return sum(phase.seconds for phase in self.phases)

    def memory_at(self, t: float) -> int:
        """Memory held ``t`` seconds after start (0 once finished).

        Phases are half-open ``[start, end)`` intervals.
        """
        if t < 0:
            return 0
        clock = 0.0
        for phase in self.phases:
            clock += phase.seconds
            if t < clock:
                return phase.bytes
        return 0

    def mem_time_integral(self) -> float:
        """Byte-seconds over the lifetime (the true resource consumption a
        footprint-aware platform bills for)."""
        return sum(phase.seconds * phase.bytes for phase in self.phases)

    def breakpoints(self) -> List[float]:
        """Instants where this profile's memory can change."""
        points = [0.0]
        clock = 0.0
        for phase in self.phases:
            clock += phase.seconds
            points.append(clock)
        return points

    def delayed(self, offset: float) -> "AppProfile":
        """This profile started ``offset`` seconds late: a zero-memory
        lead-in phase, so online arrivals reuse the co-start machinery
        (:func:`validate_packing` checks phase breakpoints exactly)."""
        if offset < 0:
            raise SchedulingError(f"offset cannot be negative: {offset}")
        if offset == 0:
            return self
        return AppProfile(self.name, (Phase(offset, 0), *self.phases))


@dataclass
class Packing:
    """An assignment of applications to fixed-capacity machines."""

    capacity_bytes: int
    bins: List[List[AppProfile]] = field(default_factory=list)

    @property
    def bin_count(self) -> int:
        return len(self.bins)

    def app_count(self) -> int:
        return sum(len(members) for members in self.bins)

    def apps_per_bin(self) -> float:
        if not self.bins:
            return 0.0
        return self.app_count() / self.bin_count


def _peak_demand(members: Sequence[AppProfile]) -> int:
    """The worst instantaneous sum of a co-located set (apps co-start;
    profiles are piecewise constant, so checking every member's phase
    breakpoints is exact)."""
    points = sorted({t for app in members for t in app.breakpoints()})
    worst = 0
    for t in points:
        worst = max(worst, sum(app.memory_at(t) for app in members))
    return worst


def validate_packing(packing: Packing) -> None:
    """Prove the packing never exceeds capacity at any instant."""
    for index, members in enumerate(packing.bins):
        demand = _peak_demand(members)
        if demand > packing.capacity_bytes:
            raise SchedulingError(
                f"bin {index}: peak demand {demand} exceeds capacity "
                f"{packing.capacity_bytes}"
            )


def _check_fits(apps: Sequence[AppProfile], capacity_bytes: int) -> None:
    if capacity_bytes <= 0:
        raise SchedulingError(f"capacity must be positive: {capacity_bytes}")
    for app in apps:
        if app.peak_bytes > capacity_bytes:
            raise SchedulingError(
                f"app {app.name!r}: peak {app.peak_bytes} exceeds machine "
                f"capacity {capacity_bytes}"
            )


def peak_reservation_packing(
    apps: Sequence[AppProfile], capacity_bytes: int
) -> Packing:
    """The status quo: reserve every app's peak for its whole lifetime.

    First-fit decreasing on peak reservations (the standard serverless
    admission model: sum of limits <= machine memory).
    """
    _check_fits(apps, capacity_bytes)
    ordered = sorted(apps, key=lambda a: a.peak_bytes, reverse=True)
    bins: List[List[AppProfile]] = []
    reserved: List[int] = []
    for app in ordered:
        for index, total in enumerate(reserved):
            if total + app.peak_bytes <= capacity_bytes:
                bins[index].append(app)
                reserved[index] += app.peak_bytes
                break
        else:
            bins.append([app])
            reserved.append(app.peak_bytes)
    return Packing(capacity_bytes=capacity_bytes, bins=bins)


def footprint_aware_packing(
    apps: Sequence[AppProfile], capacity_bytes: int
) -> Packing:
    """Pack against the time-varying footprint sum (what Fix's declared
    profiles enable): an app joins a machine when the *pointwise* total
    stays within capacity, so staggered spikes interleave.

    Profile knowledge can only help: when first-fit over footprints ever
    needs more machines than peak reservation would (a bin-packing order
    anomaly, not a modelling gain), the peak packing is returned instead -
    footprint awareness degrades gracefully to reservations.
    """
    _check_fits(apps, capacity_bytes)
    ordered = sorted(apps, key=lambda a: a.peak_bytes, reverse=True)
    bins: List[List[AppProfile]] = []
    for app in ordered:
        for members in bins:
            if _peak_demand([*members, app]) <= capacity_bytes:
                members.append(app)
                break
        else:
            bins.append([app])
    packing = Packing(capacity_bytes=capacity_bytes, bins=bins)
    fallback = peak_reservation_packing(apps, capacity_bytes)
    if fallback.bin_count < packing.bin_count:
        return fallback
    return packing


def spiky_workload(
    count: int,
    peak_bytes: int,
    sustained_bytes: int,
    spike_seconds: float = 1.0,
    sustain_seconds: float = 15.0,
    stagger_slots: int = 1,
) -> List[AppProfile]:
    """A fleet of spiky apps: a short high-memory spike, then a long
    low-memory tail, with spikes staggered across ``stagger_slots`` time
    slots (app *i* spikes in slot ``i % stagger_slots``).

    ``stagger_slots=1`` aligns every spike at t=0 - the adversarial case
    where profile knowledge cannot conjure capacity.
    """
    if count <= 0 or stagger_slots <= 0:
        raise SchedulingError("spiky_workload needs positive count and slots")
    apps: List[AppProfile] = []
    for i in range(count):
        offset = (i % stagger_slots) * spike_seconds
        phases: List[Phase] = []
        if offset > 0:
            phases.append(Phase(offset, sustained_bytes))
        phases.append(Phase(spike_seconds, peak_bytes))
        phases.append(Phase(sustain_seconds, sustained_bytes))
        apps.append(AppProfile(f"app-{i:04d}", tuple(phases)))
    return apps


def density_ratio(
    apps: Sequence[AppProfile], capacity_bytes: int
) -> Tuple[Packing, Packing, float]:
    """Both packings (validated) and the machine-count ratio peak/aware -
    the density headroom footprint knowledge buys."""
    aware = footprint_aware_packing(apps, capacity_bytes)
    peak = peak_reservation_packing(apps, capacity_bytes)
    validate_packing(aware)
    validate_packing(peak)
    ratio = peak.bin_count / aware.bin_count if aware.bin_count else 1.0
    return aware, peak, ratio


# ----------------------------------------------------------------------
# Profiles from executable jobs (the admission layer's bridge)

#: Zero-compute tasks still occupy memory for an instant; give their
#: interval a measurable width so the derived profile stays well-formed.
MIN_PHASE_SECONDS = 1e-9


def profile_from_graph(graph: "JobGraph", name: str = "job") -> AppProfile:
    """The declared memory footprint a :class:`JobGraph` implies.

    The paper's admission argument (section 6) rests on the platform
    *knowing* each job's footprint over time before running it; with a
    declared dataflow that knowledge is derivable, not guessed.  This
    schedules every task at its critical-path instant (it starts when its
    last dependency finishes - the infinitely wide, free-data-movement
    schedule behind :meth:`JobGraph.critical_path_seconds`) and holds
    ``task.memory_bytes`` for the task's compute time, then flattens the
    interval sum into a piecewise-constant :class:`AppProfile`.

    This is the *declared* footprint: a real run under contention
    stretches in time but never grows in instantaneous memory, because
    the engine's late binding acquires each task's memory only for the
    compute interval the declaration prices.
    """
    intervals: List[Tuple[float, float, int]] = []
    finish: dict = {}
    for task in graph.topological_order():
        start = max(
            (finish[dep] for dep in graph.dependencies(task)), default=0.0
        )
        finish[task.name] = start + task.compute_seconds
        end = start + max(task.compute_seconds, MIN_PHASE_SECONDS)
        if task.memory_bytes > 0:
            intervals.append((start, end, task.memory_bytes))
    if not intervals:
        return AppProfile(name, (Phase(MIN_PHASE_SECONDS, 0),))
    deltas: dict = {}
    for start, end, mem in intervals:
        deltas[start] = deltas.get(start, 0) + mem
        deltas[end] = deltas.get(end, 0) - mem
    phases: List[Phase] = []
    level = 0
    points = sorted(deltas)
    if points[0] > 0:
        # Zero-memory work (e.g. memoryless tasks) leads the schedule:
        # the profile must still place later spikes at their true
        # critical-path instants, not shifted to t=0.
        phases.append(Phase(points[0], 0))
    for left, right in zip(points, points[1:]):
        level += deltas[left]
        if phases and phases[-1].bytes == level:
            phases[-1] = Phase(phases[-1].seconds + (right - left), level)
        else:
            phases.append(Phase(right - left, level))
    while phases and phases[-1].bytes == 0:
        phases.pop()
    if not phases:
        return AppProfile(name, (Phase(MIN_PHASE_SECONDS, 0),))
    return AppProfile(name, tuple(phases))


# ----------------------------------------------------------------------
# Online single-bin admission (one shared cluster, staggered arrivals)


def fits_online(
    active: Sequence[Tuple[AppProfile, float]],
    candidate: AppProfile,
    start: float,
    capacity_bytes: int,
) -> bool:
    """Would admitting ``candidate`` at ``start`` ever exceed capacity?

    ``active`` holds the already-admitted jobs as ``(profile,
    started_at)`` pairs.  The check is the same pointwise one
    :func:`footprint_aware_packing` runs per bin, shifted online: every
    instant where any projected footprint can change, from ``start``
    onward, must keep the sum within ``capacity_bytes``.  Instants before
    ``start`` were proven safe when the active jobs were admitted, and
    admitting the candidate cannot change them.
    """
    points = {start + t for t in candidate.breakpoints()}
    for profile, started_at in active:
        points.update(started_at + t for t in profile.breakpoints())
    for t in points:
        if t < start:
            continue
        total = candidate.memory_at(t - start) + sum(
            profile.memory_at(t - started_at)
            for profile, started_at in active
        )
        if total > capacity_bytes:
            return False
    return True


def validate_timeline(
    jobs: Sequence[Tuple[AppProfile, float]], capacity_bytes: int
) -> None:
    """Prove an admission history never exceeded capacity at any instant.

    Each ``(profile, started_at)`` becomes a :meth:`AppProfile.delayed`
    co-start profile, and the whole history is one shared bin - so this
    is literally :func:`validate_packing` over the online timeline, and
    raises :class:`SchedulingError` on any violation.
    """
    if not jobs:
        return
    origin = min(started_at for _, started_at in jobs)
    shifted = [
        profile.delayed(started_at - origin) for profile, started_at in jobs
    ]
    validate_packing(Packing(capacity_bytes=capacity_bytes, bins=[shifted]))
