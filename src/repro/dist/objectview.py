"""The passive, possibly-stale per-node map of who holds what.

Fix ships dependency information inside handles, so nodes learn object
locations as a side effect of normal traffic instead of querying a
coordinator (paper 4.2.2).  :class:`ObjectView` models exactly that: a
node's *belief* about replica placement.  It advances when the node
observes traffic (:meth:`learn`), when it snapshots the registry it can
see (:meth:`sync_from_cluster`), or when two nodes run the pairwise
inventory :meth:`exchange` handshake that the functional runtime
implements for real in :mod:`repro.fixpoint.net` (which stores content
keys and per-handle wire sizes in the same class - object names are any
hashable).

Crucially the view is *never invalidated*: a replica created after the
last observation is simply unknown, and :meth:`bytes_missing` prices a
placement using beliefs, not ground truth.  Staleness costs only
performance (a redundant transfer), never correctness - the same
property the paper's design leans on.

Every observation also maintains an inverted *holdings index*
(machine -> believed names, plus believed sizes), so "what does machine
M hold" is one lookup and :meth:`bytes_missing_many` prices every
machine in a single pass over the inputs via
:func:`repro.dist.costmodel.price_moves` - the fig. 10 link task
(1,987 inputs) no longer pays O(machines x inputs) per placement.

The view is internally locked: the executing runtime's asynchronous
delegation (:mod:`repro.fixpoint.net`) absorbs replies on serving
threads, so :meth:`learn`/:meth:`forget` race with :meth:`price_moves`
on the dispatching thread.  Every public method holds the view's RLock,
which in particular keeps the whole one-pass pricing atomic with
respect to concurrent observations.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, Optional, Set, Tuple

from . import costmodel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cluster import Cluster

_NOTHING: frozenset = frozenset()


class ObjectView:
    """One node's belief about which machines hold which objects."""

    def __init__(self, node: str):
        self.node = node
        #: Reentrant so :meth:`price_moves` can hold the lock across the
        #: whole pricing pass while its locations callable re-enters.
        self._lock = threading.RLock()
        self._locations: Dict[Hashable, Set[str]] = {}
        #: Inverted index, maintained by every observation: machine ->
        #: names believed held there.
        self._holdings: Dict[str, Set[Hashable]] = {}
        #: Believed sizes, recorded whenever an observation carried one
        #: (cluster snapshots always do; wire traffic carries handle sizes).
        self._sizes: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Observation

    def learn(
        self, name: Hashable, location: str, size: Optional[int] = None
    ) -> None:
        """Record that ``location`` holds a replica of ``name``.

        The single write path: the forward map, the holdings index, and
        the size index advance together, so they can never disagree.
        """
        with self._lock:
            self._locations.setdefault(name, set()).add(location)
            self._holdings.setdefault(location, set()).add(name)
            if size is not None:
                self._sizes[name] = size

    def forget(self, name: Hashable, location: str) -> None:
        """Retract the belief that ``location`` holds ``name``.

        The rollback path for optimistic observations: a delegating node
        advances its view when it *ships* data, and must retract exactly
        that advance when the delegation dies before the peer confirms
        receipt.  Sizes are kept - size knowledge is per-object, not
        per-replica, and stays true even when the location belief was
        wrong.  Forgetting a belief that was never held is a no-op.
        """
        with self._lock:
            locations = self._locations.get(name)
            if locations is not None:
                locations.discard(location)
                if not locations:
                    del self._locations[name]
            held = self._holdings.get(location)
            if held is not None:
                held.discard(name)

    def where(self, name: Hashable) -> Set[str]:
        """Believed replica locations (empty set when unknown)."""
        with self._lock:
            return set(self._locations.get(name, ()))

    def knows(self, name: Hashable, location: str) -> bool:
        with self._lock:
            return name in self._holdings.get(location, _NOTHING)

    def holdings(self, location: str) -> Set[Hashable]:
        """Everything ``location`` is believed to hold (a copy)."""
        with self._lock:
            return set(self._holdings.get(location, ()))

    def believed_size(self, name: Hashable, default: int = 0) -> int:
        """The last observed size of ``name`` (``default`` when unseen)."""
        with self._lock:
            return self._sizes.get(name, default)

    def bytes_held(self, location: str) -> int:
        """Believed bytes resident at ``location`` (the size index)."""
        with self._lock:
            return sum(
                self._sizes.get(name, 0)
                for name in self._holdings.get(location, _NOTHING)
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._locations)

    # ------------------------------------------------------------------
    # Synchronisation

    def sync_from_cluster(self, cluster: "Cluster") -> None:
        """Snapshot the whole registry (a full-state refresh).

        Replicas added to the cluster *after* this call stay unknown -
        that lag is the staleness the scheduler tolerates by design.
        """
        for name, info in cluster.objects.items():
            for location in info.locations:
                self.learn(name, location, info.size)

    def refresh_local(self, cluster: "Cluster") -> None:
        """Learn this node's own holdings (a node always knows its disk)."""
        for name, info in cluster.objects.items():
            if self.node in info.locations:
                self.learn(name, self.node, info.size)

    def exchange(self, other: "ObjectView", cluster: "Cluster") -> None:
        """The pairwise inventory handshake of paper 4.2.2.

        Each side refreshes its own local holdings, then both merge the
        other's beliefs - after which each view contains the union.
        """
        self.refresh_local(cluster)
        other.refresh_local(cluster)
        # Snapshot each side under its own lock, never holding both at
        # once - concurrent exchanges in either order cannot deadlock.
        with self._lock:
            mine = {name: set(locs) for name, locs in self._locations.items()}
            my_sizes = dict(self._sizes)
        with other._lock:
            theirs = {
                name: set(locs) for name, locs in other._locations.items()
            }
            their_sizes = dict(other._sizes)
        for name, locs in theirs.items():
            size = their_sizes.get(name)
            for location in locs:
                self.learn(name, location, size)
        for name, locs in mine.items():
            size = my_sizes.get(name)
            for location in locs:
                other.learn(name, location, size)

    # ------------------------------------------------------------------
    # Placement pricing

    def bytes_missing(
        self, cluster: "Cluster", names: Iterable[Hashable], machine: str
    ) -> int:
        """Bytes this view *believes* must move to run on ``machine``.

        Sizes are ground truth (declared in the registry); locations are
        beliefs, so a stale view may price a machine that actually holds
        a fresh replica as if the data still had to travel.
        """
        with self._lock:
            held = self._holdings.get(machine, _NOTHING)
            return sum(
                cluster.object(name).size
                for name in names
                if name not in held
            )

    def bytes_missing_many(
        self,
        cluster: "Cluster",
        names: Iterable[Hashable],
        machines: Iterable[str],
    ) -> Dict[str, int]:
        """:meth:`bytes_missing` for every machine in one pass over
        ``names`` (registry sizes, believed locations)."""
        return self.price_moves(
            ((name, cluster.object(name).size) for name in names), machines
        )

    def price_moves(
        self,
        needs: Iterable[Tuple[Hashable, int]],
        candidates: Iterable[str],
    ) -> Dict[str, int]:
        """Cluster-free pricing over ``(name, size)`` pairs - the path
        the executing runtime uses, where sizes come from handles.

        The lock is held across the whole pass, so concurrent
        :meth:`learn`/:meth:`forget` calls (reply absorption on serving
        threads) see an atomic pricing: no belief changes mid-quote.
        """
        with self._lock:
            return costmodel.price_moves(
                needs,
                lambda name: self._locations.get(name, _NOTHING),
                candidates,
            )
