"""The passive, possibly-stale per-node map of who holds what.

Fix ships dependency information inside handles, so nodes learn object
locations as a side effect of normal traffic instead of querying a
coordinator (paper 4.2.2).  :class:`ObjectView` models exactly that: a
node's *belief* about replica placement.  It advances when the node
observes traffic (:meth:`learn`), when it snapshots the registry it can
see (:meth:`sync_from_cluster`), or when two nodes run the pairwise
inventory :meth:`exchange` handshake that the functional runtime
implements for real in :mod:`repro.fixpoint.net` (which stores content
keys and per-handle wire sizes in the same class - object names are any
hashable).

**Anti-entropy is delta-based.**  Every belief this view originates is
stamped with a per-origin version counter, and the whole state is
summarised by a compact :meth:`digest` (origin -> highest version
covered, O(origins) not O(entries)).  A handshake then ships only what
the peer's digest does not cover: :meth:`delta_since` produces the
missing entries, :meth:`merge_delta` applies them (idempotently - a
version already covered is skipped), and :meth:`exchange` is now a thin
digest+delta wrapper, so two already-converged views ship two digests
and *zero* entries instead of re-sending full state every handshake.
Entries keep their origin stamp when forwarded, which is what lets
epidemic gossip (:mod:`repro.dist.gossip`, the GOSSIP frames in
:mod:`repro.fixpoint.net`) spread beliefs transitively: a view can
re-serve what it merged from one peer to another, and the whole group
converges in O(log n) rounds without O(n^2) handshakes.

Retraction (:meth:`forget`) is deliberately local-only: it removes the
belief *and its logged stamps* so a rolled-back optimistic advance is
never gossiped onward, but it ships no tombstones - a peer that already
merged the entry keeps believing it, which at worst prices a redundant
transfer.  Node *death* is different: a dead machine's holdings are not
stale, they are gone, and keeping them poisons every future placement.
:meth:`evict` is the membership-driven retraction
(:mod:`repro.dist.membership` tombstones feed it): it purges every
belief about the dead location - maps, logs, and stamps - and gates
:meth:`learn`/:meth:`merge_delta` so late-arriving gossip cannot
resurrect them, while *keeping* the version caps so peers never re-send
what this view deliberately dropped.  The tombstone thus shadows the
holdings it evicts regardless of delivery order (property-tested).

Death is no longer forever, though: origins are *epoch-qualified* to
mirror the SWIM incarnation numbers in :mod:`repro.dist.membership`.
A view constructed at ``epoch`` > 1 stamps its own beliefs under the
origin id ``"node#epoch"``, so a restarted node's fresh assertions are
a brand-new origin that no survivor's retained version caps cover -
they merge, while replayed pre-death deltas (old origin, capped
versions) still apply 0 entries.  :meth:`readmit` is the membership
``on_rejoin`` hook: it lifts the :meth:`learn`/:meth:`merge_delta`
gate for a location whose node came back, keeping the old caps (the
anti-resurrection guarantee is per-incarnation).  :meth:`advance_epoch`
is the false-positive recovery hook (``on_refute``): a live node that
beat its own tombstone re-stamps its holdings under the new epoch's
origin so survivors - whose caps cover everything it ever said before
its "death" - relearn them through ordinary anti-entropy.

Long-lived views also :meth:`compact`: within one origin's log, only
the *latest* entry per ``(name, location)`` carries current belief, so
superseded entries can be dropped without changing what any delta
conveys (the caps cover the dropped versions, and ascending order is
preserved - a subsequence of an ascending list is ascending).
Compaction triggers automatically once the log outgrows the live belief
set, which is what keeps view memory bounded under churn.

Crucially the view is *never invalidated*: a replica created after the
last observation is simply unknown, and :meth:`bytes_missing` prices a
placement using beliefs, not ground truth.  Staleness costs only
performance (a redundant transfer), never correctness - the same
property the paper's design leans on.

Every observation also maintains an inverted *holdings index*
(machine -> believed names, plus believed sizes), so "what does machine
M hold" is one lookup and :meth:`bytes_missing_many` prices every
machine in a single pass over the inputs via
:func:`repro.dist.costmodel.price_moves` - the fig. 10 link task
(1,987 inputs) no longer pays O(machines x inputs) per placement.

The view is internally locked: the executing runtime's asynchronous
delegation (:mod:`repro.fixpoint.net`) absorbs replies on serving
threads, so :meth:`learn`/:meth:`forget` race with :meth:`price_moves`
on the dispatching thread.  Every public method holds the view's RLock,
which in particular keeps the whole one-pass pricing atomic with
respect to concurrent observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from ..analysis.sync import TrackedRLock
from . import costmodel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cluster import Cluster

_NOTHING: frozenset = frozenset()

#: Wire-size accounting constants (mirrored by the real serialization in
#: :mod:`repro.dist.gossip`): a u32 count, u16 length prefixes, u64
#: versions/sizes, and one tag byte per variable-width field.
_COUNT_BYTES = 4
_LEN_BYTES = 2
_U64_BYTES = 8


def _name_wire_weight(name: Hashable) -> int:
    """Bytes a name occupies on the wire (str/bytes exactly, else flat)."""
    if isinstance(name, bytes):
        return len(name)
    if isinstance(name, str):
        return len(name.encode("utf-8"))
    return _U64_BYTES


#: One versioned belief: ``(origin, version, name, location, size)``.
#: ``origin`` is the node that *first* recorded the belief; the stamp
#: travels with the entry through any number of merge hops.
Entry = Tuple[str, int, Hashable, str, Optional[int]]


@dataclass(frozen=True)
class Digest:
    """A compact summary of everything a view has *covered*.

    ``versions[origin]`` is the highest version stamp this view has seen
    from ``origin`` - O(origins), independent of how many entries those
    versions carried.  Coverage is monotone: versions below the cap are
    never re-requested, even if the entry itself was later forgotten
    (retraction is local; see :meth:`ObjectView.forget`).
    """

    versions: Dict[str, int] = field(default_factory=dict)

    def covers(self, origin: str, version: int) -> bool:
        return version <= self.versions.get(origin, 0)

    def wire_bytes(self) -> int:
        """Believed wire footprint (the real codec in repro.dist.gossip)."""
        return _COUNT_BYTES + sum(
            _LEN_BYTES + len(origin.encode("utf-8")) + _U64_BYTES
            for origin in self.versions
        )


#: The digest of a view that has seen nothing: a delta against it is the
#: sender's full state (the full-state ablation, and the bootstrap).
EMPTY_DIGEST = Digest()


@dataclass(frozen=True)
class Delta:
    """Entries one view holds beyond another's digest, plus version caps.

    ``versions`` carries the sender's cap per shipped origin so the
    receiver's coverage advances even across gaps (entries the sender
    forgot before forwarding); entries are ascending per origin.
    """

    entries: Tuple[Entry, ...]
    versions: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def is_empty(self) -> bool:
        return not self.entries and not self.versions

    def wire_bytes(self) -> int:
        total = Digest(self.versions).wire_bytes() + _COUNT_BYTES
        for origin, _version, name, location, size in self.entries:
            total += (
                _LEN_BYTES + len(origin.encode("utf-8")) + _U64_BYTES
                + 1 + _LEN_BYTES + _name_wire_weight(name)
                + _LEN_BYTES + len(location.encode("utf-8"))
                + 1 + (_U64_BYTES if size is not None else 0)
            )
        return total


@dataclass(frozen=True)
class ExchangeStats:
    """What one pairwise anti-entropy handshake actually shipped."""

    digest_bytes: int
    delta_bytes: int
    entries_shipped: int

    @property
    def bytes_shipped(self) -> int:
        return self.digest_bytes + self.delta_bytes


class ObjectView:
    """One node's belief about which machines hold which objects."""

    def __init__(self, node: str, clock=None, epoch: int = 1):
        self.node = node
        #: The incarnation this view stamps its own beliefs under.
        #: Epoch 1 keeps the bare node name as origin id (wire- and
        #: digest-compatible with every existing peer); a restarted
        #: node passes its bumped membership incarnation and stamps as
        #: ``"node#epoch"`` - a fresh origin no old version cap covers.
        self.epoch = epoch
        self._origin = node if epoch <= 1 else f"{node}#{epoch}"
        self._own_origins: Set[str] = {self._origin}
        #: Optional observability clock (wall or sim time).  When set,
        #: every belief advance stamps :attr:`last_advance`, which is
        #: what :meth:`staleness` ages against - the "how stale is this
        #: view" gauge the obs registry samples at export.
        self._clock = clock
        self.last_advance: Optional[float] = None
        #: Reentrant so :meth:`price_moves` can hold the lock across the
        #: whole pricing pass while its locations callable re-enters.
        self._lock = TrackedRLock("ObjectView._lock")
        self._locations: Dict[Hashable, Set[str]] = {}
        #: Inverted index, maintained by every observation: machine ->
        #: names believed held there.
        self._holdings: Dict[str, Set[Hashable]] = {}
        #: Believed sizes, recorded whenever an observation carried one
        #: (cluster snapshots always do; wire traffic carries handle sizes).
        self._sizes: Dict[Hashable, int] = {}
        #: Anti-entropy state.  ``_vector`` is this view's digest: the
        #: highest version covered per origin.  ``_log`` keeps the
        #: entries themselves, ascending per origin, so a delta for any
        #: peer digest is a binary search plus a tail slice.  ``_stamps``
        #: maps a believed (name, location) pair back to its log stamps,
        #: which is what lets :meth:`forget` retract the entry from
        #: future deltas, not just from the maps.
        self._vector: Dict[str, int] = {}
        self._log: Dict[str, List[Tuple[int, Hashable, str, Optional[int]]]] = {}
        self._stamps: Dict[Tuple[Hashable, str], List[Tuple[str, int]]] = {}
        #: Tombstoned locations (membership-confirmed dead): beliefs
        #: about them are purged and can never be re-learned.
        self._evicted: Set[str] = set()
        #: Log bookkeeping for bounded growth: entry count maintained
        #: across record/forget/evict/compact, and how many compactions
        #: have run (a stats gauge the churn bench asserts on).
        self._log_total = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Observation

    def learn(
        self, name: Hashable, location: str, size: Optional[int] = None
    ) -> None:
        """Record that ``location`` holds a replica of ``name``.

        The single write path: the forward map, the holdings index, and
        the size index advance together, so they can never disagree.
        Genuinely *new* information (a new replica belief, or a size the
        view had wrong) is also stamped with this view's next version so
        anti-entropy can forward exactly it; re-learning what is already
        believed stamps nothing - repeat observations stay free on the
        gossip wire.
        """
        with self._lock:
            if location in self._evicted:
                return  # tombstoned: the location is gone, not stale
            locations = self._locations.setdefault(name, set())
            already_known = location in locations
            size_is_news = size is not None and self._sizes.get(name) != size
            locations.add(location)
            self._holdings.setdefault(location, set()).add(name)
            if size is not None:
                self._sizes[name] = size
            if already_known and not size_is_news:
                return
            if self._clock is not None:
                self.last_advance = self._clock()
            self._record(self._origin, self._vector.get(self._origin, 0) + 1,
                         name, location, size)

    def _record(
        self,
        origin: str,
        version: int,
        name: Hashable,
        location: str,
        size: Optional[int],
    ) -> None:
        """Append one stamped entry to the log (lock held by caller).

        Versions only ever grow past the current cap (learn increments
        it, merge skips covered versions), so per-origin logs stay
        ascending by construction.
        """
        self._vector[origin] = max(self._vector.get(origin, 0), version)
        self._log.setdefault(origin, []).append((version, name, location, size))
        self._stamps.setdefault((name, location), []).append((origin, version))
        self._log_total += 1
        # Bounded growth: once the log clearly outweighs the live belief
        # set (superseded re-learns, churned replicas), fold it down.
        if self._log_total >= 64 and self._log_total > 4 * max(
            1, len(self._stamps)
        ):
            self._compact_locked()

    def forget(self, name: Hashable, location: str) -> None:
        """Retract the belief that ``location`` holds ``name``.

        The rollback path for optimistic observations: a delegating node
        advances its view when it *ships* data, and must retract exactly
        that advance when the delegation dies before the peer confirms
        receipt.  Sizes are kept - size knowledge is per-object, not
        per-replica, and stays true even when the location belief was
        wrong.  Forgetting a belief that was never held is a no-op.

        The retraction is scoped to what *this view* asserted: stamps
        this view originated are stripped from the anti-entropy log, so
        a rolled-back optimistic advance is never gossiped onward (no
        tombstone crosses the wire - a peer that already merged it
        keeps it, at worst pricing a redundant move).  A belief that
        also carries *foreign* stamps is corroborated independently of
        the retracted advance - by the holder itself, or a third party
        - and is kept, stamps and all.  Stripping a foreign stamp would
        be worse than keeping the belief: this view's digest already
        covers that version, so no peer would ever re-send it, and a
        possibly-true fact would become permanently unlearnable through
        gossip.
        """
        with self._lock:
            stamps = self._stamps.get((name, location), [])
            own: Dict[str, Set[int]] = {}
            for origin, version in stamps:
                if origin in self._own_origins:
                    own.setdefault(origin, set()).add(version)
            for origin, versions in own.items():
                log = self._log.get(origin)
                if log:
                    kept = [
                        entry for entry in log if entry[0] not in versions
                    ]
                    self._log_total -= len(log) - len(kept)
                    self._log[origin] = kept
            foreign = [
                stamp
                for stamp in stamps
                if stamp[0] not in self._own_origins
            ]
            if foreign:
                # Independently corroborated: the belief outlives the
                # rollback of this view's own assertion.
                self._stamps[(name, location)] = foreign
                return
            self._stamps.pop((name, location), None)
            locations = self._locations.get(name)
            if locations is not None:
                locations.discard(location)
                if not locations:
                    del self._locations[name]
            held = self._holdings.get(location)
            if held is not None:
                held.discard(name)

    def evict(self, location: str) -> int:
        """Tombstone ``location``: purge every belief about it, until
        (if ever) membership readmits it at a higher incarnation.

        The membership-driven retraction (a confirmed-dead node from
        :mod:`repro.dist.membership`): unlike :meth:`forget`, which
        rolls back one optimistic assertion, eviction removes the
        location from the forward map, the holdings index, the
        anti-entropy *logs of every origin* (so it is never gossiped
        onward from here), and gates :meth:`learn`/:meth:`merge_delta`
        so late-arriving entries about it are dropped on the floor -
        the tombstone shadows the holdings regardless of delivery
        order.  Version caps are deliberately kept: this view still
        *covers* the purged versions, so no peer ever re-sends them.

        Sizes are kept (per-object knowledge, true regardless of which
        replica died).  Returns how many name-beliefs were purged;
        idempotent - a second eviction returns 0.
        """
        with self._lock:
            if location in self._evicted:
                return 0
            self._evicted.add(location)
            names = self._holdings.pop(location, set())
            for name in names:
                locations = self._locations.get(name)
                if locations is not None:
                    locations.discard(location)
                    if not locations:
                        del self._locations[name]
            for origin, log in self._log.items():
                kept = [entry for entry in log if entry[2] != location]
                if len(kept) != len(log):
                    self._log_total -= len(log) - len(kept)
                    self._log[origin] = kept
            for key in [k for k in self._stamps if k[1] == location]:
                del self._stamps[key]
            return len(names)

    def readmit(self, location: str) -> bool:
        """Lift the eviction gate for ``location``: its node came back.

        The :meth:`MembershipView.on_rejoin` hook - a tombstoned node
        reasserted life at a higher incarnation, so beliefs about it
        may be learned and merged again.  Version caps are deliberately
        *kept*: the anti-resurrection guarantee is per-incarnation, so
        a replayed pre-death delta (old origin, covered versions) still
        applies 0 entries, while the returning node's fresh beliefs
        arrive under its new ``"node#epoch"`` origin, which no retained
        cap covers.  Returns whether the location was actually gated;
        a later death can evict it again (per-death idempotence).
        """
        with self._lock:
            if location not in self._evicted:
                return False
            self._evicted.discard(location)
            return True

    def advance_epoch(self, epoch: int) -> int:
        """Move this view's own origin to ``epoch`` and re-stamp its
        node's holdings under it.

        The false-positive recovery hook (:meth:`MembershipView.on_refute`):
        a live node that beat its own tombstone has a problem replaying
        history cannot solve - every survivor's version caps already
        cover everything it asserted before the "death", so re-offering
        the old entries applies 0.  Re-stamping its own holdings under
        the fresh ``"node#epoch"`` origin makes them new information
        again, and ordinary anti-entropy relearns them everywhere.
        Beliefs about *other* locations are not restamped: survivors
        never evicted those.  Returns how many beliefs were restamped;
        stale epochs (<= current) are ignored.
        """
        with self._lock:
            if epoch <= self.epoch:
                return 0
            self.epoch = epoch
            self._origin = f"{self.node}#{epoch}"
            self._own_origins.add(self._origin)
            restamped = 0
            held = sorted(self._holdings.get(self.node, ()), key=repr)
            for name in held:
                self._record(
                    self._origin,
                    self._vector.get(self._origin, 0) + 1,
                    name,
                    self.node,
                    self._sizes.get(name),
                )
                restamped += 1
            return restamped

    def is_evicted(self, location: str) -> bool:
        with self._lock:
            return location in self._evicted

    def evicted(self) -> Set[str]:
        """Tombstoned locations (a copy) - the placement exclusion set."""
        with self._lock:
            return set(self._evicted)

    def where(self, name: Hashable) -> Set[str]:
        """Believed replica locations (empty set when unknown)."""
        with self._lock:
            return set(self._locations.get(name, ()))

    def knows(self, name: Hashable, location: str) -> bool:
        with self._lock:
            return name in self._holdings.get(location, _NOTHING)

    def holdings(self, location: str) -> Set[Hashable]:
        """Everything ``location`` is believed to hold (a copy)."""
        with self._lock:
            return set(self._holdings.get(location, ()))

    def known_locations(self) -> List[str]:
        """Locations believed to hold *anything* - gossip-learned
        membership: names can arrive from peers this view's node never
        talked to directly."""
        with self._lock:
            return [loc for loc, names in self._holdings.items() if names]

    def snapshot(self) -> Dict[Hashable, frozenset]:
        """The belief state as a comparable value (name -> locations).

        Two views are *converged* exactly when their snapshots are
        equal - the convergence check the gossip coordinator and the
        property tests use.
        """
        with self._lock:
            return {
                name: frozenset(locs)
                for name, locs in self._locations.items()
                if locs
            }

    def believed_size(self, name: Hashable, default: int = 0) -> int:
        """The last observed size of ``name`` (``default`` when unseen)."""
        with self._lock:
            return self._sizes.get(name, default)

    def bytes_held(self, location: str) -> int:
        """Believed bytes resident at ``location`` (the size index)."""
        with self._lock:
            return sum(
                self._sizes.get(name, 0)
                for name in self._holdings.get(location, _NOTHING)
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._locations)

    # ------------------------------------------------------------------
    # Observability

    def staleness(self) -> float:
        """Seconds (by this view's clock) since the belief state last
        advanced - the age a scheduler's placement decision is priced
        on.  ``0.0`` until the view has both a clock and a first
        advance: an empty view is not stale, it is empty."""
        with self._lock:
            if self._clock is None or self.last_advance is None:
                return 0.0
            return max(0.0, self._clock() - self.last_advance)

    def stats(self) -> Dict[str, int]:
        """Size-of-belief gauges the obs registry samples at export."""
        with self._lock:
            return {
                "entries": len(self._locations),
                "replicas": sum(
                    len(locs) for locs in self._locations.values()
                ),
                "log_entries": sum(len(log) for log in self._log.values()),
                "origins": len(self._vector),
                "evicted": len(self._evicted),
                "compactions": self._compactions,
                "epoch": self.epoch,
            }

    # ------------------------------------------------------------------
    # Synchronisation

    def sync_from_cluster(self, cluster: "Cluster") -> None:
        """Snapshot the whole registry (a full-state refresh).

        Replicas added to the cluster *after* this call stay unknown -
        that lag is the staleness the scheduler tolerates by design.
        """
        for name, info in cluster.objects.items():
            for location in info.locations:
                self.learn(name, location, info.size)

    def refresh_local(self, cluster: "Cluster") -> None:
        """Learn this node's own holdings (a node always knows its disk)."""
        for name, info in cluster.objects.items():
            if self.node in info.locations:
                self.learn(name, self.node, info.size)

    # ------------------------------------------------------------------
    # Anti-entropy: digest, delta, merge

    def compact(self) -> int:
        """Fold each origin's log down to its current-belief entries.

        Within one origin's ascending log, only the *latest* entry per
        ``(name, location)`` carries that origin's current assertion -
        earlier entries are superseded, and every delta that would have
        shipped them also ships the cap that covers them, so dropping
        them changes no receiver's final state (property-tested:
        compaction is transparent to the merge algebra).  Keeping a
        subsequence preserves ascending order, so :meth:`delta_since`'s
        binary search stays valid.  Returns entries dropped.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        dropped = 0
        for origin, log in self._log.items():
            if len(log) <= 1:
                continue
            latest: Dict[Tuple[Hashable, str], int] = {}
            for index, (_version, name, location, _size) in enumerate(log):
                latest[(name, location)] = index
            if len(latest) == len(log):
                continue
            keep = set(latest.values())
            self._log[origin] = [
                entry for index, entry in enumerate(log) if index in keep
            ]
            dropped += len(log) - len(keep)
        if dropped:
            self._log_total -= dropped
            self._compactions += 1
            # Stamps mirror the log; rebuild them from what survived.
            stamps: Dict[Tuple[Hashable, str], List[Tuple[str, int]]] = {}
            for origin, log in self._log.items():
                for version, name, location, _size in log:
                    stamps.setdefault((name, location), []).append(
                        (origin, version)
                    )
            self._stamps = stamps
        return dropped

    def digest(self) -> Digest:
        """This view's coverage summary: origin -> highest version seen.

        O(origins) bytes, independent of entry count - the thing a
        gossip round ships *instead of* full state.
        """
        with self._lock:
            return Digest(dict(self._vector))

    def delta_since(self, digest: Digest) -> Delta:
        """Everything this view holds beyond ``digest``'s coverage.

        Per-origin logs are ascending, so the uncovered tail is a binary
        search plus a slice; a peer that has seen everything gets an
        empty delta (the short-circuit that makes converged handshakes
        ~free).  Entries forwarded keep their original origin stamp, so
        a third party can tell what it already covers.
        """
        with self._lock:
            entries: List[Entry] = []
            caps: Dict[str, int] = {}
            for origin in sorted(self._vector):
                top = self._vector[origin]
                floor = digest.versions.get(origin, 0)
                if top <= floor:
                    continue
                caps[origin] = top
                log = self._log.get(origin, [])
                lo, hi = 0, len(log)
                while lo < hi:  # first entry with version > floor
                    mid = (lo + hi) // 2
                    if log[mid][0] <= floor:
                        lo = mid + 1
                    else:
                        hi = mid
                for version, name, location, size in log[lo:]:
                    entries.append((origin, version, name, location, size))
            return Delta(tuple(entries), caps)

    def merge_delta(self, delta: Delta) -> int:
        """Apply a peer's delta; returns how many entries were news.

        Idempotent by version: an entry whose stamp is already covered
        is skipped, so replayed/overlapping deltas (concurrent gossip
        rounds) cannot double-apply.  Accepted entries are re-logged
        under their *original* origin, which is what lets this view
        serve them onward - the transitive spread gossip relies on.
        Finally the version caps advance coverage even across entries
        the sender had forgotten (gaps ship no tombstone).
        """
        with self._lock:
            applied = 0
            for origin, version, name, location, size in delta.entries:
                if version <= self._vector.get(origin, 0):
                    continue  # already covered: idempotence
                if location in self._evicted:
                    # Tombstone shadows the entry: drop the belief but
                    # let the caps below advance coverage past it, so
                    # the sender never re-offers it either.
                    continue
                locations = self._locations.setdefault(name, set())
                locations.add(location)
                self._holdings.setdefault(location, set()).add(name)
                if size is not None:
                    self._sizes[name] = size
                self._record(origin, version, name, location, size)
                applied += 1
            for origin, top in delta.versions.items():
                if top > self._vector.get(origin, 0):
                    self._vector[origin] = top
            if applied and self._clock is not None:
                self.last_advance = self._clock()
            return applied

    def exchange(
        self, other: "ObjectView", cluster: Optional["Cluster"] = None
    ) -> ExchangeStats:
        """The pairwise inventory handshake of paper 4.2.2, delta-based.

        Each side refreshes its own local holdings (when a cluster is
        given), swaps digests, and ships only the entries the other's
        digest does not cover - after which each view contains the
        union, exactly as the old full-state merge did, but a handshake
        between converged views moves two digests and zero entries.

        Each step takes one view's lock at a time, never both at once -
        concurrent exchanges in either order cannot deadlock.
        """
        if cluster is not None:
            self.refresh_local(cluster)
            other.refresh_local(cluster)
        my_digest = self.digest()
        their_digest = other.digest()
        delta_out = self.delta_since(their_digest)
        delta_in = other.delta_since(my_digest)
        other.merge_delta(delta_out)
        self.merge_delta(delta_in)
        return ExchangeStats(
            digest_bytes=my_digest.wire_bytes() + their_digest.wire_bytes(),
            delta_bytes=delta_out.wire_bytes() + delta_in.wire_bytes(),
            entries_shipped=len(delta_out) + len(delta_in),
        )

    # ------------------------------------------------------------------
    # Placement pricing

    def bytes_missing(
        self, cluster: "Cluster", names: Iterable[Hashable], machine: str
    ) -> int:
        """Bytes this view *believes* must move to run on ``machine``.

        Sizes are ground truth (declared in the registry); locations are
        beliefs, so a stale view may price a machine that actually holds
        a fresh replica as if the data still had to travel.
        """
        with self._lock:
            held = self._holdings.get(machine, _NOTHING)
            return sum(
                cluster.object(name).size
                for name in names
                if name not in held
            )

    def bytes_missing_many(
        self,
        cluster: "Cluster",
        names: Iterable[Hashable],
        machines: Iterable[str],
    ) -> Dict[str, int]:
        """:meth:`bytes_missing` for every machine in one pass over
        ``names`` (registry sizes, believed locations)."""
        return self.price_moves(
            ((name, cluster.object(name).size) for name in names), machines
        )

    def price_moves(
        self,
        needs: Iterable[Tuple[Hashable, int]],
        candidates: Iterable[str],
    ) -> Dict[str, int]:
        """Cluster-free pricing over ``(name, size)`` pairs - the path
        the executing runtime uses, where sizes come from handles.

        The lock is held across the whole pass, so concurrent
        :meth:`learn`/:meth:`forget` calls (reply absorption on serving
        threads) see an atomic pricing: no belief changes mid-quote.
        """
        with self._lock:
            return costmodel.price_moves(
                needs,
                lambda name: self._locations.get(name, _NOTHING),
                candidates,
            )
