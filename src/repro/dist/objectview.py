"""The passive, possibly-stale per-node map of who holds what.

Fix ships dependency information inside handles, so nodes learn object
locations as a side effect of normal traffic instead of querying a
coordinator (paper 4.2.2).  :class:`ObjectView` models exactly that: a
node's *belief* about replica placement.  It advances when the node
observes traffic (:meth:`learn`), when it snapshots the registry it can
see (:meth:`sync_from_cluster`), or when two nodes run the pairwise
inventory :meth:`exchange` handshake that the functional runtime
implements for real in :mod:`repro.fixpoint.net`.

Crucially the view is *never invalidated*: a replica created after the
last observation is simply unknown, and :meth:`bytes_missing` prices a
placement using beliefs, not ground truth.  Staleness costs only
performance (a redundant transfer), never correctness - the same
property the paper's design leans on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cluster import Cluster


class ObjectView:
    """One node's belief about which machines hold which objects."""

    def __init__(self, node: str):
        self.node = node
        self._locations: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Observation

    def learn(self, name: str, location: str) -> None:
        """Record that ``location`` holds a replica of ``name``."""
        self._locations.setdefault(name, set()).add(location)

    def where(self, name: str) -> Set[str]:
        """Believed replica locations (empty set when unknown)."""
        return set(self._locations.get(name, ()))

    def knows(self, name: str, location: str) -> bool:
        return location in self._locations.get(name, ())

    def __len__(self) -> int:
        return len(self._locations)

    # ------------------------------------------------------------------
    # Synchronisation

    def sync_from_cluster(self, cluster: "Cluster") -> None:
        """Snapshot the whole registry (a full-state refresh).

        Replicas added to the cluster *after* this call stay unknown -
        that lag is the staleness the scheduler tolerates by design.
        """
        for name, info in cluster.objects.items():
            self._locations.setdefault(name, set()).update(info.locations)

    def refresh_local(self, cluster: "Cluster") -> None:
        """Learn this node's own holdings (a node always knows its disk)."""
        for name, info in cluster.objects.items():
            if self.node in info.locations:
                self.learn(name, self.node)

    def exchange(self, other: "ObjectView", cluster: "Cluster") -> None:
        """The pairwise inventory handshake of paper 4.2.2.

        Each side refreshes its own local holdings, then both merge the
        other's beliefs - after which each view contains the union.
        """
        self.refresh_local(cluster)
        other.refresh_local(cluster)
        mine = {name: set(locs) for name, locs in self._locations.items()}
        theirs = {name: set(locs) for name, locs in other._locations.items()}
        for name, locs in theirs.items():
            self._locations.setdefault(name, set()).update(locs)
        for name, locs in mine.items():
            other._locations.setdefault(name, set()).update(locs)

    # ------------------------------------------------------------------
    # Placement pricing

    def bytes_missing(
        self, cluster: "Cluster", names: Iterable[str], machine: str
    ) -> int:
        """Bytes this view *believes* must move to run on ``machine``.

        Sizes are ground truth (declared in the registry); locations are
        beliefs, so a stale view may price a machine that actually holds
        a fresh replica as if the data still had to travel.
        """
        return sum(
            cluster.object(name).size
            for name in names
            if machine not in self._locations.get(name, ())
        )
