"""A small deterministic discrete-event simulation engine.

The paper's evaluation (section 5) runs on 10-node EC2 clusters; this
engine is the substitute substrate: simulated time, generator-based
processes, events, and a strictly deterministic event order (ties broken
by schedule sequence), so every experiment is exactly reproducible.

The programming model mirrors SimPy's, implemented from scratch:

* a *process* is a generator that ``yield``s :class:`Event` objects and is
  resumed with the event's value;
* :meth:`Simulator.timeout` makes a delay event;
* :class:`Event` can be succeeded or failed exactly once; failing an event
  re-raises the exception inside every waiting process;
* :func:`all_of` joins several events.

Example::

    sim = Simulator()

    def worker(sim, results):
        yield sim.timeout(1.5)
        results.append(sim.now)

    results = []
    sim.process(worker(sim, results))
    sim.run()
    assert results == [1.5]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from ..core.errors import SimulationError

ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence carrying a value or an exception."""

    __slots__ = ("sim", "_callbacks", "_done", "_ok", "value", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[[Event], None]] = []
        self._done = False
        self._ok = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def ok(self) -> bool:
        return self._done and self._ok

    def succeed(self, value: Any = None) -> "Event":
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._ok = True
        self.value = value
        self._fire()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._ok = False
        self.value = exc
        self._fire()
        return self

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim._schedule_call(callback, self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._done:
            self.sim._schedule_call(callback, self)
        else:
            self._callbacks.append(callback)


class Process(Event):
    """An event that completes when its generator returns."""

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim, name or getattr(gen, "__name__", "process"))
        self._gen = gen
        sim._schedule_call(self._resume, _Bootstrap(sim))

    def _resume(self, event: Event) -> None:
        if self._done:
            raise SimulationError(f"process {self.name!r} resumed after completion")
        try:
            if event.ok or isinstance(event, _Bootstrap):
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            if isinstance(exc, SimulationError):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        target.add_callback(self._resume)


class _Bootstrap(Event):
    """Internal: kicks off a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        super().__init__(sim, "bootstrap")
        self._done = True
        self._ok = True


class Simulator:
    """The event loop: a heap of (time, seq, callback, event)."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[Event], None], Event]] = []
        self._seq = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling primitives

    def _schedule_call(
        self, callback: Callable[[Event], None], event: Event, delay: float = 0.0
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, event))

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds ``delay`` simulated seconds from now."""
        event = Event(self, f"timeout({delay})")
        self._schedule_call(lambda e: e.succeed(value), event, delay)
        return event

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        return Process(self, gen, name)

    # ------------------------------------------------------------------
    # Running

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap; returns the final simulated time."""
        self._running = True
        try:
            while self._heap:
                time, _seq, callback, event = self._heap[0]
                if until is not None and time > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._heap)
                if time < self.now:
                    raise SimulationError("time moved backwards")
                self.now = time
                callback(event)
        finally:
            self._running = False
        return self.now

    def run_until(self, event: Event) -> Any:
        """Run until ``event`` triggers; returns its value (or raises)."""
        while not event.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: event {event.name!r} can never trigger"
                )
            time, _seq, callback, target = heapq.heappop(self._heap)
            if time < self.now:
                raise SimulationError("time moved backwards")
            self.now = time
            callback(target)
        if not event.ok:
            raise event.value
        return event.value


class Signal:
    """A re-armable broadcast, the condition variable of the sim world.

    :meth:`wait` hands out the current armed :class:`Event`; :meth:`fire`
    succeeds it (waking every process waiting on it) and the next
    :meth:`wait` arms a fresh one.  A fire with nobody waiting is a no-op
    - there is no memory, exactly like a condition variable - so users
    must re-check their predicate after waking.  This is what lets many
    concurrent job processes block on "the world changed" (a job
    finished, capacity freed) without polling the clock.
    """

    __slots__ = ("sim", "name", "_event")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._event: Optional[Event] = None

    def wait(self) -> Event:
        """The event the next :meth:`fire` will succeed."""
        if self._event is None or self._event.triggered:
            self._event = self.sim.event(f"signal:{self.name}")
        return self._event

    def fire(self, value: Any = None) -> None:
        """Wake everyone currently waiting (no-op when nobody is)."""
        if self._event is not None and not self._event.triggered:
            self._event.succeed(value)


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event succeeding when every input has succeeded.

    Fails fast with the first failure.  The value is the list of event
    values in input order.
    """
    events = list(events)
    joined = sim.event("all_of")
    remaining = len(events)
    if remaining == 0:
        return joined.succeed([])

    def on_done(event: Event) -> None:
        nonlocal remaining
        if joined.triggered:
            return
        if not event.ok:
            joined.fail(event.value)
            return
        remaining -= 1
        if remaining == 0:
            joined.succeed([e.value for e in events])

    for event in events:
        event.add_callback(on_done)
    return joined


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event succeeding when the first input succeeds."""
    events = list(events)
    joined = sim.event("any_of")

    def on_done(event: Event) -> None:
        if joined.triggered:
            return
        if event.ok:
            joined.succeed(event.value)
        else:
            joined.fail(event.value)

    for event in events:
        event.add_callback(on_done)
    if not events:
        joined.succeed(None)
    return joined
