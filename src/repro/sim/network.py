"""The simulated cluster network: NICs, links, transfers.

Each machine attaches a :class:`NIC` with a transmit and a receive
:class:`~repro.sim.resources.Pipe`.  A bulk transfer occupies the source's
tx pipe and the destination's rx pipe for ``size / bandwidth`` seconds
after a propagation ``latency`` - so concurrent transfers through the same
NIC contend, which is exactly the effect that makes non-local placement
expensive in fig. 8b.

Control messages (job delegation, completion notices, view updates) are
latency-only: their payloads are tiny by design - Fix ships dependency
information inside handles.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.errors import SimulationError
from .engine import Event, Simulator
from .resources import Pipe

DEFAULT_BANDWIDTH = 1.25e9  # 10 Gb/s, the m5.8xlarge class NIC
DEFAULT_LATENCY = 0.0002  # 200 us intra-cluster
LOCAL_BANDWIDTH = 12.5e9  # in-memory / loopback copies


class NIC:
    """One machine's network interface: serialized tx and rx pipes."""

    def __init__(self, sim: Simulator, name: str, bandwidth: float):
        self.name = name
        self.tx = Pipe(sim, bandwidth, name=f"{name}.tx")
        self.rx = Pipe(sim, bandwidth, name=f"{name}.rx")

    @property
    def bytes_sent(self) -> int:
        return self.tx.bytes_moved

    @property
    def bytes_received(self) -> int:
        return self.rx.bytes_moved


class Network:
    """A full mesh of NICs with uniform (or per-pair) latency."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = DEFAULT_LATENCY,
        latency_fn: Optional[Callable[[str, str], float]] = None,
    ):
        self.sim = sim
        self.latency = latency
        self._latency_fn = latency_fn
        self._nics: Dict[str, NIC] = {}
        self.transfers = 0
        self.bytes_transferred = 0
        self.messages = 0

    def attach(self, name: str, bandwidth: float = DEFAULT_BANDWIDTH) -> NIC:
        if name in self._nics:
            raise SimulationError(f"NIC {name!r} already attached")
        nic = NIC(self.sim, name, bandwidth)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> NIC:
        try:
            return self._nics[name]
        except KeyError:
            raise SimulationError(f"no NIC named {name!r}") from None

    def link_latency(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        if self._latency_fn is not None:
            return self._latency_fn(src, dst)
        return self.latency

    # ------------------------------------------------------------------
    # Transfers

    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; returns a completion event."""
        if nbytes < 0:
            raise SimulationError("cannot transfer negative bytes")
        self.transfers += 1
        self.bytes_transferred += nbytes
        if src == dst:
            # In-memory copy: no NIC involvement.
            return self.sim.timeout(nbytes / LOCAL_BANDWIDTH, value=nbytes)
        return self.sim.process(
            self._transfer_proc(src, dst, nbytes), name=f"xfer {src}->{dst}"
        )

    def _transfer_proc(self, src: str, dst: str, nbytes: int):
        # Store-and-forward through the two serializing pipes: the bytes
        # pass the sender's tx queue, then the receiver's rx queue.  Each
        # NIC side therefore sustains exactly its configured bandwidth in
        # aggregate, and crossing transfers never hold-and-wait on each
        # other (no convoying, no deadlock).  A lone transfer pays the
        # path twice - an accepted fidelity trade-off; bulk experiments
        # are throughput-bound, where this model is exact.
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        yield self.sim.timeout(self.link_latency(src, dst))
        yield src_nic.tx.send(nbytes)
        yield dst_nic.rx.send(nbytes)
        return nbytes

    def message(self, src: str, dst: str) -> Event:
        """A latency-only control message (no NIC occupancy)."""
        self.messages += 1
        return self.sim.timeout(self.link_latency(src, dst))

    def rpc(self, src: str, dst: str, service_time: float = 0.0) -> Event:
        """Request/response round trip plus optional remote service time."""
        rtt = 2.0 * self.link_latency(src, dst)
        self.messages += 2
        return self.sim.timeout(rtt + service_time)
