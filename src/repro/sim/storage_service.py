"""A remote storage service (Amazon S3 / network storage analog).

Fig. 8a configures "a remote data server with 150 ms response latency to
mimic Amazon S3 performance of fetching small objects"; this class models
exactly that: a fixed response latency per GET, a bandwidth term for large
objects, and a bounded number of concurrent connections.

(The *on-cluster* MinIO deployment used by the OpenWhisk baseline is a
different thing - see :mod:`repro.baselines.minio` - because its costs are
dominated by cluster NICs, not service latency.)
"""

from __future__ import annotations

from ..core.errors import SimulationError
from .engine import Event, Simulator
from .resources import Resource

S3_SMALL_OBJECT_LATENCY = 0.150  # seconds; paper section 5.3.1


class StorageService:
    """A latency + bandwidth + concurrency model of remote storage."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "s3",
        response_latency: float = S3_SMALL_OBJECT_LATENCY,
        bandwidth: float = 4e9,
        max_connections: int = 4096,
    ):
        if response_latency < 0 or bandwidth <= 0 or max_connections <= 0:
            raise SimulationError("invalid storage service parameters")
        self.sim = sim
        self.name = name
        self.response_latency = response_latency
        self.bandwidth = bandwidth
        self._connections = Resource(sim, max_connections, name=f"{name}.conns")
        self.gets = 0
        self.puts = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def get(self, nbytes: int) -> Event:
        """Fetch ``nbytes``; completes after latency + transfer time."""
        if nbytes < 0:
            raise SimulationError("cannot GET negative bytes")
        self.gets += 1
        self.bytes_read += nbytes
        return self.sim.process(self._op(nbytes), name=f"{self.name}.get")

    def put(self, nbytes: int) -> Event:
        if nbytes < 0:
            raise SimulationError("cannot PUT negative bytes")
        self.puts += 1
        self.bytes_written += nbytes
        return self.sim.process(self._op(nbytes), name=f"{self.name}.put")

    def _op(self, nbytes: int):
        yield self._connections.acquire(1)
        try:
            yield self.sim.timeout(
                self.response_latency + nbytes / self.bandwidth
            )
        finally:
            self._connections.release(1)
        return nbytes
