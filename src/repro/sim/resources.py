"""Counted resources with FIFO admission for the simulator.

Models CPU-core pools, RAM, storage-service connection limits, and NIC
pipes.  A :class:`Resource` has integer capacity; ``acquire(n)`` yields an
event that succeeds when ``n`` units have been granted, in strict FIFO
order (no overtaking - a large request at the head blocks smaller ones
behind it, which is how RAM admission behaves on real nodes and what makes
the fig. 8a "internal I/O" ablation starve).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..core.errors import SimulationError
from .engine import Event, Simulator


class Resource:
    """An integer-capacity resource with FIFO waiters."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 0:
            raise SimulationError(f"negative capacity for {name}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Tuple[int, Event]] = deque()
        # Peak tracking for utilization reports.
        self.peak_in_use = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self, amount: int = 1) -> Event:
        """An event granting ``amount`` units (FIFO)."""
        if amount < 0:
            raise SimulationError("cannot acquire a negative amount")
        if amount > self.capacity:
            raise SimulationError(
                f"{self.name}: request of {amount} exceeds capacity "
                f"{self.capacity} and would never be granted"
            )
        event = self.sim.event(f"{self.name}.acquire({amount})")
        self._waiters.append((amount, event))
        self._grant()
        return event

    def release(self, amount: int = 1) -> None:
        if amount < 0:
            raise SimulationError("cannot release a negative amount")
        if self.in_use - amount < 0:
            raise SimulationError(
                f"{self.name}: releasing {amount} but only {self.in_use} in use"
            )
        self.in_use -= amount
        self._grant()

    def _grant(self) -> None:
        while self._waiters:
            amount, event = self._waiters[0]
            if event.triggered:  # cancelled externally
                self._waiters.popleft()
                continue
            if self.in_use + amount > self.capacity:
                return  # FIFO: head blocks the queue
            self._waiters.popleft()
            self.in_use += amount
            self.peak_in_use = max(self.peak_in_use, self.in_use)
            event.succeed(amount)

    def queue_length(self) -> int:
        return len(self._waiters)


class Pipe:
    """A serializing channel: one transfer at a time, FIFO.

    Used for NIC tx/rx sides: concurrent transfers on the same NIC queue
    behind each other, which models bandwidth contention at the fidelity
    the experiments need (aggregate transfer time is conserved).
    """

    def __init__(self, sim: Simulator, bytes_per_second: float, name: str = "pipe"):
        if bytes_per_second <= 0:
            raise SimulationError(f"non-positive bandwidth for {name}")
        self.sim = sim
        self.name = name
        self.bandwidth = bytes_per_second
        self._gate = Resource(sim, 1, name=f"{name}.gate")
        self.bytes_moved = 0
        self.busy_seconds = 0.0

    def send(self, nbytes: int) -> Event:
        """An event succeeding when ``nbytes`` have passed the pipe."""
        if nbytes < 0:
            raise SimulationError("cannot send negative bytes")
        done = self.sim.event(f"{self.name}.send({nbytes})")
        duration = nbytes / self.bandwidth

        def start(grant: Event) -> None:
            def finish(_: Event) -> None:
                self._gate.release(1)
                self.bytes_moved += nbytes
                self.busy_seconds += duration
                done.succeed(nbytes)

            self.sim.timeout(duration).add_callback(finish)

        self._gate.acquire(1).add_callback(start)
        return done


class TokenBucket:
    """Bounded concurrency (e.g. a storage service's connection limit)."""

    def __init__(self, sim: Simulator, tokens: int, name: str = "bucket"):
        self._resource = Resource(sim, tokens, name=name)

    def __enter__(self):  # pragma: no cover - convenience only
        raise SimulationError("use acquire()/release() inside processes")

    def acquire(self) -> Event:
        return self._resource.acquire(1)

    def release(self) -> None:
        self._resource.release(1)

    @property
    def available(self) -> int:
        return self._resource.available
