"""Machines, clusters, and the cluster-wide object registry.

The default cluster mirrors the paper's testbed: 10 nodes x 32 vCPU x
128 GiB (m5.8xlarge) on a 10 Gb/s network.  The object registry tracks
where every named data object lives (sizes are declared, contents live
only in the real-runtime tests), which both Fixpoint's scheduler and the
baselines consult - with different fidelity, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..core.errors import SchedulingError, SimulationError
from .engine import Event, Simulator
from .network import DEFAULT_BANDWIDTH, Network
from .resources import Resource
from .stats import CpuAccountant

GIB = 1 << 30


@dataclass(frozen=True)
class MachineSpec:
    """Shape of one node (defaults: the paper's m5.8xlarge)."""

    name: str
    cores: int = 32
    memory_bytes: int = 128 * GIB
    nic_bandwidth: float = DEFAULT_BANDWIDTH


class Machine:
    """One simulated node: a core pool, a RAM pool, and a NIC."""

    def __init__(self, sim: Simulator, spec: MachineSpec, network: Network):
        self.sim = sim
        self.spec = spec
        self.name = spec.name
        self.cores = Resource(sim, spec.cores, name=f"{spec.name}.cores")
        self.memory = Resource(sim, spec.memory_bytes, name=f"{spec.name}.mem")
        self.nic = network.attach(spec.name, spec.nic_bandwidth)

    def resize_cores(self, capacity: int) -> None:
        """Oversubscribe (or shrink) the schedulable core count.

        Used by the "internal I/O" ablations, which give the platform more
        schedulable cores than physical ones (fig. 8a: 200 vs 32).
        """
        if capacity < self.cores.in_use:
            raise SimulationError("cannot shrink below current usage")
        self.cores.capacity = capacity


@dataclass
class ObjectInfo:
    """A named, sized datum and the set of places holding a replica."""

    name: str
    size: int
    locations: Set[str] = field(default_factory=set)


class Cluster:
    """A set of machines, a network, an accountant, and object locations."""

    def __init__(
        self,
        sim: Simulator,
        specs: Iterable[MachineSpec],
        network: Optional[Network] = None,
    ):
        self.sim = sim
        self.network = network if network is not None else Network(sim)
        self.machines: Dict[str, Machine] = {}
        for spec in specs:
            if spec.name in self.machines:
                raise SimulationError(f"duplicate machine {spec.name!r}")
            self.machines[spec.name] = Machine(sim, spec, self.network)
        self.accountant = CpuAccountant(sim)
        self.objects: Dict[str, ObjectInfo] = {}

    # ------------------------------------------------------------------
    # Construction helpers

    @classmethod
    def paper_cluster(cls, sim: Simulator, nodes: int = 10, cores: int = 32) -> "Cluster":
        """The 10-node / 320-vCPU cluster of figs. 8b and 10."""
        specs = [MachineSpec(name=f"node{i}") for i in range(nodes)]
        specs = [MachineSpec(name=s.name, cores=cores) for s in specs]
        return cls(sim, specs)

    @property
    def total_cores(self) -> int:
        """Schedulable cores cluster-wide.

        Uses the core pools' live capacity, not the specs: the internal-I/O
        ablations oversubscribe via :meth:`Machine.resize_cores`, and CPU
        accounting must be reported against what was schedulable.
        """
        return sum(m.cores.capacity for m in self.machines.values())

    @property
    def total_memory(self) -> int:
        """RAM bytes cluster-wide - the admission layer's default
        capacity for its single-bin pointwise footprint check."""
        return sum(m.memory.capacity for m in self.machines.values())

    def machine_names(self) -> List[str]:
        return list(self.machines)

    def machine(self, name: str) -> Machine:
        try:
            return self.machines[name]
        except KeyError:
            raise SimulationError(f"no machine named {name!r}") from None

    # ------------------------------------------------------------------
    # Object registry

    def add_object(self, name: str, size: int, location: str) -> ObjectInfo:
        """Register a datum replica (creating the record if new)."""
        info = self.objects.get(name)
        if info is None:
            info = ObjectInfo(name=name, size=size)
            self.objects[name] = info
        elif info.size != size:
            raise SimulationError(
                f"object {name!r} re-registered with size {size} != {info.size}"
            )
        info.locations.add(location)
        return info

    def object(self, name: str) -> ObjectInfo:
        try:
            return self.objects[name]
        except KeyError:
            raise SchedulingError(f"unknown object {name!r}") from None

    def locate(self, name: str) -> Set[str]:
        return set(self.object(name).locations)

    def bytes_missing(self, names: Iterable[str], machine: str) -> int:
        """Bytes that would have to move to run something needing ``names``
        on ``machine`` - the scheduler's placement cost (paper 4.2.2)."""
        return sum(
            self.objects[n].size
            for n in names
            if machine not in self.objects[n].locations
        )

    def transfer_object(self, name: str, dst: str) -> Event:
        """Replicate ``name`` to ``dst`` from its nearest holder."""
        info = self.object(name)
        if dst in info.locations:
            return self.sim.timeout(0.0, value=0)
        if not info.locations:
            raise SchedulingError(f"object {name!r} has no replicas")
        src = min(info.locations)  # deterministic choice
        done = self.sim.event(f"replicate {name} -> {dst}")

        def finish(event: Event) -> None:
            if event.ok:
                info.locations.add(dst)
                done.succeed(info.size)
            else:
                done.fail(event.value)

        self.network.transfer(src, dst, info.size).add_callback(finish)
        return done
