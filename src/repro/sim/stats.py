"""Per-core CPU-state accounting, mirroring ``/proc/stat``.

The paper's fig. 8 reports user / system / "I/O and waiting" breakdowns
collected from Linux's CPU-state statistics.  The simulator reproduces the
methodology: every simulated core-occupying activity is attributed to a
state, and the *idle* residue is derived from the observation window, so
``user + system + iowait + idle == cores x window`` exactly (an invariant
the property tests check).

States:

* ``user``    - executing function logic;
* ``system``  - platform overhead (orchestration, container churn, RPC);
* ``iowait``  - a claimed core stalled waiting for data ("internal" I/O);
* ``idle``    - derived: cores not claimed by anything.

Fix's externalized I/O shows up as *idle* cores (releasable, schedulable),
whereas internal-I/O platforms show *iowait* (claimed but starving) - the
distinction at the heart of fig. 8b.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

from ..core.errors import SimulationError
from .engine import Simulator

BUSY_STATES = ("user", "system", "iowait")


@dataclass
class StateToken:
    """An open accounting interval; close it with :meth:`CpuAccountant.end`."""

    machine: str
    state: str
    cores: int
    started: float
    closed: bool = False


class CpuAccountant:
    """Accumulates core-seconds by (machine, state)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._core_seconds: Dict[str, Dict[str, float]] = {}

    def begin(self, machine: str, state: str, cores: int = 1) -> StateToken:
        if state not in BUSY_STATES:
            raise SimulationError(f"unknown CPU state {state!r}")
        return StateToken(machine, state, cores, self.sim.now)

    def end(self, token: StateToken) -> None:
        if token.closed:
            raise SimulationError("accounting token closed twice")
        token.closed = True
        elapsed = self.sim.now - token.started
        per_machine = self._core_seconds.setdefault(
            token.machine, {state: 0.0 for state in BUSY_STATES}
        )
        per_machine[token.state] += elapsed * token.cores

    @contextmanager
    def track(
        self, machine: str, state: str, cores: int = 1
    ) -> Iterator[StateToken]:
        """Scoped :meth:`begin`/:meth:`end` that survives exceptions.

        The bare token pattern (``token = begin(...); ...; end(token)``)
        silently loses the interval when the body raises - or, in a
        simulation process, when the engine throws into the generator at
        a yield point - leaving ``busy`` under-accounted and the idle
        residue inflated.  The ``finally`` here closes the token either
        way, so an aborted activity is still charged for the core-time
        it actually held.
        """
        token = self.begin(machine, state, cores)
        try:
            yield token
        finally:
            if not token.closed:
                self.end(token)

    def charge(self, machine: str, state: str, core_seconds: float) -> None:
        """Directly add core-seconds (for closed-form charges)."""
        if state not in BUSY_STATES:
            raise SimulationError(f"unknown CPU state {state!r}")
        per_machine = self._core_seconds.setdefault(
            machine, {state: 0.0 for state in BUSY_STATES}
        )
        per_machine[state] += core_seconds

    def core_seconds(self, machine: str | None = None) -> Dict[str, float]:
        """Busy core-seconds by state, for one machine or the whole cluster."""
        if machine is not None:
            return dict(
                self._core_seconds.get(machine, {s: 0.0 for s in BUSY_STATES})
            )
        totals = {state: 0.0 for state in BUSY_STATES}
        for per_machine in self._core_seconds.values():
            for state, value in per_machine.items():
                totals[state] += value
        return totals


@dataclass
class CpuReport:
    """Percentages over an observation window, like the paper's fig. 8."""

    window_seconds: float
    total_cores: int
    user: float
    system: float
    iowait: float
    idle: float

    @property
    def waiting_pct(self) -> float:
        """The paper's "CPU waiting %" = idle + iowait (+irq, absent here)."""
        return self.iowait + self.idle

    @property
    def user_pct(self) -> float:
        return self.user

    def as_row(self) -> Dict[str, float]:
        return {
            "user%": round(self.user, 1),
            "system%": round(self.system, 1),
            "iowait%": round(self.iowait, 1),
            "idle%": round(self.idle, 1),
            "waiting%": round(self.waiting_pct, 1),
        }


def report(
    accountant: CpuAccountant, total_cores: int, window_seconds: float
) -> CpuReport:
    """Summarize cluster-wide CPU states over ``window_seconds``."""
    if window_seconds <= 0 or total_cores <= 0:
        raise SimulationError("report needs a positive window and core count")
    busy = accountant.core_seconds()
    capacity = total_cores * window_seconds
    used = sum(busy.values())
    if used - capacity > 1e-6 * capacity:
        raise SimulationError(
            f"accounted {used:.3f} core-seconds exceeds capacity {capacity:.3f}"
        )
    idle = max(0.0, capacity - used)
    return CpuReport(
        window_seconds=window_seconds,
        total_cores=total_cores,
        user=100.0 * busy["user"] / capacity,
        system=100.0 * busy["system"] / capacity,
        iowait=100.0 * busy["iowait"] / capacity,
        idle=100.0 * idle / capacity,
    )
