"""``repro.sim`` - the discrete-event cluster substrate.

Substitutes for the paper's EC2 testbed: simulated machines (cores, RAM,
NICs), a contention-aware network, ``/proc/stat``-style CPU accounting,
and an S3-like remote storage service.  Every experiment in
``repro.bench`` runs on this substrate.
"""

from .cluster import GIB, Cluster, Machine, MachineSpec, ObjectInfo
from .engine import Event, Process, Simulator, all_of, any_of
from .network import (
    DEFAULT_BANDWIDTH,
    DEFAULT_LATENCY,
    LOCAL_BANDWIDTH,
    NIC,
    Network,
)
from .resources import Pipe, Resource, TokenBucket
from .stats import BUSY_STATES, CpuAccountant, CpuReport, StateToken, report
from .storage_service import S3_SMALL_OBJECT_LATENCY, StorageService

__all__ = [
    "BUSY_STATES",
    "Cluster",
    "CpuAccountant",
    "CpuReport",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_LATENCY",
    "Event",
    "GIB",
    "LOCAL_BANDWIDTH",
    "Machine",
    "MachineSpec",
    "NIC",
    "Network",
    "ObjectInfo",
    "Pipe",
    "Process",
    "Resource",
    "S3_SMALL_OBJECT_LATENCY",
    "Simulator",
    "StateToken",
    "StorageService",
    "TokenBucket",
    "all_of",
    "any_of",
    "report",
]
