"""Job bookkeeping for the Fixpoint worker pool.

All worker threads share a queue of pending jobs (paper section 4.2.1).  A
*job* is the evaluation of one Encode.  Jobs are deduplicated by Encode
handle, so concurrent requests for the same computation share one
execution.  Waiting threads *help*: instead of blocking idle while a
dependency evaluates elsewhere, they pull jobs off the shared queue - this
makes fork/join evaluation deadlock-free with any worker count.

The queue also carries *tasks* - arbitrary callables submitted with
:meth:`JobQueue.submit_task`.  Tasks are how a node serves incoming
delegations on the same worker pool that evaluates local work
(:mod:`repro.fixpoint.net`): remote requests and local Encodes compete
for the same threads, which is exactly the load the delegation cost
model's ``outstanding`` signal describes.  Tasks are not deduplicated
(two delegations of the same Encode are distinct requests; the
*repository* memo, not the queue, is what collapses repeated work).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from ..analysis.sync import TrackedCondition, TrackedLock, note_blocking
from ..core.errors import FixError
from ..core.handle import Handle


class Job:
    """One pending Encode evaluation (or task) with completion signalling."""

    __slots__ = ("encode", "fn", "_event", "result", "error")

    def __init__(
        self,
        encode: Optional[Handle] = None,
        fn: Optional[Callable[[], Any]] = None,
    ):
        self.encode = encode
        self.fn = fn
        self._event = threading.Event()
        self.result: Optional[Handle] = None
        self.error: Optional[BaseException] = None

    def complete(self, result: Handle) -> None:
        self.result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        if not self._event.is_set():
            # A genuine block (the result is not in yet): if the caller
            # holds a tracked lock this is the hold-while-blocking
            # pattern - waiting on a future that may need that very
            # lock to complete (PR 4's dispatch wedge).
            note_blocking("Job.wait")
        return self._event.wait(timeout)

    def value(self) -> Handle:
        if self.error is not None:
            raise self.error
        if self.result is None:
            raise FixError("job finished without a result")
        return self.result


class JobQueue:
    """Deduplicating, helping-friendly job queue shared by workers."""

    def __init__(self):
        self._lock = TrackedLock("JobQueue._lock")
        self._cond = TrackedCondition(self._lock)
        self._queue: Deque[Job] = deque()
        self._inflight: Dict[Handle, Job] = {}
        self._closed = False
        self.submitted = 0
        self.deduplicated = 0

    def submit(self, encode: Handle) -> Job:
        """Enqueue evaluation of ``encode`` (or join the in-flight job)."""
        with self._cond:
            existing = self._inflight.get(encode)
            if existing is not None:
                self.deduplicated += 1
                return existing
            job = Job(encode)
            self._inflight[encode] = job
            self._queue.append(job)
            self.submitted += 1
            self._cond.notify()
            return job

    def submit_task(self, fn: Callable[[], Any]) -> Job:
        """Enqueue an arbitrary callable on the worker pool (no dedup).

        Raises :class:`FixError` on a closed queue - the caller should
        fall back to its own thread rather than enqueue work nobody
        will ever pop.
        """
        with self._cond:
            if self._closed:
                raise FixError("cannot submit a task to a closed job queue")
            job = Job(fn=fn)
            self._queue.append(job)
            self.submitted += 1
            self._cond.notify()
            return job

    def try_pop(self) -> Optional[Job]:
        """Non-blocking pop, used by helping threads."""
        with self._cond:
            if self._queue:
                return self._queue.popleft()
            return None

    def pop(self, timeout: float = 0.1) -> Optional[Job]:
        """Blocking pop with timeout, used by worker loops.

        The wait is a *deadline* loop: ``Condition.wait(timeout)`` can
        return early on a notify that another consumer races to the
        item, and treating one wakeup as the whole timeout made a
        worker's idle poll return ``None`` after an arbitrarily small
        fraction of its budget (under-waiting the worker loop into a
        busy spin).  Each spurious wakeup re-waits only the remainder.
        """
        with self._cond:
            deadline = time.monotonic() + timeout
            while not self._queue and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            if self._queue:
                return self._queue.popleft()
            return None

    def finish(self, job: Job) -> None:
        """Remove a completed job from the in-flight map."""
        if job.encode is None:
            return  # tasks are never deduplicated, so never tracked
        with self._cond:
            self._inflight.pop(job.encode, None)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def run_job(self, job: Job, executor: Callable[[Handle], Handle]) -> None:
        """Execute ``job`` via ``executor`` and publish its outcome.

        Task jobs carry their own callable and ignore ``executor``.
        """
        try:
            if job.fn is not None:
                job.complete(job.fn())
            else:
                job.complete(executor(job.encode))
        except BaseException as exc:  # noqa: BLE001 - propagated to waiters
            job.fail(exc)
        finally:
            self.finish(job)
