"""Pay-for-results billing (paper section 6, "Paying for results").

Current serverless billing is *pay-for-effort*: the customer pays for
every millisecond a function occupies a machine slice, idle or not -
which bills the customer for the provider's bad placement and noisy
neighbours.  The paper sketches the alternative this module implements:

* an **upfront cost**: the size of an invocation's data inputs plus its
  RAM reservation;
* a **runtime cost** that charges only work that is the function's own
  fault: a proxy for instructions retired (we use user-compute seconds)
  plus an L1/L2-miss-style penalty proportional to bytes actually mapped
  - but *not* wall-clock waiting, which may be the platform's fault;
* invocations carrying a more distant **deadline** get a discount, since
  the provider may spread the load.

:func:`bill_effort` computes the classic GB-second bill for comparison;
the ablation example shows how the two models diverge when the platform
places work badly: pay-for-effort passes the waste to the customer,
pay-for-results eats it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from ..core.errors import FixError

#: Default tariff, in abstract currency units.
PRICE_PER_INPUT_GB = 0.02
PRICE_PER_RESERVED_GB = 0.005
PRICE_PER_CPU_SECOND = 0.04
PRICE_PER_MAPPED_GB = 0.01
PRICE_PER_GB_SECOND_EFFORT = 0.0000166667 * 1000  # AWS-like GB-second rate
DEADLINE_DISCOUNT_PER_HOUR = 0.05
MAX_DEADLINE_DISCOUNT = 0.5


class BillingError(FixError):
    """Invalid meter readings."""


@dataclass(frozen=True)
class InvocationMeter:
    """What the platform measured for one invocation."""

    input_bytes: int
    reserved_memory_bytes: int
    user_cpu_seconds: float
    bytes_mapped: int
    wall_seconds: float
    deadline_slack_hours: float = 0.0

    def __post_init__(self):
        if min(
            self.input_bytes,
            self.reserved_memory_bytes,
            self.bytes_mapped,
        ) < 0 or min(self.user_cpu_seconds, self.wall_seconds) < 0:
            raise BillingError("meter readings must be non-negative")
        if self.deadline_slack_hours < 0:
            raise BillingError("deadline slack must be non-negative")


@dataclass(frozen=True)
class Bill:
    """An itemized charge."""

    upfront: float
    runtime: float
    discount: float

    @property
    def total(self) -> float:
        return max(0.0, self.upfront + self.runtime - self.discount)


def bill_results(meter: InvocationMeter) -> Bill:
    """The pay-for-results bill: immune to placement and neighbours."""
    gb = 1e9
    upfront = (
        meter.input_bytes / gb * PRICE_PER_INPUT_GB
        + meter.reserved_memory_bytes / gb * PRICE_PER_RESERVED_GB
    )
    runtime = (
        meter.user_cpu_seconds * PRICE_PER_CPU_SECOND
        + meter.bytes_mapped / gb * PRICE_PER_MAPPED_GB
    )
    discount_rate = min(
        MAX_DEADLINE_DISCOUNT,
        meter.deadline_slack_hours * DEADLINE_DISCOUNT_PER_HOUR,
    )
    discount = (upfront + runtime) * discount_rate
    return Bill(upfront=upfront, runtime=runtime, discount=discount)


def bill_effort(meter: InvocationMeter) -> Bill:
    """The classic pay-for-effort bill: GB-seconds of occupancy,
    including every moment the slice idled on I/O."""
    gb_seconds = meter.reserved_memory_bytes / 1e9 * meter.wall_seconds
    return Bill(
        upfront=0.0,
        runtime=gb_seconds * PRICE_PER_GB_SECOND_EFFORT,
        discount=0.0,
    )


def job_bill(
    meters: Iterable[InvocationMeter], model: str = "results"
) -> float:
    """Total over a job's invocations under the chosen model."""
    if model == "results":
        return sum(bill_results(m).total for m in meters)
    if model == "effort":
        return sum(bill_effort(m).total for m in meters)
    raise BillingError(f"unknown billing model {model!r}")


def placement_immunity_ratio(
    good_wall: float, bad_wall: float, meter: InvocationMeter
) -> tuple[float, float]:
    """How each model's charge changes when placement goes bad.

    Returns (effort_ratio, results_ratio): the pay-for-effort bill scales
    with the wall-clock blow-up, the pay-for-results bill genuinely does
    not - and both ratios are *computed* from the two bills, so the
    immunity claim is measured, never assumed.  A zero/zero charge (a
    meter with no billable work under a model) ratios to 1.0: the charge
    did not change; a zero-to-nonzero blow-up is infinite.
    """
    if good_wall <= 0:
        raise BillingError("good placement wall time must be positive")
    if bad_wall < 0:
        raise BillingError("bad placement wall time cannot be negative")

    def ratio(bad: float, good: float) -> float:
        if good:
            return bad / good
        return float("inf") if bad else 1.0

    good_effort = bill_effort(replace(meter, wall_seconds=good_wall)).total
    bad_effort = bill_effort(replace(meter, wall_seconds=bad_wall)).total
    good_results = bill_results(replace(meter, wall_seconds=good_wall)).total
    bad_results = bill_results(replace(meter, wall_seconds=bad_wall)).total
    return (ratio(bad_effort, good_effort), ratio(bad_results, good_results))
