"""A real (executing) multi-node Fixpoint: delegation by shipped values.

The simulated engine (:mod:`repro.dist`) studies *performance*; this
module is the *functional* distributed runtime: several in-process
Fixpoint nodes connected by message channels, delegating evaluation by
sending Fix values in the packed wire format (paper section 4.2.1):

* on connect, nodes exchange inventories (the passive object view);
* ``delegate(encode)`` ships the Encode's minimum repository as one
  bundle (handles are self-describing - no scheduler round trip, no
  extra metadata) and the remote node evaluates and replies with the
  result's bundle;
* results and their data are absorbed into the caller's repository, and
  both views advance.

Channels are in-memory here (the transport is pluggable), but every byte
crossing them really is serialized and reparsed - the wire format is
load-bearing, not decorative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core.errors import FixError, MissingObjectError
from ..core.handle import Handle
from ..core.minrepo import transitive_footprint
from ..core.serialize import decode_bundle, encode_bundle
from ..core.storage import Repository
from .runtime import Fixpoint


class NetworkError(FixError):
    """Delegation failures (unknown peer, unresolvable dependencies)."""


@dataclass
class Channel:
    """A byte-counting in-memory link between two nodes."""

    a: "FixpointNode"
    b: "FixpointNode"
    bytes_ab: int = 0
    bytes_ba: int = 0

    def send(self, sender: "FixpointNode", payload: bytes) -> bytes:
        if sender is self.a:
            self.bytes_ab += len(payload)
        elif sender is self.b:
            self.bytes_ba += len(payload)
        else:
            raise NetworkError("sender is not an endpoint of this channel")
        return bytes(payload)  # the wire copy

    @property
    def total_bytes(self) -> int:
        return self.bytes_ab + self.bytes_ba


class FixpointNode:
    """One executing node: a Fixpoint runtime plus peer channels."""

    def __init__(self, name: str, workers: int = 0):
        self.name = name
        self.runtime = Fixpoint(workers=workers)
        self.peers: Dict[str, Channel] = {}
        #: What this node believes its peers hold (the passive view).
        self.view: Dict[str, Set[bytes]] = {}
        self.delegations_served = 0
        self.delegations_sent = 0

    @property
    def repo(self) -> Repository:
        return self.runtime.repo

    # ------------------------------------------------------------------
    # Topology

    def connect(self, other: "FixpointNode") -> Channel:
        """Link two nodes and exchange inventories (paper 4.2.2)."""
        if other.name in self.peers:
            return self.peers[other.name]
        channel = Channel(self, other)
        self.peers[other.name] = channel
        other.peers[self.name] = channel
        self.view[other.name] = {h.content_key() for h in other.repo.handles()}
        other.view[self.name] = {h.content_key() for h in self.repo.handles()}
        return channel

    def _peer(self, name: str) -> "FixpointNode":
        channel = self.peers.get(name)
        if channel is None:
            raise NetworkError(f"{self.name}: no peer named {name!r}")
        return channel.b if channel.a is self else channel.a

    # ------------------------------------------------------------------
    # Delegation

    def delegate(self, peer_name: str, encode: Handle) -> Handle:
        """Evaluate ``encode`` on a peer; returns the (absorbed) result.

        Ships only data the peer is not known to hold - the view keeps
        repeated delegations cheap.
        """
        channel = self.peers.get(peer_name)
        if channel is None:
            raise NetworkError(f"{self.name}: no peer named {peer_name!r}")
        peer = self._peer(peer_name)
        fp = transitive_footprint(self.repo, encode)
        to_ship: List[Handle] = []
        known = self.view.setdefault(peer_name, set())
        for handle in self.repo.handles():
            key = handle.content_key()
            if key in fp.data and key not in known:
                to_ship.append(handle)
        request = encode.pack() + encode_bundle(self.repo, to_ship)
        wire = channel.send(self, request)
        self.delegations_sent += 1
        # The view advances passively on every send (paper 4.2.2).
        known.update(h.content_key() for h in to_ship)
        response = peer._serve(wire)
        wire_back = channel.send(peer, response)
        result, payload = (
            Handle.unpack(wire_back[:32]),
            wire_back[32:],
        )
        absorbed = decode_bundle(self.repo, payload)
        known.update(h.content_key() for h in absorbed)
        known.add(result.content_key())
        self.repo.put_result(encode, result)
        return result

    def _serve(self, wire: bytes) -> bytes:
        """Peer side: parse, evaluate, reply with the result bundle."""
        encode = Handle.unpack(wire[:32])
        received = decode_bundle(self.repo, wire[32:])
        self.delegations_served += 1
        result = self.runtime.eval(encode)
        # Reply with the result and every datum needed to read it.
        result_fp = transitive_footprint(self.repo, result)
        to_ship = [
            handle
            for handle in self.repo.handles()
            if handle.content_key() in result_fp.data
        ]
        return result.pack() + encode_bundle(self.repo, to_ship)

    # ------------------------------------------------------------------
    # Placement-lite: run where the data is

    def eval_anywhere(self, encode: Handle) -> Handle:
        """Evaluate locally if possible; otherwise delegate to the peer
        that already holds the largest share of the footprint."""
        fp = transitive_footprint(self.repo, encode)
        local_keys = {h.content_key() for h in self.repo.handles()}
        if fp.data <= local_keys:
            return self.runtime.eval(encode)
        best: Optional[str] = None
        best_score = -1
        for peer_name, known in self.view.items():
            score = len(fp.data & known)
            if score > best_score:
                best_score = score
                best = peer_name
        if best is None:
            raise MissingObjectError(encode, self.name)
        return self.delegate(best, encode)
