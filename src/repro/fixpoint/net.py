"""A real (executing) multi-node Fixpoint: delegation by shipped values.

The simulated engine (:mod:`repro.dist`) studies *performance*; this
module is the *functional* distributed runtime: several in-process
Fixpoint nodes connected by message channels, delegating evaluation by
sending Fix values in the packed wire format (paper section 4.2.1):

* on connect, nodes run one digest/delta anti-entropy round - content
  keys *and per-handle wire sizes* - into a passive
  :class:`~repro.dist.objectview.ObjectView`, and can re-run it any
  time with :meth:`FixpointNode.gossip_with` (the GOSSIP frames below);
* ``delegate_async(encode)`` ships the Encode's minimum repository as
  one bundle (handles are self-describing - no scheduler round trip, no
  extra metadata), tagged with the sender's identity so the remote node
  can filter its reply through its view of the caller, and returns a
  :class:`Delegation` future immediately;
* the peer serves the request on its own worker pool
  (:meth:`~repro.fixpoint.runtime.Fixpoint.spawn`), and the reply - or
  an explicit error frame, when peer-side evaluation fails - crosses the
  wire back and is absorbed into the caller's repository on the serving
  thread; both views advance - on send *and* on receive.

Delegation is therefore **non-blocking end to end**: the per-peer
``outstanding`` count is raised at dispatch and lowered only once the
reply has been absorbed, so while work is in flight every
:meth:`FixpointNode.quote_best` sees live load.  That is what lets the
cost model's tiebreak (believed bytes first, then load, then name)
actually spread equal-priced work across peers - the property the
paper's placement policy presumes, and the same overlap of in-flight
remote work that Nexus-style I/O offloading wins come from.  Fan-out
helpers build on it: :meth:`FixpointNode.scatter` quotes and dispatches
a batch without waiting, :meth:`FixpointNode.eval_many` overlaps remote
delegations with local evaluation and gathers results in order.  The
blocking :meth:`FixpointNode.delegate` is now just dispatch-plus-wait.

Placement (:meth:`FixpointNode.delegate_best` /
:meth:`FixpointNode.eval_anywhere`) resolves through the same
:mod:`repro.dist.costmodel` the simulated
:class:`~repro.dist.scheduler.DataflowScheduler` uses: peers are priced
by the believed missing *bytes* of the footprint (not handle counts),
genuine ties spread by in-flight delegation load, then break by name.
Local evaluation is preferred whenever it is cheapest (a complete local
footprint prices at zero, and no remote quote can beat zero).

Channels are in-memory here (the transport is pluggable), but every byte
crossing them really is serialized and reparsed - the wire format is
load-bearing, not decorative - and the link is **wire-serialized**:
frames carry per-direction sequence numbers and are decoded in send
order, like a real stream transport.  That ordering is what makes the
dispatcher's optimistic "already on the wire" filtering sound under
concurrency.  A channel may carry a per-direction ``latency``; it is
paid on the *serving* thread, never the dispatching one, so in-flight
delegations overlap their wire time (pipelined, still ordered).

Request frame::

    [u16 sender length][sender utf-8][16-byte span context]
    [32-byte encode handle][bundle]

Response frame::

    [16-byte span context][u8 status=0]
                          [32-byte result handle][bundle]   (ok)
    [16-byte span context][u8 status=1]
                          [u16 type length][type utf-8]
                          [u32 message length][message utf-8]  (error)

The 16-byte :class:`~repro.obs.SpanContext` is how tracing crosses the
wire: the request carries the caller's *dispatch* span, the peer's
*serve* span parents to it, and the reply (ok or error) carries the
serve span back so the caller's *absorb* span parents to that - one
stitched dispatch -> serve -> absorb chain per delegation, across
nodes, reassembled by :func:`repro.obs.stitch`.  An untraced node
ships :data:`~repro.obs.NULL_CONTEXT` and its peers degrade to local
roots.

The error frame is what carries a peer-side evaluation failure across
the wire: the serve runs on the peer's thread, so raising through
Python would strand the exception there - instead the caller's future
fails with :class:`RemoteEvalError`, and the caller's optimistic view
advance for the shipped data is rolled back
(:meth:`~repro.dist.objectview.ObjectView.forget`), so the next attempt
re-ships instead of stranding on a false belief.

The ok-response bundle carries only the result data the server does
*not* believe the caller already holds - echoing back what the caller
just shipped would double the round trip for nothing.

**Gossip frames.**  Inventory knowledge is no longer connect-time-only:
:meth:`FixpointNode.gossip_with` runs one push-pull anti-entropy round
over a live channel, sequenced like every other frame::

    [u8 0x10][u16 sender length][sender utf-8][ctx][digest]        (SYN)
    [u8 0x11][ctx][digest][delta]                                  (ACK)
    [u8 0x12][u16 sender length][sender utf-8][ctx][delta]         (PUSH)

(``ctx`` is the same 16-byte span context delegation frames carry: the
SYN/PUSH ship the caller's *round* span, the ACK the peer's *serve*
span, so a whole anti-entropy round is one stitched trace too.)

using the codec in :mod:`repro.dist.gossip`.  Entries keep their origin
stamps, so beliefs spread *transitively*: after beta gossips with gamma
and alpha gossips with beta, alpha knows what gamma holds without ever
having opened a channel to it - and because placement candidates
include every gossip-learned node resolvable through the optional
:class:`NodeDirectory`, :meth:`FixpointNode.quote_best` prices those
nodes and delegation dials them on demand (:meth:`FixpointNode.connect`
is itself just channel setup plus one gossip round).  Converged peers
exchange digests and empty deltas - a handshake between nodes that
already agree ships a few dozen bytes, not their inventories.

**Membership.**  The SYN and ACK frames additionally piggyback each
side's :class:`~repro.dist.membership.MembershipView` map (heartbeat
counters stamped like inventory versions, merged with the same
idempotent join algebra), so liveness spreads on exactly the traffic
that spreads inventory.  :meth:`FixpointNode.gossip_sweep` is one
failure-detector round: gossip with every live peer, record a
suspicion for any that fail at the transport, age the detector one
tick.  A peer whose silence outlives suspect + confirm thresholds is
tombstoned, and the node reacts (:meth:`FixpointNode._on_peer_dead`,
fired outside every lock): the dead peer's beliefs are evicted from
the view, its channel is closed - waking frames parked in delivery
windows and callers blocked in :meth:`Channel.transit` with a
:class:`NetworkError` naming the dead endpoint - and its directory
entry is unregistered so gossip-learned names stop resolving to a
corpse.  In-flight :class:`Delegation` futures to the dead peer fail
fast through the same channel-close path, roll back their optimistic
view advance, and :meth:`FixpointNode.retry_elsewhere` re-quotes and
re-dispatches the work on the survivors.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.sync import (
    TrackedCondition,
    TrackedLock,
    TrackedRLock,
    note_blocking,
)
from ..core.errors import FixError, MissingObjectError
from ..core.handle import HANDLE_BYTES, Handle
from ..core.minrepo import Footprint, transitive_footprint
from ..core.serialize import decode_bundle, encode_bundle
from ..core.storage import Repository
from ..dist.costmodel import Quote, choose
from ..dist.gossip import (
    pack_delta,
    pack_digest,
    unpack_delta,
    unpack_digest,
)
from ..dist.membership import (
    MembershipView,
    pack_members,
    unpack_members,
)
from ..dist.objectview import ObjectView
from ..obs import NULL_CONTEXT, Obs, SpanContext
from .jobs import Job
from .runtime import Fixpoint

_SENDER_LEN = struct.Struct("<H")
_ERR_TYPE_LEN = struct.Struct("<H")
_ERR_MSG_LEN = struct.Struct("<I")

_STATUS_OK = b"\x00"
_STATUS_ERR = b"\x01"

_GOSSIP_SYN = b"\x10"
_GOSSIP_ACK = b"\x11"
_GOSSIP_PUSH = b"\x12"

#: Serializes topology mutation (channel registration on *both*
#: endpoints).  One process-wide lock, not per-node: connect touches two
#: nodes at once, and delegation now dials gossip-learned peers
#: implicitly, so two threads (or both ends) may race to link the same
#: pair - without this they each mint a Channel and the pair's frames
#: split across two sequence spaces, wedging delivery forever.  Held
#: only around the dict registration, never across wire traffic.
_TOPOLOGY_LOCK = TrackedLock("net._TOPOLOGY_LOCK")


class NetworkError(FixError):
    """Delegation failures (unknown peer, unresolvable dependencies)."""


class RemoteEvalError(NetworkError):
    """A peer-side evaluation failure, carried back as an error frame.

    The peer serves requests on its own threads, so its exception cannot
    raise through the caller's Python stack; it is serialized (exception
    type name plus message) and re-raised here when the caller reads the
    delegation's result.
    """

    def __init__(self, peer: str, error_type: str, message: str):
        super().__init__(
            f"delegation to {peer!r} failed remotely with "
            f"{error_type}: {message}"
        )
        self.peer = peer
        self.error_type = error_type
        self.remote_message = message


def _pack_error(exc: BaseException) -> bytes:
    """Serialize an exception into the error-response frame body."""
    error_type = type(exc).__name__.encode("utf-8")
    message = str(exc).encode("utf-8")
    return (
        _ERR_TYPE_LEN.pack(len(error_type))
        + error_type
        + _ERR_MSG_LEN.pack(len(message))
        + message
    )


def _unpack_error(body: bytes) -> Tuple[str, str]:
    """Parse an error-response frame body into (type name, message)."""
    (type_len,) = _ERR_TYPE_LEN.unpack_from(body, 0)
    offset = _ERR_TYPE_LEN.size
    error_type = body[offset : offset + type_len].decode("utf-8")
    offset += type_len
    (msg_len,) = _ERR_MSG_LEN.unpack_from(body, offset)
    offset += _ERR_MSG_LEN.size
    message = body[offset : offset + msg_len].decode("utf-8")
    return error_type, message


@dataclass(frozen=True)
class GossipTraffic:
    """What one :meth:`FixpointNode.gossip_with` round actually moved."""

    peer: str
    bytes_shipped: int
    entries_received: int
    entries_sent: int


class NodeDirectory:
    """Name -> node resolution: the membership side of gossip.

    Gossip teaches a node *names* of machines holding data; turning a
    name into a dialable endpoint is a directory lookup (the in-process
    stand-in for address resolution in a real transport).  Nodes built
    with ``directory=`` register themselves; placement then treats
    every resolvable gossip-learned name as a candidate, and delegation
    connects on demand.
    """

    def __init__(self):
        self._nodes: Dict[str, "FixpointNode"] = {}

    def register(self, node: "FixpointNode") -> None:
        self._nodes[node.name] = node

    def unregister(self, name: str) -> None:
        """Drop a (dead) node: gossip-learned names stop resolving to
        it, so placement stops dialing a corpse.  Idempotent - several
        survivors' detectors may confirm the same death."""
        self._nodes.pop(name, None)

    def get(self, name: str) -> Optional["FixpointNode"]:
        return self._nodes.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)


class _Arrival:
    """The wire-order delivery window for one frame.

    Entering waits until every earlier frame on the same direction has
    been delivered (decoded by the receiver); exiting marks this frame
    delivered and wakes successors.  :meth:`release` is idempotent, so
    a failure path that never entered the window can still free it
    without double-advancing the sequence.
    """

    __slots__ = ("channel", "direction", "seq")

    def __init__(self, channel: "Channel", direction: str, seq: int):
        self.channel = channel
        self.direction = direction
        self.seq = seq

    def __enter__(self) -> "_Arrival":
        self.channel._await_turn(self.direction, self.seq)
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        self.channel._release(self.direction, self.seq)


@dataclass
class Channel:
    """A byte-counting, **wire-serialized** in-memory link.

    Frames on one direction carry sequence numbers assigned at
    :meth:`send` and must be *delivered* (decoded by the receiver) in
    that order - :meth:`arrival` hands out the delivery window.  This
    mirrors a real ordered transport: two concurrent delegations may
    evaluate in any order, but the second request's bundle is never
    parsed before the first's, so a dispatcher that skipped re-shipping
    data "already on the wire" can rely on it having landed.

    ``latency`` (seconds, per direction) is paid via :meth:`transit` on
    the serving thread *before* the delivery window, so in-flight
    frames overlap their wire time (pipelining) while still landing in
    order.
    """

    a: "FixpointNode"
    b: "FixpointNode"
    bytes_ab: int = 0
    bytes_ba: int = 0
    latency: float = 0.0
    _cond: object = field(
        default_factory=lambda: TrackedCondition(name="Channel._cond"),
        repr=False,
        compare=False,
    )
    _closed: bool = field(default=False, repr=False, compare=False)
    _sent: Dict[str, int] = field(
        default_factory=lambda: {"ab": 0, "ba": 0}, repr=False, compare=False
    )
    _delivered: Dict[str, int] = field(
        default_factory=lambda: {"ab": 0, "ba": 0}, repr=False, compare=False
    )
    #: Frames released ahead of their turn (an abandoned dispatch, a
    #: serve that died before its window); the delivery frontier only
    #: advances over *contiguous* completions, so an early release can
    #: never unblock frames that are still waiting on live predecessors.
    _early: Dict[str, set] = field(
        default_factory=lambda: {"ab": set(), "ba": set()},
        repr=False,
        compare=False,
    )

    def _direction(self, sender: "FixpointNode") -> str:
        if sender is self.a:
            return "ab"
        if sender is self.b:
            return "ba"
        raise NetworkError("sender is not an endpoint of this channel")

    def send(self, sender: "FixpointNode", payload: bytes) -> Tuple[bytes, int]:
        """Put a frame on the wire; returns (wire copy, sequence).

        Raises :class:`NetworkError` on a closed channel: a frame whose
        sequence number nobody will ever deliver would wedge the
        direction, so the failure must be loud and at the send site.
        """
        with self._cond:
            direction = self._direction(sender)
            if self._closed:
                raise NetworkError(
                    f"channel {self.a.name}<->{self.b.name} is closed: "
                    f"cannot send from {sender.name}"
                )
            if direction == "ab":
                self.bytes_ab += len(payload)
            else:
                self.bytes_ba += len(payload)
            seq = self._sent[direction]
            self._sent[direction] += 1
        # Both endpoints count the frame - outside the condition lock,
        # so metric updates never serialize the wire.
        receiver = self.b if direction == "ab" else self.a
        sender._note_frame(receiver.name, "out", len(payload))
        receiver._note_frame(sender.name, "in", len(payload))
        return bytes(payload), seq  # the wire copy

    def arrival(self, sender: "FixpointNode", seq: int) -> _Arrival:
        """The delivery window for frame ``seq`` sent by ``sender``."""
        return _Arrival(self, self._direction(sender), seq)

    def _await_turn(self, direction: str, seq: int) -> None:
        with self._cond:
            while self._delivered[direction] < seq:
                if self._closed:
                    # Close wakes every waiter: a frame parked in the
                    # delivery window must fail, not sleep forever on a
                    # predecessor that will never be delivered.
                    raise NetworkError(
                        f"channel {self.a.name}<->{self.b.name} closed "
                        f"while frame {seq} awaited delivery"
                    )
                self._cond.wait()

    def _release(self, direction: str, seq: int) -> None:
        with self._cond:
            if seq < self._delivered[direction]:
                return  # already delivered (idempotent)
            early = self._early[direction]
            early.add(seq)
            advanced = False
            while self._delivered[direction] in early:
                early.remove(self._delivered[direction])
                self._delivered[direction] += 1
                advanced = True
            if advanced:
                self._cond.notify_all()

    def transit(self) -> None:
        """One direction's wire time.  Called off the dispatching thread.

        The wait is interruptible: :meth:`close` (membership eviction, a
        crashed endpoint) wakes it mid-flight with a :class:`NetworkError`
        naming the endpoints, instead of sleeping out the full latency
        on a link that no longer exists.  Implemented as a deadline loop
        on the channel condition - ``wait(timeout)`` may return early on
        any notify, so each wakeup re-checks closed and re-waits only
        the remainder.
        """
        if self.latency <= 0:
            return
        # Waiting out wire time while holding a lock is the
        # hold-while-blocking shape the --race tracker flags; announce
        # the block so it can check the calling thread's held set.
        note_blocking("Channel.transit")
        deadline = time.monotonic() + self.latency
        with self._cond:
            while True:
                if self._closed:
                    raise NetworkError(
                        f"channel {self.a.name}<->{self.b.name} closed "
                        "while a frame was in transit"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                self._cond.wait(remaining)

    def close(self) -> None:
        """Tear the link down: subsequent sends raise, parked delivery
        windows wake with :class:`NetworkError` instead of wedging.
        Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def total_bytes(self) -> int:
        with self._cond:
            return self.bytes_ab + self.bytes_ba


class Delegation:
    """One in-flight asynchronous delegation (a future).

    Created by :meth:`FixpointNode.delegate_async`.  Resolved on the
    serving thread only *after* the reply has been absorbed into the
    caller's repository - when :meth:`result` returns, the handle and
    its data are local.  A peer-side evaluation failure resolves the
    future with :class:`RemoteEvalError`; a transport failure with
    :class:`NetworkError`.

    Completion signalling is a :class:`~repro.fixpoint.jobs.Job` - the
    same primitive the worker pool uses - so there is exactly one
    result/error/event implementation in the package; this class adds
    only the delegation identity and the timeout-to-:class:`NetworkError`
    translation.

    Every delegation settles its caller-side bookkeeping (the per-peer
    ``outstanding`` count, and - on failure - the rollback of the
    optimistic view advance for the shipped keys) **exactly once**,
    through a one-shot closure armed at dispatch.  The serving thread
    settles it on completion; :meth:`cancel` (or a :meth:`result`
    timeout) settles it from the caller's side when the caller stops
    waiting.  Whichever side loses the race becomes a no-op, so a hung
    peer can no longer leak phantom in-flight load and falsely-believed
    shipped keys forever - the bug this settle path fixes.
    """

    __slots__ = ("peer", "encode", "_job", "_settler")

    def __init__(self, peer: str, encode: Handle):
        self.peer = peer
        self.encode = encode
        self._job = Job(encode)
        #: One-shot settle closure (armed by ``FixpointNode._dispatch``):
        #: ``settler(rollback) -> bool``, True only for the first caller.
        self._settler = None

    @property
    def done(self) -> bool:
        return self._job.done

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._job.wait(timeout)

    def cancel(self) -> bool:
        """Abandon this delegation from the caller's side.

        Settles the dispatch bookkeeping - drops the peer's outstanding
        count and rolls back the optimistic view advance for every key
        shipped - and fails the future with :class:`NetworkError`.
        Returns True if this call did the settling; False when the
        delegation already resolved (or another canceller won), in
        which case nothing changes.  The peer may still finish serving
        the abandoned request; a late reply is absorbed as ordinary
        (true) belief but no longer touches the settled bookkeeping.
        """
        if self._settler is None or self._job.done:
            return False
        if not self._settler(True):
            return False
        self._job.fail(
            NetworkError(
                f"delegation to {self.peer!r} was cancelled by the caller"
            )
        )
        return True

    def result(self, timeout: Optional[float] = None) -> Handle:
        """Block until resolved; return (or raise) the outcome.

        A timeout **cancels** the delegation: the optimistic view
        advance is rolled back and the peer's in-flight count dropped
        before the :class:`NetworkError` raises - a hung peer must not
        keep phantom load and false shipped-key beliefs alive forever.
        If the reply lands in the instant between the timeout and the
        cancellation, the race is benign: the settled side wins, and
        the freshly-arrived result is returned instead of the error.
        """
        if not self._job.wait(timeout):
            if self.cancel():
                raise NetworkError(
                    f"delegation to {self.peer!r} timed out after "
                    f"{timeout}s (rolled back)"
                )
            # Lost the race: the serving thread settled first, so its
            # resolution (result or failure) is imminent - wait it in.
            self._job.wait()
        return self._job.value()

    def _complete(self, result: Handle) -> None:
        self._job.complete(result)

    def _fail(self, error: BaseException) -> None:
        self._job.fail(error)


class FixpointNode:
    """One executing node: a Fixpoint runtime plus peer channels."""

    def __init__(
        self,
        name: str,
        workers: int = 0,
        directory: Optional[NodeDirectory] = None,
        obs: Optional[Obs] = None,
        suspect_after: int = 3,
        confirm_after: int = 3,
        incarnation: int = 1,
    ):
        self.name = name
        #: SWIM incarnation: a node restarted after the cluster
        #: tombstoned it passes its old incarnation + 1, which outranks
        #: the tombstone in every survivor's lattice; the view stamps
        #: beliefs under the matching epoch so survivors' retained
        #: version caps (which cover everything the *previous*
        #: incarnation ever said) do not swallow the fresh ones.
        self.incarnation = incarnation
        #: Observability: metrics registry + tracer.  Each node gets its
        #: own wall-clocked :class:`~repro.obs.Obs` by default (cheap:
        #: metric updates are a lock and a dict write), so two-node
        #: examples produce stitched traces out of the box; pass
        #: ``repro.obs.NULL_OBS`` to run dark, or share one Obs across
        #: nodes to get a single cluster-wide registry.
        self.obs = obs if obs is not None else Obs(name)
        self.runtime = Fixpoint(workers=workers, obs=self.obs)
        self.peers: Dict[str, Channel] = {}
        #: What this node believes its peers hold (the passive view):
        #: object names are content keys, locations are peer names, and
        #: sizes come from the handles seen in inventory/wire traffic.
        #: Gossip also puts *this node's own* holdings in it, stamped
        #: with version counters, so anti-entropy can forward them.
        self.view = ObjectView(name, clock=self.obs.clock, epoch=incarnation)
        #: Optional membership: lets placement treat gossip-learned
        #: node names as candidates and delegation dial them on demand.
        self.directory = directory
        if directory is not None:
            directory.register(self)
        #: Gossiped liveness: heartbeats piggyback on the SYN/ACK
        #: frames, :meth:`gossip_sweep` runs the suspect -> confirm
        #: detector, and a confirmed death fires :meth:`_on_peer_dead`
        #: (outside the membership lock) to evict, close, unregister.
        #: The mirrors: a dead peer reasserting life at a higher
        #: incarnation fires :meth:`_on_peer_rejoin` (readmit its
        #: beliefs, restore its candidacy), and this node beating its
        #: *own* tombstone fires :meth:`_on_self_refute` (advance the
        #: view epoch, re-register in the directory).
        self.membership = MembershipView(
            name,
            suspect_after=suspect_after,
            confirm_after=confirm_after,
            on_dead=self._on_peer_dead,
            on_rejoin=self._on_peer_rejoin,
            on_refute=self._on_self_refute,
            incarnation=incarnation,
        )
        #: In-flight delegations per peer - the load signal the cost
        #: model spreads equal-price candidates with.  Raised at
        #: dispatch, lowered when the reply has been absorbed, so it is
        #: *live* while work is in flight.
        self.outstanding: Dict[str, int] = {}
        self.delegations_served = 0
        self.delegations_sent = 0
        self.gossip_rounds = 0
        #: Serializes dispatch (footprint, send, optimistic view
        #: advance, outstanding bump) against reply bookkeeping.
        self._lock = TrackedRLock("FixpointNode._lock")
        # Instruments (get-or-create: shared-Obs nodes share families,
        # distinguished by labels).  Live structures - in-flight load,
        # view size, view staleness - are sampled at export via gauge
        # callbacks instead of pushed on the hot path.
        registry = self.obs.registry
        self._m_frames = registry.counter(
            "net_frames_total", "Wire frames by peer and direction"
        )
        self._m_bytes = registry.counter(
            "net_bytes_total", "Wire bytes by peer and direction"
        )
        self._m_transit = registry.histogram(
            "net_transit_seconds", "Per-frame wire time, by peer"
        )
        self._m_quote = registry.histogram(
            "quote_seconds", "Placement quote time through the cost model"
        )
        self._m_sent = registry.counter(
            "delegations_sent_total", "Delegations dispatched, by peer"
        )
        self._m_served = registry.counter(
            "delegations_served_total", "Delegations served, by caller"
        )
        self._m_rollbacks = registry.counter(
            "delegation_rollbacks_total",
            "Failed delegations whose optimistic view advance was rolled back",
        )
        self._m_evictions = registry.counter(
            "membership_evictions_total",
            "Peers confirmed dead and evicted from the view",
        )
        self._m_rejoins = registry.counter(
            "membership_rejoins_total",
            "Tombstoned peers readmitted at a higher incarnation",
        )
        self._m_refutations = registry.counter(
            "membership_refutations_total",
            "Own tombstones refuted by bumping the incarnation",
        )
        self._m_retries = registry.counter(
            "delegation_retries_total",
            "Failed delegations re-quoted and re-dispatched on survivors",
        )
        self._m_gossip_rounds = registry.counter(
            "gossip_rounds_total", "Anti-entropy rounds by peer and role"
        )
        self._m_gossip_entries = registry.counter(
            "gossip_entries_total", "Gossip delta entries by direction"
        )
        self._m_gossip_bytes = registry.counter(
            "gossip_bytes_total", "Gossip frame bytes, by peer"
        )
        registry.gauge(
            "delegations_inflight", "Live in-flight delegation load"
        ).set_function(
            lambda: float(sum(self.outstanding.values())), node=self.name
        )
        view_stats = registry.gauge(
            "view_size", "ObjectView belief-state sizes"
        )
        for stat in ("entries", "replicas", "log_entries", "origins"):
            view_stats.set_function(
                lambda s=stat: float(self.view.stats()[s]),
                node=self.name,
                stat=stat,
            )
        registry.gauge(
            "view_staleness_seconds",
            "Age of the view's last belief advance",
        ).set_function(self.view.staleness, node=self.name)

    @property
    def repo(self) -> Repository:
        return self.runtime.repo

    def _note_frame(self, peer: str, direction: str, nbytes: int) -> None:
        """Count one wire frame (called by :meth:`Channel.send` for
        both endpoints, outside the channel's condition lock)."""
        self._m_frames.inc(peer=peer, direction=direction)
        self._m_bytes.inc(nbytes, peer=peer, direction=direction)

    def close(self) -> None:
        self.runtime.close()

    def crash(self) -> None:
        """Simulate abrupt death: every link drops, the pool stops.

        Closing the channels is what makes the death *observable*:
        peers' sends raise, frames parked in delivery windows and
        callers waiting out :meth:`Channel.transit` wake with
        :class:`NetworkError`, and subsequent :meth:`gossip_sweep`
        attempts fail at the transport and feed the failure detector.
        Nothing is announced - survivors must detect the silence.
        """
        for channel in list(self.peers.values()):
            channel.close()
        self.runtime.close()

    def _on_peer_dead(self, peer_name: str) -> None:
        """React to a membership tombstone for ``peer_name``.

        Runs outside the membership lock (it takes the view's and the
        channel's own locks): evict every belief about the dead peer
        from the view - tombstone-gated, so late gossip cannot
        resurrect them - close and drop its channel so parked waiters
        fail fast naming the dead endpoint, and unregister it from the
        directory so gossip-learned names stop dialing it.  The
        ``outstanding`` entry is kept (in-flight delegations still
        settle through it); placement ignores dead candidates anyway.
        """
        evicted = self.view.evict(peer_name)
        self._m_evictions.inc(peer=peer_name)
        with _TOPOLOGY_LOCK:
            channel = self.peers.pop(peer_name, None)
        if channel is not None:
            channel.close()
        if self.directory is not None:
            self.directory.unregister(peer_name)
        self.obs.tracer.start(
            "membership.evict", peer=peer_name
        ).set(beliefs_evicted=evicted).finish()

    def _on_peer_rejoin(self, peer_name: str) -> None:
        """React to a tombstoned peer reasserting life at a higher
        incarnation - the :meth:`_on_peer_dead` counterpart.

        Runs outside the membership lock.  Readmission lifts the
        view's eviction gate so the peer's fresh-epoch beliefs merge
        again (the retained version caps keep shadowing its pre-death
        gossip); placement candidacy and the :meth:`_ensure_channel`
        fast-fail recover by themselves, because both consult the
        membership's live dead set.  If a channel to the peer survived
        the false alarm, its endpoint is re-registered in the directory
        (a *restarted* peer re-registers itself at construction; a
        falsely-accused one re-registers in its own
        :meth:`_on_self_refute`).
        """
        readmitted = self.view.readmit(peer_name)
        if self.directory is not None:
            channel = self.peers.get(peer_name)
            if channel is not None and not channel.closed:
                self.directory.register(
                    channel.b if channel.a is self else channel.a
                )
        self._m_rejoins.inc(peer=peer_name)
        self.obs.tracer.start(
            "membership.rejoin", peer=peer_name
        ).set(readmitted=readmitted).finish()

    def _on_self_refute(self, incarnation: int) -> None:
        """React to *this node* beating its own tombstone.

        A falsely-accused node has a recovery problem eviction created:
        every survivor purged its holdings and kept the version caps,
        so replaying its old gossip applies 0 entries everywhere.
        Advancing the view's epoch re-stamps its holdings under the
        fresh ``name#incarnation`` origin - new information under every
        cap - and the next gossip round carries both the refutation
        (which readmits this node at each survivor) and the re-stamped
        beliefs.  Re-registering undoes the survivors' directory purge.
        """
        self.incarnation = incarnation
        restamped = self.view.advance_epoch(incarnation)
        if self.directory is not None:
            self.directory.register(self)
        self._m_refutations.inc()
        self.obs.tracer.start(
            "membership.refute", incarnation=incarnation
        ).set(restamped=restamped).finish()

    def __enter__(self) -> "FixpointNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Topology

    def connect(self, other: "FixpointNode") -> Channel:
        """Link two nodes; the inventory handshake (paper 4.2.2) is one
        digest/delta gossip round over the new channel.

        The same round used to run only here - connect-time-only
        exchange - which is exactly what :meth:`gossip_with` replaces:
        any later round refreshes the link for O(delta) bytes, and
        beliefs merged from one peer forward to the next.

        Safe to race: registration is atomic under the topology lock
        (double-checked), so concurrent dials of the same pair - from
        either end - share one channel and one sequence space.  The
        inventory gossip runs after the lock drops; a dispatcher that
        finds the channel mid-handshake just ships conservatively.

        A *closed* channel to the same peer (a healed partition, a
        peer readmitted after a false tombstone) does not satisfy the
        dial: it is dropped from both endpoints and a fresh channel
        with a fresh sequence space is minted.
        """
        stale = self.peers.get(other.name)
        if stale is not None and stale.closed:
            # The closed-ness check takes the channel's own lock, so it
            # runs before the topology lock, never inside it.
            with _TOPOLOGY_LOCK:
                if self.peers.get(other.name) is stale:
                    self.peers.pop(other.name, None)
                if other.peers.get(self.name) is stale:
                    other.peers.pop(self.name, None)
        with _TOPOLOGY_LOCK:
            existing = self.peers.get(other.name)
            if existing is not None:
                return existing
            channel = Channel(self, other)
            self.peers[other.name] = channel
            other.peers[self.name] = channel
            self.outstanding.setdefault(other.name, 0)
            other.outstanding.setdefault(self.name, 0)
        # Sampled, not copied: tests and benchmarks set a channel's
        # latency *after* connecting.
        self.obs.registry.gauge(
            "net_channel_latency_seconds", "Configured per-direction latency"
        ).set_function(lambda: channel.latency, peer=other.name)
        other.obs.registry.gauge(
            "net_channel_latency_seconds", "Configured per-direction latency"
        ).set_function(lambda: channel.latency, peer=self.name)
        self.gossip_with(other.name)
        return channel

    def _peer(self, name: str) -> "FixpointNode":
        channel = self.peers.get(name)
        if channel is None:
            raise NetworkError(f"{self.name}: no peer named {name!r}")
        return channel.b if channel.a is self else channel.a

    def _ensure_channel(self, peer_name: str) -> Channel:
        """A live channel to ``peer_name``, dialing through the
        directory when the name was learned only via gossip.  A peer
        this node's detector has confirmed dead is refused outright -
        failing fast with the death named beats dialing a corpse; the
        refusal lifts by itself when the peer rejoins, because the
        check consults the live lattice.  A closed channel (a healed
        partition, a readmitted peer) is re-dialed through the
        directory rather than returned."""
        if self.membership.is_dead(peer_name):
            raise NetworkError(
                f"{self.name}: peer {peer_name!r} is confirmed dead"
            )
        channel = self.peers.get(peer_name)
        if channel is not None and not channel.closed:
            return channel
        if self.directory is not None:
            node = self.directory.get(peer_name)
            if node is not None and node is not self:
                return self.connect(node)
        if channel is not None:
            # No directory to re-dial through: the stale link is all we
            # have, and sending on it raises naming the closed channel.
            return channel
        raise NetworkError(f"{self.name}: no peer named {peer_name!r}")

    # ------------------------------------------------------------------
    # Gossip: digest/delta anti-entropy over live channels

    def _refresh_self(self) -> None:
        """Stamp this node's own holdings into its view (a node always
        knows its disk); dedup in ``learn`` keeps repeats free."""
        for key, size in self.runtime.holdings().items():
            self.view.learn(key, self.name, size)

    def gossip_with(self, peer_name: str) -> GossipTraffic:
        """One push-pull anti-entropy round with a connected peer.

        Three sequenced frames cross the real channel: SYN (my digest),
        ACK (peer's digest + the delta I lack), PUSH (the delta the
        peer lacks).  Every byte is serialized/reparsed and counted on
        the channel like delegation traffic, and the frames respect the
        wire order - gossip can run concurrently with live delegations.
        Between converged peers the deltas are empty: the round costs
        two digests and framing, not the inventory.
        """
        channel = self.peers.get(peer_name)
        if channel is None:
            raise NetworkError(f"{self.name}: no peer named {peer_name!r}")
        peer = self._peer(peer_name)
        self._refresh_self()
        # Liveness piggyback: the heartbeat advances with every round
        # this node initiates, and the whole membership map rides the
        # SYN (and the peer's rides the ACK back) - O(nodes) bytes on
        # traffic that is already crossing the wire.
        self.membership.beat()
        span = self.obs.tracer.start("gossip.round", peer=peer_name)
        sender = self.name.encode("utf-8")
        syn = (
            _GOSSIP_SYN
            + _SENDER_LEN.pack(len(sender))
            + sender
            + span.context.pack()
            + pack_digest(self.view.digest())
            + pack_members(self.membership.members())
        )
        wire, seq = channel.send(self, syn)
        with self._m_transit.time(peer=peer_name):
            channel.transit()
        with channel.arrival(self, seq):
            ack_wire, ack_seq = peer._serve_gossip_syn(wire)
        with self._m_transit.time(peer=peer_name):
            channel.transit()
        with channel.arrival(peer, ack_seq):
            if ack_wire[:1] != _GOSSIP_ACK:
                raise NetworkError(
                    f"{self.name}: bad gossip ack tag {ack_wire[:1]!r}"
                )
            _serve_ctx, offset = SpanContext.unpack(ack_wire, 1)
            peer_digest, offset = unpack_digest(ack_wire, offset)
            delta_in, offset = unpack_delta(ack_wire, offset)
            peer_members, _ = unpack_members(ack_wire, offset)
            # The PUSH delta is computed *before* the ACK merges: if
            # the ACK brings home this node's own tombstone, the merge
            # refutes it (incarnation bump + epoch restamp), and the
            # restamped entries must not ride a members-free PUSH to a
            # peer that still believes us dead - its eviction gate
            # would drop them while its caps advanced past them,
            # losing them for good.  They go out on the *next* round,
            # whose SYN carries the refutation ahead of them.
            delta_out = self.view.delta_since(peer_digest)
            # Liveness merges *before* inventory: a tombstone on the
            # ACK must evict ahead of the stale entries it shadows, and
            # a rejoin must lift the eviction gate ahead of the
            # returning node's fresh entries - inventory-first would
            # drop those entries while the caps advanced past them.
            # (The serve path already orders it this way: members
            # merge before the delta is computed.)
            self.membership.merge(peer_members)
            self.view.merge_delta(delta_in)
        push = (
            _GOSSIP_PUSH
            + _SENDER_LEN.pack(len(sender))
            + sender
            + span.context.pack()
            + pack_delta(delta_out)
        )
        push_wire, push_seq = channel.send(self, push)
        with self._m_transit.time(peer=peer_name):
            channel.transit()
        with channel.arrival(self, push_seq):
            peer._absorb_gossip_push(push_wire)
        with self._lock:
            self.gossip_rounds += 1
        bytes_shipped = len(wire) + len(ack_wire) + len(push_wire)
        self._m_gossip_rounds.inc(peer=peer_name, role="caller")
        self._m_gossip_bytes.inc(bytes_shipped, peer=peer_name)
        self._m_gossip_entries.inc(len(delta_in), direction="in")
        self._m_gossip_entries.inc(len(delta_out), direction="out")
        span.set(
            bytes=bytes_shipped,
            entries_in=len(delta_in),
            entries_out=len(delta_out),
        ).finish()
        return GossipTraffic(
            peer=peer_name,
            bytes_shipped=bytes_shipped,
            entries_received=len(delta_in),
            entries_sent=len(delta_out),
        )

    def _serve_gossip_syn(self, wire: bytes) -> Tuple[bytes, int]:
        """Peer side of a gossip SYN: answer with digest + delta.

        Runs inside the SYN's delivery window on the gossiping thread;
        sends (and sequences) the ACK on the way out.
        """
        if wire[:1] != _GOSSIP_SYN:
            raise NetworkError(f"{self.name}: bad gossip syn tag {wire[:1]!r}")
        (sender_len,) = _SENDER_LEN.unpack_from(wire, 1)
        offset = 1 + _SENDER_LEN.size
        sender = wire[offset : offset + sender_len].decode("utf-8")
        ctx, offset = SpanContext.unpack(wire, offset + sender_len)
        digest, offset = unpack_digest(wire, offset)
        caller_members, _ = unpack_members(wire, offset)
        self._refresh_self()
        # Serving a round is as alive as initiating one: beat, join the
        # caller's liveness map, and ship the merged map back on the ACK.
        self.membership.beat()
        self.membership.merge(caller_members)
        span = self.obs.tracer.start("gossip.serve", parent=ctx, peer=sender)
        delta = self.view.delta_since(digest)
        span.set(entries_out=len(delta)).finish()
        ack = (
            _GOSSIP_ACK
            + span.context.pack()
            + pack_digest(self.view.digest())
            + pack_delta(delta)
            + pack_members(self.membership.members())
        )
        with self._lock:
            self.gossip_rounds += 1
        self._m_gossip_rounds.inc(peer=sender, role="server")
        return self._send_back(sender, ack)

    def _absorb_gossip_push(self, wire: bytes) -> int:
        """Peer side of the closing PUSH: merge the caller's delta."""
        if wire[:1] != _GOSSIP_PUSH:
            raise NetworkError(f"{self.name}: bad gossip push tag {wire[:1]!r}")
        (sender_len,) = _SENDER_LEN.unpack_from(wire, 1)
        offset = 1 + _SENDER_LEN.size
        sender = wire[offset : offset + sender_len].decode("utf-8")
        ctx, offset = SpanContext.unpack(wire, offset + sender_len)
        delta, _ = unpack_delta(wire, offset)
        with self.obs.tracer.start(
            "gossip.absorb", parent=ctx, peer=sender
        ) as span:
            applied = self.view.merge_delta(delta)
            span.set(applied=applied)
        return applied

    def gossip_sweep(self) -> List[GossipTraffic]:
        """One failure-detector round: gossip with every live peer.

        A peer whose handshake dies at the transport (closed channel, a
        crashed endpoint) is recorded as *suspected* at its believed
        heartbeat; a live-but-slow peer refutes that on any later sweep
        simply by having beaten past it.  The sweep then ages the
        detector one tick - a peer silent for ``suspect_after`` sweeps
        is suspected even without a failed send, and unrefuted
        suspicion hardens into a tombstone after ``confirm_after``
        more, firing :meth:`_on_peer_dead`.  Returns the traffic of the
        rounds that succeeded.
        """
        results: List[GossipTraffic] = []
        for peer_name in sorted(self.peers):
            if self.membership.is_dead(peer_name):
                continue
            try:
                results.append(self.gossip_with(peer_name))
            except NetworkError:
                self.membership.suspect(peer_name)
        self.membership.tick()
        return results

    def rejoin(self, survivor: "FixpointNode") -> GossipTraffic:
        """The rejoin handshake: dial a survivor, run two full rounds.

        Covers both ways back from a tombstone.  A node *restarted*
        after the cluster buried it (built with ``incarnation`` = old
        + 1) already outranks the tombstone: round one delivers the
        assertion, the survivor's ``on_rejoin`` readmits it, and the
        same round's ACK delta re-seeds this empty view from the
        survivor's full state while the PUSH carries this node's
        fresh-epoch holdings back.  A *falsely-accused* node (still
        running, same incarnation as its tombstone) instead learns of
        its own death from round one's ACK, refutes it on the spot
        (incarnation bump + epoch restamp via ``on_refute``), and round
        two spreads the refutation and the restamped holdings.  The
        dial itself replaces any closed channel left over from the
        partition; epidemic gossip carries the readmission to every
        other survivor from there.  Returns the final round's traffic.
        """
        before = self.membership.incarnation(self.name)
        self.connect(survivor)  # dials (and runs round one) if needed
        traffic = self.gossip_with(survivor.name)
        if self.membership.incarnation(self.name) != before:
            # The refutation fired mid-handshake; one more round
            # carries it - and the restamped holdings - to the
            # survivor (idempotent if the previous round already did).
            traffic = self.gossip_with(survivor.name)
        return traffic

    # ------------------------------------------------------------------
    # Delegation

    def delegate_async(self, peer_name: str, encode: Handle) -> Delegation:
        """Dispatch ``encode`` to a peer; returns a :class:`Delegation`.

        Ships only data the peer is not known to hold - the view keeps
        repeated delegations cheap in both directions (the reply is
        filtered symmetrically by the server; see :meth:`_serve`).  The
        view advance for shipped data is *optimistic*: recorded at
        dispatch so overlapping delegations do not re-ship the same
        bytes, and rolled back (:meth:`ObjectView.forget`) if the
        delegation fails before the peer confirms the result.

        ``outstanding[peer]`` is raised before this method returns and
        lowered when the reply is absorbed, so quotes taken while the
        work is in flight see the load.
        """
        return self._dispatch(peer_name, encode, None)

    def _dispatch(
        self, peer_name: str, encode: Handle, fp: Optional[Footprint]
    ) -> Delegation:
        """Build, send, and hand off one request frame.

        ``fp`` lets callers that already computed the footprint for a
        placement quote (:meth:`scatter`, :meth:`eval_many`) skip the
        second walk.  The optimistic ``view.learn`` for shipped data is
        safe against concurrent delegations because the channel is
        wire-serialized: a later request's bundle is never parsed by
        the peer before this one's has landed in its repository.
        """
        channel = self._ensure_channel(peer_name)
        peer = self._peer(peer_name)
        future = Delegation(peer_name, encode)
        span = self.obs.tracer.start("delegate.dispatch", peer=peer_name)
        with self._lock:
            if fp is None:
                fp = transitive_footprint(self.repo, encode)
            to_ship: List[Handle] = []
            for handle in self.repo.handles():
                key = handle.content_key()
                if key in fp.data and not self.view.knows(key, peer_name):
                    to_ship.append(handle)
            sender = self.name.encode("utf-8")
            request = (
                _SENDER_LEN.pack(len(sender))
                + sender
                + span.context.pack()
                + encode.pack()
                + encode_bundle(self.repo, to_ship)
            )
            wire, request_seq = channel.send(self, request)
            self.delegations_sent += 1
            self._m_sent.inc(peer=peer_name)
            shipped: List[bytes] = []
            for handle in to_ship:
                key = handle.content_key()
                self.view.learn(key, peer_name, handle.byte_size())
                shipped.append(key)
            self.outstanding[peer_name] = (
                self.outstanding.get(peer_name, 0) + 1
            )

            # One-shot settle closure: *every* way this delegation can
            # end - reply absorbed, transport death, spawn failure, a
            # caller-side timeout/cancel - funnels through it, and only
            # the first caller wins.  It owns the dispatch's two side
            # effects (the optimistic view advance and the load count),
            # so no outcome can leak them and no race can undo them
            # twice (the PR 8 satellite-a leak: a timed-out ``result()``
            # returned without either).
            state = {"settled": False}

            def settle(rollback: bool) -> bool:
                with self._lock:
                    if state["settled"]:
                        return False
                    state["settled"] = True
                    self.outstanding[peer_name] -= 1
                    if rollback:
                        for key in shipped:
                            self.view.forget(key, peer_name)
                        if shipped:
                            self._m_rollbacks.inc(peer=peer_name)
                return True

            future._settler = settle
            # Spawn *inside* the dispatch lock: the serve task's queue
            # position must match its wire sequence number, or a
            # bounded peer pool can pick up frame k+1 first and wedge a
            # worker in the delivery window waiting for frame k that is
            # queued behind it.
            try:
                peer.runtime.spawn(
                    lambda: self._finish_delegation(
                        future, channel, peer, peer_name, encode,
                        wire, request_seq,
                    )
                )
            except BaseException as exc:
                # No serving thread will ever run: undo every side
                # effect of the dispatch (belief, load, and the frame's
                # slot in the delivery order - an unreleased sequence
                # number would wedge the direction forever).
                settle(True)
                channel.arrival(self, request_seq).release()
                span.set(bytes=len(wire), handles_shipped=len(shipped))
                span.finish(status="error", error=str(exc))
                raise
            span.set(bytes=len(wire), handles_shipped=len(shipped))
            span.finish()
        return future

    def delegate(self, peer_name: str, encode: Handle) -> Handle:
        """Evaluate ``encode`` on a peer; returns the (absorbed) result.

        Blocking convenience over :meth:`delegate_async` - the load
        signal stays live for the whole round trip either way.
        """
        return self.delegate_async(peer_name, encode).result()

    def _finish_delegation(
        self,
        future: Delegation,
        channel: Channel,
        peer: "FixpointNode",
        peer_name: str,
        encode: Handle,
        wire: bytes,
        request_seq: int,
    ) -> None:
        """Serving-thread half of one delegation: deliver, serve, absorb.

        Runs on the *peer's* pool (or fallback serve thread) so the
        dispatcher never blocks.  Both outcomes resolve through the
        delegation's one-shot settle closure: a failure - transport or
        remote evaluation - settles with rollback (forgetting the
        optimistic view advance for the shipped keys) and fails the
        future; success settles without.  If the caller's
        timeout/cancel settled first, the closure refuses and this
        thread drops its outcome on the floor - the caller already owns
        the bookkeeping.  ``outstanding`` drops inside the settle,
        *before* the future resolves, so a waiter that quotes the
        moment ``result()`` returns never sees phantom load from its
        own finished delegation.
        """
        settle = future._settler
        assert settle is not None  # armed by _dispatch before spawn
        request_arrival = channel.arrival(self, request_seq)
        try:
            with self._m_transit.time(peer=peer_name):
                channel.transit()
            wire_back, reply_seq = peer._serve(wire, arrival=request_arrival)
            with self._m_transit.time(peer=peer_name):
                channel.transit()
            with channel.arrival(peer, reply_seq):
                result = self._absorb_reply(peer_name, encode, wire_back)
        except BaseException as exc:  # noqa: BLE001 - resolves the future
            if not isinstance(exc, FixError):
                exc = NetworkError(
                    f"{self.name}: delegation to {peer_name!r} died in "
                    f"transit: {exc}"
                )
            if settle(True):
                future._fail(exc)
        else:
            if settle(False):
                future._complete(result)
        finally:
            # A serve that died before entering its delivery window must
            # not wedge the direction; release is idempotent.
            request_arrival.release()

    def _absorb_reply(
        self, peer_name: str, encode: Handle, wire_back: bytes
    ) -> Handle:
        """Parse a response frame into the local repository and views.

        The frame's leading span context is the peer's *serve* span, so
        the absorb span minted here joins the delegation's trace as its
        child - the caller-side tail of the stitched chain.  The error
        frame carries it too: a failed delegation still traces end to
        end.
        """
        ctx, offset = SpanContext.unpack(wire_back, 0)
        status, body = wire_back[offset : offset + 1], wire_back[offset + 1 :]
        span = self.obs.tracer.start(
            "delegate.absorb", parent=ctx, peer=peer_name
        )
        if status == _STATUS_ERR:
            error_type, message = _unpack_error(body)
            span.finish(status="error", error=f"{error_type}: {message}")
            raise RemoteEvalError(peer_name, error_type, message)
        if status != _STATUS_OK:
            span.finish(status="error", error=f"bad status byte {status!r}")
            raise NetworkError(
                f"{self.name}: bad response status byte {status!r}"
            )
        result = Handle.unpack(body[:HANDLE_BYTES])
        absorbed = decode_bundle(self.repo, body[HANDLE_BYTES:])
        for handle in absorbed:
            self.view.learn(handle.content_key(), peer_name, handle.byte_size())
        self.view.learn(result.content_key(), peer_name, result.byte_size())
        self.repo.put_result(encode, result)
        span.set(bytes=len(wire_back), handles_absorbed=len(absorbed))
        span.finish()
        return result

    def _serve(
        self, wire: bytes, arrival: Optional[_Arrival] = None
    ) -> Tuple[bytes, int]:
        """Peer side: parse, evaluate, reply with the *filtered* bundle.

        The request names its sender, so the reply ships only result
        data the sender is not believed to hold - in particular, never
        data the sender itself just shipped in this request.  Runs on
        this node's worker pool; a failure after the sender is known
        (missing data, codelet error) becomes an error-response frame,
        never an exception through the serving thread.

        ``arrival`` is the request frame's delivery window: the bundle
        is decoded inside it, in wire order.  The reply is built *and
        sequenced* under this node's lock, so the reply filter and the
        reply's position on the wire agree - a reply that omits data
        "the sender already received" is always ordered after the reply
        that shipped it.  Returns the sent reply (wire copy, sequence).
        """
        with self._lock:
            self.delegations_served += 1
        sender: Optional[str] = None
        span = None
        try:
            if arrival is not None:
                with arrival:
                    sender, encode, ctx = self._absorb_request(wire)
            else:
                sender, encode, ctx = self._absorb_request(wire)
            # The serve span parents to the caller's dispatch span (the
            # context the request frame carried): this is the hop where
            # the trace crosses nodes.
            span = self.obs.tracer.start(
                "delegate.serve", parent=ctx, peer=sender
            )
            self._m_served.inc(peer=sender)
            result = self.runtime.eval(encode)
            # Reply with the result and the data needed to read it,
            # filtered through the view of the caller ("ship only what
            # the peer is not known to hold" - the same rule the
            # dispatcher applies).
            with self._lock:
                result_fp = transitive_footprint(self.repo, result)
                to_ship = [
                    handle
                    for handle in self.repo.handles()
                    if handle.content_key() in result_fp.data
                    and not self.view.knows(handle.content_key(), sender)
                ]
                for handle in to_ship:
                    self.view.learn(
                        handle.content_key(), sender, handle.byte_size()
                    )
                self.view.learn(
                    result.content_key(), sender, result.byte_size()
                )
                span.set(handles_shipped=len(to_ship)).finish()
                payload = (
                    span.context.pack()
                    + _STATUS_OK
                    + result.pack()
                    + encode_bundle(self.repo, to_ship)
                )
                return self._send_back(sender, payload)
        except BaseException as exc:  # noqa: BLE001 - crosses the wire
            if sender is None:
                raise  # cannot even address a reply: a transport failure
            # The error frame still carries the serve span (minted right
            # after the request parsed, so it exists on every path that
            # can address a reply): the caller's absorb span joins the
            # trace even for failures.
            if span is not None:
                span.finish(
                    status="error", error=f"{type(exc).__name__}: {exc}"
                )
            reply_ctx = span.context if span is not None else NULL_CONTEXT
            return self._send_back(
                sender, reply_ctx.pack() + _STATUS_ERR + _pack_error(exc)
            )

    def _absorb_request(
        self, wire: bytes
    ) -> Tuple[str, Handle, SpanContext]:
        """Decode one request frame into the repository (wire order)."""
        (sender_len,) = _SENDER_LEN.unpack_from(wire, 0)
        offset = _SENDER_LEN.size
        sender = wire[offset : offset + sender_len].decode("utf-8")
        offset += sender_len
        ctx, offset = SpanContext.unpack(wire, offset)
        encode = Handle.unpack(wire[offset : offset + HANDLE_BYTES])
        received = decode_bundle(self.repo, wire[offset + HANDLE_BYTES :])
        # The sender evidently holds everything it shipped: the server's
        # view of the caller advances on receive, mirroring the caller's
        # advance on send.
        for handle in received:
            self.view.learn(handle.content_key(), sender, handle.byte_size())
        return sender, encode, ctx

    def _send_back(self, sender: str, payload: bytes) -> Tuple[bytes, int]:
        channel = self.peers.get(sender)
        if channel is None:
            raise NetworkError(f"{self.name}: no channel back to {sender!r}")
        return channel.send(self, payload)

    # ------------------------------------------------------------------
    # Placement: the shared cost model decides where to run

    def _candidates(self) -> List[str]:
        """Every node placement may price: connected peers plus any
        gossip-learned holder the directory can actually dial.

        Without a directory a name learned via gossip is knowledge with
        no endpoint, so only live channels qualify - placement must
        never pick a machine delegation cannot reach.  Confirmed-dead
        peers never qualify: eviction pops their channel and purges
        their view beliefs, and the filter here catches the window
        between a tombstone landing and the eviction callback running.
        """
        names = {
            peer
            for peer in self.peers
            if not self.membership.is_dead(peer)
        }
        if self.directory is not None:
            for location in self.view.known_locations():
                if (
                    location != self.name
                    and location not in names
                    and not self.membership.is_dead(location)
                    and self.directory.get(location) is not None
                ):
                    names.add(location)
        return sorted(names)

    def _quote_peers(
        self,
        fp: Footprint,
        local: Dict[bytes, int],
        candidates: Optional[List[str]] = None,
    ) -> Quote:
        """Price every candidate for ``fp`` through the shared cost model.

        Sizes are authoritative for locally-held data and believed (from
        the inventory gossip) otherwise; a key whose size nobody ever
        reported prices as zero, which charges every candidate equally
        and so never skews the choice.

        Candidates default to :meth:`_candidates` - connected peers plus
        dialable gossip-learned holders.  They are first filtered for
        *serviceability*: a footprint key this node cannot ship (not
        held locally) and the peer is not believed to hold would strand
        the evaluation there.  Strandedness is counted in missing *keys*
        (each unshippable key weighs 1), never in bytes - a
        size-unreported key prices every peer at zero bytes and would
        let a dead-end peer slip through the filter.  Peers with
        stranded keys only stay candidates when every peer has them
        (the view may be stale - the peer might hold the datum anyway,
        and delegating is the only way to find out; staleness must
        never fail a delegation that could have worked).

        Confirmed-dead peers are different: they are excluded inside
        :func:`repro.dist.costmodel.choose` itself (the repo's one
        placement policy), because a tombstone is a *liveness* fact,
        not a staleness guess - delegating there cannot succeed.
        """
        if candidates is None:
            candidates = self._candidates()
        dead = self.membership.dead_nodes()
        with self._m_quote.time():
            needs = [
                (key, local.get(key, self.view.believed_size(key)))
                for key in fp.data
            ]
            prices = self.view.price_moves(needs, candidates)
            unshippable = [
                (key, 1) for key, _ in needs if key not in local
            ]
            stranded = self.view.price_moves(unshippable, candidates)
            viable = [
                peer for peer in candidates if stranded[peer] == 0
            ] or list(candidates)
            return choose(
                viable,
                prices.__getitem__,
                lambda peer: self.outstanding.get(peer, 0),
                exclude=dead,
            )

    def quote_best(self, encode: Handle) -> Quote:
        """The cheapest remote quote for evaluating ``encode``.

        This is the executing-runtime twin of
        :meth:`repro.dist.scheduler.DataflowScheduler.place`: believed
        missing bytes first, in-flight delegation load on ties, then
        name.  A serviceable peer believed to hold *nothing* is still a
        candidate, it just prices at the full footprint.  Because
        ``outstanding`` stays raised for the whole flight of an async
        delegation, quotes taken mid-flight steer toward idle peers.
        Candidates include nodes this one has never connected to, when
        gossip named them and the directory can dial them.
        """
        candidates = self._candidates()
        if not candidates:
            raise NetworkError(f"{self.name}: no peers to delegate to")
        fp = transitive_footprint(self.repo, encode)
        return self._quote_peers(fp, self.runtime.holdings(), candidates)

    def delegate_best(self, encode: Handle) -> Handle:
        """Delegate to the peer the shared cost model prices cheapest."""
        return self.delegate(self.quote_best(encode).candidate, encode)

    def eval_anywhere(self, encode: Handle) -> Handle:
        """Evaluate locally when that is cheapest; otherwise delegate
        through the shared cost model (:meth:`delegate_best`).

        A complete local footprint prices at zero bytes moved, and no
        remote quote can be cheaper than zero - so "prefer local when
        cheapest" reduces to: run here when everything is resident,
        delegate to the cheapest peer otherwise.  (A node cannot *pull*
        data, so an incomplete local footprint is not a candidate.)
        """
        fp = transitive_footprint(self.repo, encode)
        local = self.runtime.holdings()
        if fp.data <= local.keys():
            return self.runtime.eval(encode)
        candidates = self._candidates()
        if not candidates:
            raise MissingObjectError(encode, self.name)
        return self.delegate(
            self._quote_peers(fp, local, candidates).candidate, encode
        )

    # ------------------------------------------------------------------
    # Fan-out: many delegations in flight at once

    def scatter(self, encodes: Sequence[Handle]) -> List[Delegation]:
        """Quote and dispatch every encode without waiting for replies.

        Each dispatch raises ``outstanding`` before the next quote runs,
        so equal-priced candidates spread round-robin across peers
        instead of piling onto the first name - the load tiebreak doing
        real work.  Returns the futures in input order.

        The local inventory is snapshotted once for the whole batch
        (replies absorbed mid-dispatch could only *add* holdings, and a
        conservative snapshot merely re-prices - staleness costs
        redundancy, never correctness); each footprint is computed once
        and shared between the quote and the dispatch.
        """
        candidates = self._candidates()
        if not candidates:
            raise NetworkError(f"{self.name}: no peers to delegate to")
        local = self.runtime.holdings()
        futures: List[Delegation] = []
        for encode in encodes:
            fp = transitive_footprint(self.repo, encode)
            quote = self._quote_peers(fp, local, candidates)
            futures.append(self._dispatch(quote.candidate, encode, fp))
        return futures

    def eval_many(self, encodes: Sequence[Handle]) -> List[Handle]:
        """Evaluate a batch, overlapping remote work with local work.

        Per-encode placement follows :meth:`eval_anywhere`: a complete
        local footprint runs here, anything else is dispatched
        asynchronously to the cheapest peer.  All remote dispatches
        happen *first*, so their wire time and peer-side evaluation
        overlap the local evaluations that follow; results return in
        input order.  The first failed delegation raises.

        As in :meth:`scatter`, the local inventory is snapshotted once:
        a reply absorbed mid-dispatch can only add holdings, so the
        snapshot at worst delegates work that just became local - a
        redundant transfer, never a wrong result.
        """
        remote: List[Tuple[int, Delegation]] = []
        local_work: List[Tuple[int, Handle]] = []
        results: Dict[int, Handle] = {}
        local = self.runtime.holdings()
        candidates = self._candidates()
        for index, encode in enumerate(encodes):
            fp = transitive_footprint(self.repo, encode)
            if fp.data <= local.keys():
                local_work.append((index, encode))
            elif not candidates:
                raise MissingObjectError(encode, self.name)
            else:
                quote = self._quote_peers(fp, local, candidates)
                remote.append(
                    (index, self._dispatch(quote.candidate, encode, fp))
                )
        for index, encode in local_work:
            results[index] = self.runtime.eval(encode)
        for index, future in remote:
            results[index] = future.result()
        return [results[index] for index in range(len(encodes))]

    def retry_elsewhere(self, failed: Delegation) -> Delegation:
        """Re-quote and re-dispatch a failed delegation on the survivors.

        The lost-work half of failure handling: the failure detector
        only *discovers* a death - work that was in flight toward the
        dead peer still failed with :class:`NetworkError`, and the
        caller holds a dead future.  This closes the loop.  The failed
        peer is reported suspected (first-hand transport evidence beats
        waiting out a silence timeout), its name is excluded from the
        fresh quote even before the tombstone lands, and the encode is
        re-priced across the remaining candidates through the same cost
        model as any first dispatch - re-delegation is not a special
        placement policy.

        The caller decides *when* to retry (the failed future must be
        settled; its rollback already freed the optimistic view advance,
        so the new quote prices shipping honestly).  Raises
        :class:`NetworkError` when no candidate survives.
        """
        if not failed.done:
            raise NetworkError(
                f"{self.name}: cannot retry a delegation to "
                f"{failed.peer!r} that is still in flight"
            )
        self.membership.suspect(failed.peer)
        candidates = [
            peer for peer in self._candidates() if peer != failed.peer
        ]
        if not candidates:
            raise NetworkError(
                f"{self.name}: no surviving peers to retry the "
                f"delegation that died on {failed.peer!r}"
            )
        fp = transitive_footprint(self.repo, failed.encode)
        quote = self._quote_peers(
            fp, self.runtime.holdings(), candidates
        )
        self._m_retries.inc(peer=failed.peer, target=quote.candidate)
        return self._dispatch(quote.candidate, failed.encode, fp)
