"""A real (executing) multi-node Fixpoint: delegation by shipped values.

The simulated engine (:mod:`repro.dist`) studies *performance*; this
module is the *functional* distributed runtime: several in-process
Fixpoint nodes connected by message channels, delegating evaluation by
sending Fix values in the packed wire format (paper section 4.2.1):

* on connect, nodes exchange inventories - content keys *and per-handle
  wire sizes* - into a passive :class:`~repro.dist.objectview.ObjectView`;
* ``delegate(encode)`` ships the Encode's minimum repository as one
  bundle (handles are self-describing - no scheduler round trip, no
  extra metadata), tagged with the sender's identity so the remote node
  can filter its reply through its view of the caller;
* results and their data are absorbed into the caller's repository, and
  both views advance - on send *and* on receive.

Placement (:meth:`FixpointNode.delegate_best` /
:meth:`FixpointNode.eval_anywhere`) resolves through the same
:mod:`repro.dist.costmodel` the simulated
:class:`~repro.dist.scheduler.DataflowScheduler` uses: peers are priced
by the believed missing *bytes* of the footprint (not handle counts),
genuine ties spread by in-flight delegation load, then break by name.
Local evaluation is preferred whenever it is cheapest (a complete local
footprint prices at zero, and no remote quote can beat zero).

Channels are in-memory here (the transport is pluggable), but every byte
crossing them really is serialized and reparsed - the wire format is
load-bearing, not decorative.

Request frame::

    [u16 sender length][sender utf-8][32-byte encode handle][bundle]

Response frame::

    [32-byte result handle][bundle]

The response bundle carries only the result data the server does *not*
believe the caller already holds - echoing back what the caller just
shipped would double the round trip for nothing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List

from ..core.errors import FixError, MissingObjectError
from ..core.handle import HANDLE_BYTES, Handle
from ..core.minrepo import Footprint, transitive_footprint
from ..core.serialize import decode_bundle, encode_bundle
from ..core.storage import Repository
from ..dist.costmodel import Quote, choose
from ..dist.objectview import ObjectView
from .runtime import Fixpoint

_SENDER_LEN = struct.Struct("<H")


class NetworkError(FixError):
    """Delegation failures (unknown peer, unresolvable dependencies)."""


@dataclass
class Channel:
    """A byte-counting in-memory link between two nodes."""

    a: "FixpointNode"
    b: "FixpointNode"
    bytes_ab: int = 0
    bytes_ba: int = 0

    def send(self, sender: "FixpointNode", payload: bytes) -> bytes:
        if sender is self.a:
            self.bytes_ab += len(payload)
        elif sender is self.b:
            self.bytes_ba += len(payload)
        else:
            raise NetworkError("sender is not an endpoint of this channel")
        return bytes(payload)  # the wire copy

    @property
    def total_bytes(self) -> int:
        return self.bytes_ab + self.bytes_ba


class FixpointNode:
    """One executing node: a Fixpoint runtime plus peer channels."""

    def __init__(self, name: str, workers: int = 0):
        self.name = name
        self.runtime = Fixpoint(workers=workers)
        self.peers: Dict[str, Channel] = {}
        #: What this node believes its peers hold (the passive view):
        #: object names are content keys, locations are peer names, and
        #: sizes come from the handles seen in inventory/wire traffic.
        self.view = ObjectView(name)
        #: In-flight delegations per peer - the load signal the cost
        #: model spreads equal-price candidates with.
        self.outstanding: Dict[str, int] = {}
        self.delegations_served = 0
        self.delegations_sent = 0

    @property
    def repo(self) -> Repository:
        return self.runtime.repo

    # ------------------------------------------------------------------
    # Topology

    def connect(self, other: "FixpointNode") -> Channel:
        """Link two nodes and exchange inventories (paper 4.2.2)."""
        if other.name in self.peers:
            return self.peers[other.name]
        channel = Channel(self, other)
        self.peers[other.name] = channel
        other.peers[self.name] = channel
        self.outstanding.setdefault(other.name, 0)
        other.outstanding.setdefault(self.name, 0)
        for handle in other.repo.handles():
            self.view.learn(handle.content_key(), other.name, handle.byte_size())
        for handle in self.repo.handles():
            other.view.learn(handle.content_key(), self.name, handle.byte_size())
        return channel

    def _peer(self, name: str) -> "FixpointNode":
        channel = self.peers.get(name)
        if channel is None:
            raise NetworkError(f"{self.name}: no peer named {name!r}")
        return channel.b if channel.a is self else channel.a

    # ------------------------------------------------------------------
    # Delegation

    def delegate(self, peer_name: str, encode: Handle) -> Handle:
        """Evaluate ``encode`` on a peer; returns the (absorbed) result.

        Ships only data the peer is not known to hold - the view keeps
        repeated delegations cheap in both directions (the reply is
        filtered symmetrically by the server; see :meth:`_serve`).
        """
        channel = self.peers.get(peer_name)
        if channel is None:
            raise NetworkError(f"{self.name}: no peer named {peer_name!r}")
        peer = self._peer(peer_name)
        fp = transitive_footprint(self.repo, encode)
        to_ship: List[Handle] = []
        for handle in self.repo.handles():
            key = handle.content_key()
            if key in fp.data and not self.view.knows(key, peer_name):
                to_ship.append(handle)
        sender = self.name.encode("utf-8")
        request = (
            _SENDER_LEN.pack(len(sender))
            + sender
            + encode.pack()
            + encode_bundle(self.repo, to_ship)
        )
        wire = channel.send(self, request)
        self.delegations_sent += 1
        # The view advances passively on every send (paper 4.2.2).
        for handle in to_ship:
            self.view.learn(handle.content_key(), peer_name, handle.byte_size())
        self.outstanding[peer_name] = self.outstanding.get(peer_name, 0) + 1
        try:
            response = peer._serve(wire)
        finally:
            self.outstanding[peer_name] -= 1
        wire_back = channel.send(peer, response)
        result = Handle.unpack(wire_back[:HANDLE_BYTES])
        absorbed = decode_bundle(self.repo, wire_back[HANDLE_BYTES:])
        for handle in absorbed:
            self.view.learn(handle.content_key(), peer_name, handle.byte_size())
        self.view.learn(result.content_key(), peer_name, result.byte_size())
        self.repo.put_result(encode, result)
        return result

    def _serve(self, wire: bytes) -> bytes:
        """Peer side: parse, evaluate, reply with the *filtered* bundle.

        The request names its sender, so the reply ships only result
        data the sender is not believed to hold - in particular, never
        data the sender itself just shipped in this request.
        """
        (sender_len,) = _SENDER_LEN.unpack_from(wire, 0)
        offset = _SENDER_LEN.size
        sender = wire[offset : offset + sender_len].decode("utf-8")
        offset += sender_len
        encode = Handle.unpack(wire[offset : offset + HANDLE_BYTES])
        received = decode_bundle(self.repo, wire[offset + HANDLE_BYTES :])
        self.delegations_served += 1
        # The sender evidently holds everything it shipped: the server's
        # view of the caller advances on receive, mirroring the caller's
        # advance on send.
        for handle in received:
            self.view.learn(handle.content_key(), sender, handle.byte_size())
        result = self.runtime.eval(encode)
        # Reply with the result and the data needed to read it, filtered
        # through the view of the caller ("ship only what the peer is
        # not known to hold" - the same rule delegate applies).
        result_fp = transitive_footprint(self.repo, result)
        to_ship = [
            handle
            for handle in self.repo.handles()
            if handle.content_key() in result_fp.data
            and not self.view.knows(handle.content_key(), sender)
        ]
        for handle in to_ship:
            self.view.learn(handle.content_key(), sender, handle.byte_size())
        self.view.learn(result.content_key(), sender, result.byte_size())
        return result.pack() + encode_bundle(self.repo, to_ship)

    # ------------------------------------------------------------------
    # Placement: the shared cost model decides where to run

    def _quote_peers(self, fp: Footprint, local: Dict[bytes, int]) -> Quote:
        """Price every peer for ``fp`` through the shared cost model.

        Sizes are authoritative for locally-held data and believed (from
        the inventory exchange) otherwise; a key whose size nobody ever
        reported prices as zero, which charges every candidate equally
        and so never skews the choice.

        Candidates are first filtered for *serviceability*: a footprint
        key this node cannot ship (not held locally) and the peer is not
        believed to hold would strand the evaluation there, so peers
        with such keys only stay candidates when every peer has them
        (the view may be stale - the peer might hold the datum anyway,
        and delegating is the only way to find out; staleness must never
        fail a delegation that could have worked).
        """
        needs = [
            (key, local.get(key, self.view.believed_size(key)))
            for key in fp.data
        ]
        prices = self.view.price_moves(needs, self.peers)
        unshippable = [
            (key, size) for key, size in needs if key not in local
        ]
        stranded = self.view.price_moves(unshippable, self.peers)
        candidates = [
            peer for peer in self.peers if stranded[peer] == 0
        ] or list(self.peers)
        return choose(
            candidates,
            prices.__getitem__,
            lambda peer: self.outstanding.get(peer, 0),
        )

    def quote_best(self, encode: Handle) -> Quote:
        """The cheapest peer quote for evaluating ``encode`` remotely.

        This is the executing-runtime twin of
        :meth:`repro.dist.scheduler.DataflowScheduler.place`: believed
        missing bytes first, in-flight delegation load on ties, then
        name.  A serviceable peer believed to hold *nothing* is still a
        candidate, it just prices at the full footprint.
        """
        if not self.peers:
            raise NetworkError(f"{self.name}: no peers to delegate to")
        fp = transitive_footprint(self.repo, encode)
        return self._quote_peers(fp, self.runtime.holdings())

    def delegate_best(self, encode: Handle) -> Handle:
        """Delegate to the peer the shared cost model prices cheapest."""
        return self.delegate(self.quote_best(encode).candidate, encode)

    def eval_anywhere(self, encode: Handle) -> Handle:
        """Evaluate locally when that is cheapest; otherwise delegate
        through the shared cost model (:meth:`delegate_best`).

        A complete local footprint prices at zero bytes moved, and no
        remote quote can be cheaper than zero - so "prefer local when
        cheapest" reduces to: run here when everything is resident,
        delegate to the cheapest peer otherwise.  (A node cannot *pull*
        data, so an incomplete local footprint is not a candidate.)
        """
        fp = transitive_footprint(self.repo, encode)
        local = self.runtime.holdings()
        if fp.data <= local.keys():
            return self.runtime.eval(encode)
        if not self.peers:
            raise MissingObjectError(encode, self.name)
        return self.delegate(self._quote_peers(fp, local).candidate, encode)
