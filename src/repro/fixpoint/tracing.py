"""Invocation tracing for the Fixpoint runtime.

Records what the runtime actually did - invocations, per-invocation wall
time, bytes mapped and created - without ever exposing a clock to user
codelets (determinism is preserved: traces are runtime-side only).

The trace feeds three consumers: tests (asserting invocation counts match
the paper's Table 2 formulas), the fig. 9 cost model (converting measured
operation counts into simulated latencies), and EXPERIMENTS.md.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class InvocationRecord:
    """One codelet invocation as observed by the runtime."""

    function: str
    wall_seconds: float
    bytes_mapped: int
    worker: str


@dataclass
class Trace:
    """Aggregated runtime activity; thread-safe."""

    records: List[InvocationRecord] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, record: InvocationRecord) -> None:
        with self._lock:
            self.records.append(record)

    def invocation_count(self, function: Optional[str] = None) -> int:
        with self._lock:
            if function is None:
                return len(self.records)
            return sum(1 for r in self.records if r.function == function)

    def total_bytes_mapped(self) -> int:
        with self._lock:
            return sum(r.bytes_mapped for r in self.records)

    def total_wall_seconds(self) -> float:
        with self._lock:
            return sum(r.wall_seconds for r in self.records)

    def by_function(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for r in self.records:
                out[r.function] = out.get(r.function, 0) + 1
            return out

    def clear(self) -> None:
        with self._lock:
            self.records.clear()


class Stopwatch:
    """Context manager measuring wall time for one invocation."""

    __slots__ = ("elapsed", "_start")

    def __init__(self):
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
