"""Invocation tracing for the Fixpoint runtime.

Records what the runtime actually did - invocations, per-invocation wall
time, bytes mapped and created - without ever exposing a clock to user
codelets (determinism is preserved: traces are runtime-side only).

The trace feeds three consumers: tests (asserting invocation counts match
the paper's Table 2 formulas), the fig. 9 cost model (converting measured
operation counts into simulated latencies), and EXPERIMENTS.md.

Since the observability pass, :class:`Trace` is also a facade over
:mod:`repro.obs`: every :meth:`record` lands in a
:class:`~repro.obs.metrics.MetricsRegistry` as three families -

* ``fixpoint_invocations_total{function,worker}`` (counter),
* ``fixpoint_invocation_bytes_total{function}`` (counter),
* ``fixpoint_invocation_wall_seconds{function}`` (histogram)

- so a node's invocations show up in the same cluster-wide export as its
wire and scheduling metrics.  By default each Trace owns a private
registry; a runtime constructed with an :class:`~repro.obs.Obs` shares
that obs' registry instead (``Trace(registry=obs.registry)``).  The
in-memory :class:`InvocationRecord` list remains the queryable ground
truth for the Table-2 count assertions - it is exact, ordered, and
independent of which registry (real or null) backs the metrics.
:meth:`clear` resets only the three families this trace emits, never a
shared registry wholesale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.sync import TrackedLock
from ..obs.metrics import MetricsRegistry


@dataclass
class InvocationRecord:
    """One codelet invocation as observed by the runtime."""

    function: str
    wall_seconds: float
    bytes_mapped: int
    worker: str


class Trace:
    """Aggregated runtime activity; thread-safe.

    ``registry=None`` (the default) gives the trace a private
    :class:`~repro.obs.metrics.MetricsRegistry`; passing one in makes
    the trace emit into it - the path :class:`~repro.fixpoint.Fixpoint`
    takes when constructed with an obs facade.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = (
            registry if registry is not None
            else MetricsRegistry(name="fixpoint.trace")
        )
        self.records: List[InvocationRecord] = []
        self._lock = TrackedLock("Trace._lock")
        self._invocations = self.registry.counter(
            "fixpoint_invocations_total",
            "Codelet invocations by function and worker",
        )
        self._bytes = self.registry.counter(
            "fixpoint_invocation_bytes_total",
            "Bytes mapped into codelets, by function",
        )
        self._wall = self.registry.histogram(
            "fixpoint_invocation_wall_seconds",
            "Per-invocation wall time, by function",
        )

    def record(self, record: InvocationRecord) -> None:
        with self._lock:
            self.records.append(record)
        self._invocations.inc(
            function=record.function, worker=record.worker
        )
        if record.bytes_mapped:
            self._bytes.inc(record.bytes_mapped, function=record.function)
        self._wall.observe(record.wall_seconds, function=record.function)

    def invocation_count(self, function: Optional[str] = None) -> int:
        with self._lock:
            if function is None:
                return len(self.records)
            return sum(1 for r in self.records if r.function == function)

    def total_bytes_mapped(self) -> int:
        with self._lock:
            return sum(r.bytes_mapped for r in self.records)

    def total_wall_seconds(self) -> float:
        with self._lock:
            return sum(r.wall_seconds for r in self.records)

    def by_function(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for r in self.records:
                out[r.function] = out.get(r.function, 0) + 1
            return out

    def clear(self) -> None:
        with self._lock:
            self.records.clear()
        # Scoped: only the families this trace emits - a shared
        # registry's other instruments are not this trace's to wipe.
        self._invocations.reset()
        self._bytes.reset()
        self._wall.reset()


class Stopwatch:
    """Context manager measuring wall time for one invocation."""

    __slots__ = ("elapsed", "_start")

    def __init__(self):
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
