"""``repro.fixpoint`` - the executable in-process Fixpoint runtime.

A multi-worker evaluator for Fix programs (paper section 4.2): shared
runtime storage, ahead-of-time linked codelets, a shared job queue, and
direct-jump invocation with no processes or containers on the hot path.
"""

from .billing import Bill, InvocationMeter, bill_effort, bill_results, job_bill
from .jobs import Job, JobQueue
from .net import (
    Channel,
    Delegation,
    FixpointNode,
    NetworkError,
    RemoteEvalError,
)
from .runtime import Fixpoint
from .tracing import InvocationRecord, Stopwatch, Trace

__all__ = [
    "Bill",
    "Channel",
    "Delegation",
    "Fixpoint",
    "FixpointNode",
    "InvocationMeter",
    "InvocationRecord",
    "Job",
    "JobQueue",
    "NetworkError",
    "RemoteEvalError",
    "Stopwatch",
    "Trace",
    "bill_effort",
    "bill_results",
    "job_bill",
]
