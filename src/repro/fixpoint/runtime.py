"""The Fixpoint runtime: an executable, multi-worker Fix evaluator.

This is the in-process analog of the paper's section 4.2.1 architecture:

* a **runtime storage** (one :class:`~repro.core.storage.Repository`)
  shared by all workers, mapping Blobs/Trees to data and Encodes to
  results;
* a **program registry / ELF linker** (:class:`~repro.codelets.Linker`)
  mapping codelet handles to linked entrypoints;
* a **thread pool of workers** sharing a queue of pending jobs; each
  worker embeds a Scheduler (here: the evaluator itself) deciding what
  I/O and computation an object needs under Fix semantics;
* invocation happens by *jumping straight to the codelet's entrypoint* -
  no processes or containers are spawned, which is what makes the
  per-invocation overhead microscopic (fig. 7a).

``workers=0`` gives a purely sequential runtime (used for the fig. 9
experiment, which the paper runs with a single worker thread, and for the
microbenchmarks).  With ``workers=N`` the runtime evaluates independent
Encode arguments in parallel: a thread that would block on a dependency
instead *helps* by executing queued jobs, so any worker count is
deadlock-free.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence

from ..analysis.sync import TrackedLock, note_blocking
from ..codelets.linker import Linker
from ..codelets.stdlib import compile_stdlib
from ..codelets.toolchain import Toolchain
from ..core.api import FixAPI
from ..core.errors import FixError, NotAFunctionError
from ..core.eval import EvalStats, Evaluator
from ..core.handle import Handle
from ..core.limits import DEFAULT_LIMITS, ResourceLimits
from ..core.storage import Repository
from ..core.thunks import Invocation, make_application
from .jobs import JobQueue
from .tracing import InvocationRecord, Stopwatch, Trace


class _WorkerEvaluator(Evaluator):
    """Evaluator wired to a runtime: applies codelets, may fork to the pool."""

    def __init__(self, runtime: "Fixpoint"):
        super().__init__(
            runtime.repo,
            apply_fn=runtime._apply,
            memoize=runtime.memoize,
            thunk_cache=runtime._thunk_cache,
        )
        self.runtime = runtime

    def resolve_invocation(self, definition: Handle, depth: int = 0) -> Handle:
        runtime = self.runtime
        if runtime.pool is not None and depth < 64:
            tree = self.repo.get_tree(definition)
            pending = [
                child
                for child in tree
                if child.is_encode and self.repo.get_result(child) is None
            ]
            if len(pending) > 1:
                runtime._fork_join(pending)
        return super().resolve_invocation(definition, depth)


class Fixpoint:
    """A single-node Fixpoint instance.

    Use as a context manager (or call :meth:`close`) when ``workers > 0``.
    """

    def __init__(
        self,
        repo: Optional[Repository] = None,
        workers: int = 0,
        memoize: bool = True,
        with_stdlib: bool = True,
        obs=None,
    ):
        self.repo = repo if repo is not None else Repository()
        self.toolchain = Toolchain(self.repo)
        self.linker = Linker(self.repo)
        self.memoize = memoize
        #: With an :class:`~repro.obs.Obs` the invocation trace emits
        #: into that obs' registry, so a node's codelet activity lands
        #: in the same export as its wire and scheduling metrics.
        self.obs = obs
        self.trace = Trace(
            registry=obs.registry if obs is not None else None
        )
        self.stdlib: Dict[str, Handle] = (
            compile_stdlib(self.repo) if with_stdlib else {}
        )
        self._thunk_cache: Dict[Handle, Handle] = {}
        self._stats_lock = TrackedLock("Fixpoint._stats_lock")
        self._stats = EvalStats()
        self.pool: Optional[JobQueue] = None
        self._threads: list[threading.Thread] = []
        if workers > 0:
            self.pool = JobQueue()
            for i in range(workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"fixpoint-{i}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
            note_blocking("Thread.join")
            for thread in self._threads:
                thread.join(timeout=2.0)
            self._threads.clear()
            self.pool = None

    def __enter__(self) -> "Fixpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Compilation / program setup

    def compile(self, source: str, name: str = "codelet") -> Handle:
        """Run the trusted toolchain and ahead-of-time link the codelet."""
        handle = self.toolchain.compile(source, name)
        self.linker.link(handle)  # off the critical path
        return handle

    # ------------------------------------------------------------------
    # Evaluation

    def eval(self, handle: Handle) -> Handle:
        """Evaluate ``handle`` (strict semantics); returns an Object handle."""
        evaluator = _WorkerEvaluator(self)
        try:
            return evaluator.eval(handle)
        finally:
            self._merge_stats(evaluator.stats)

    def spawn(self, fn: Callable[[], object]) -> None:
        """Run ``fn`` off the caller's thread - on the worker pool when
        this runtime has one, else on a fresh daemon thread.

        This is how a :class:`~repro.fixpoint.net.FixpointNode` serves
        incoming delegations without blocking the dispatching node: with
        ``workers=N`` the serve lands on the same pool that evaluates
        local Encodes (remote and local work genuinely contend, which is
        what the cost model's load signal measures); a sequential
        runtime still must not serve inline, so it pays one thread per
        request instead - as does a pool that closed between the check
        and the submit (the callable must run somewhere either way).
        """
        pool = self.pool
        if pool is not None and not pool.closed:
            try:
                pool.submit_task(fn)
                return
            except FixError:
                pass  # closed concurrently: fall through to a thread
        threading.Thread(
            target=fn, name="fixpoint-serve", daemon=True
        ).start()

    def holdings(self) -> Dict[bytes, int]:
        """Content key -> wire size for everything in runtime storage.

        This is the node's authoritative inventory: what it can ship, and
        the ground truth a delegating node prices its *local* option with
        (remote options are priced from beliefs; see
        :mod:`repro.fixpoint.net`).
        """
        return {h.content_key(): h.byte_size() for h in self.repo.handles()}

    def eval_blob(self, handle: Handle) -> bytes:
        """Evaluate and return the resulting Blob's payload."""
        result = self.eval(handle)
        return self.repo.get_blob(result).data

    def invoke(
        self,
        function: Handle,
        args: Sequence[Handle],
        limits: ResourceLimits = DEFAULT_LIMITS,
    ) -> Handle:
        """Convenience: an Application thunk for ``function(*args)``."""
        return make_application(self.repo, function, args, limits)

    def run(
        self,
        function: Handle,
        args: Sequence[Handle],
        limits: ResourceLimits = DEFAULT_LIMITS,
    ) -> Handle:
        """Build and strictly evaluate an invocation; returns the result."""
        return self.eval(self.invoke(function, args, limits).wrap_strict())

    @property
    def stats(self) -> EvalStats:
        with self._stats_lock:
            return self._stats.snapshot()

    def _merge_stats(self, stats: EvalStats) -> None:
        with self._stats_lock:
            for key, value in vars(stats).items():
                setattr(self._stats, key, getattr(self._stats, key) + value)

    # ------------------------------------------------------------------
    # Codelet application (the apply hook handed to evaluators)

    def _apply(
        self, evaluator: Evaluator, resolved: Handle, invocation: Invocation
    ) -> Handle:
        function = invocation.function
        if not (function.is_data and function.is_blob):
            raise NotAFunctionError(
                f"invocation function slot holds {function!r}, expected a "
                "codelet Blob"
            )
        linked = self.linker.link(function)
        fix = FixAPI(self.repo, resolved, invocation.limits)
        with Stopwatch() as watch:
            result = linked.run(fix, resolved)
        self.trace.record(
            InvocationRecord(
                function=linked.name,
                wall_seconds=watch.elapsed,
                bytes_mapped=fix.bytes_used,
                worker=threading.current_thread().name,
            )
        )
        return result

    # ------------------------------------------------------------------
    # Parallel fork/join

    def _worker_loop(self) -> None:
        pool = self.pool
        if pool is None:
            return
        while True:
            job = pool.pop()
            if job is not None:
                pool.run_job(job, self._execute_encode)
            elif pool.closed:
                # Drain before exiting: a task enqueued just before
                # close() (a delegation being served, say) still runs -
                # abandoning it would leave its Delegation future
                # unresolved forever.
                break

    def _execute_encode(self, encode: Handle) -> Handle:
        evaluator = _WorkerEvaluator(self)
        try:
            return evaluator.eval_encode(encode)
        finally:
            self._merge_stats(evaluator.stats)

    def _fork_join(self, encodes: Sequence[Handle]) -> None:
        """Submit sibling Encodes to the pool; help until all complete."""
        pool = self.pool
        if pool is None:
            return
        jobs = [pool.submit(encode) for encode in encodes]
        for job in jobs:
            while not job.done:
                other = pool.try_pop()
                if other is not None:
                    pool.run_job(other, self._execute_encode)
                else:
                    job.wait(0.005)
        for job in jobs:
            job.value()  # re-raise failures in the parent
