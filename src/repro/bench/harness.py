"""The experiment harness: run, tabulate, compare with the paper.

Every experiment module exposes ``run(scale=1.0) -> ExperimentResult``.
``scale`` shrinks the workload (fewer shards, fewer tasks) so the pytest
benches finish quickly; ``scale=1.0`` is the paper's configuration.

Results print as aligned tables with a paper-reported column, and the
shape helpers (:func:`ordering_holds`, :func:`factor_within`) implement
the reproduction's acceptance criterion: *who wins, by roughly what
factor, where crossovers fall* - never absolute equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment: str  # e.g. "fig8b"
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def row(self, system: str) -> Dict[str, object]:
        for row in self.rows:
            if row.get("system") == system:
                return row
        raise KeyError(f"{self.experiment}: no row for {system!r}")

    def value(self, system: str, column: str) -> float:
        return float(self.row(system)[column])  # type: ignore[arg-type]

    def systems(self) -> List[str]:
        return [str(r.get("system")) for r in self.rows]

    # ------------------------------------------------------------------

    def format_table(self) -> str:
        if not self.rows:
            return f"== {self.experiment}: {self.title} ==\n(no rows)"
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        widths = {c: len(c) for c in columns}
        rendered: List[List[str]] = []
        for row in self.rows:
            cells = []
            for c in columns:
                value = row.get(c, "")
                text = _format_cell(value)
                widths[c] = max(widths[c], len(text))
                cells.append(text)
            rendered.append(cells)
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(c.ljust(widths[c]) for c in columns))
        lines.append("  ".join("-" * widths[c] for c in columns))
        for cells in rendered:
            lines.append(
                "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.format_table())


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


# ----------------------------------------------------------------------
# Shape assertions


def ordering_holds(
    result: ExperimentResult, column: str, fastest_to_slowest: Sequence[str]
) -> bool:
    """True when the named systems rank in the given order on ``column``."""
    values = [result.value(s, column) for s in fastest_to_slowest]
    return all(a <= b for a, b in zip(values, values[1:]))


def factor(result: ExperimentResult, column: str, slow: str, fast: str) -> float:
    """How many times larger ``slow``'s value is than ``fast``'s."""
    denominator = result.value(fast, column)
    if denominator == 0:
        return float("inf")
    return result.value(slow, column) / denominator


def factor_within(
    result: ExperimentResult,
    column: str,
    slow: str,
    fast: str,
    low: float,
    high: float,
) -> bool:
    """True when slow/fast lies in [low, high] - a factor *band*."""
    return low <= factor(result, column, slow, fast) <= high


def relative_error(measured: float, reported: float) -> float:
    if reported == 0:
        return float("inf")
    return abs(measured - reported) / abs(reported)
