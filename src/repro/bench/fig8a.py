"""Fig. 8a: 1,024 one-off invocations against 150 ms remote storage.

One 32-core / 64 GiB server.  Externalized I/O lets Fixpoint issue every
fetch immediately and bind a core + 1 GB only when an input has arrived;
the "internal I/O" configuration (200 schedulable cores, like a serverless
platform that provisions before fetching) admits at most 64 concurrent
fetches (64 GiB / 1 GB) and starves - the paper measures 8.7x.
"""

from __future__ import annotations

from ..baselines.calibration import INTERNAL_IO_CORES_8A, S3_LATENCY
from ..dist.engine import FixpointSim
from ..sim.cluster import Cluster, MachineSpec
from ..sim.engine import Simulator
from ..sim.storage_service import StorageService
from ..workloads.oneoff import GB, build_oneoff_graph
from .harness import ExperimentResult
from .paperdata import FIG8A

#: The paper's S3-like server answers small GETs in ~150 ms; a single
#: client host sustains a bounded connection pool.
STORAGE_CONNECTIONS = 512


def _build(internal_io: bool) -> FixpointSim:
    sim = Simulator()
    cluster = Cluster(
        sim,
        [MachineSpec(name="node0", cores=32, memory_bytes=64 * GB)],
    )
    storage = StorageService(
        sim,
        response_latency=S3_LATENCY,
        max_connections=STORAGE_CONNECTIONS,
    )
    return FixpointSim(
        sim,
        cluster,
        storage=storage,
        internal_io=internal_io,
        oversubscribe_cores=INTERNAL_IO_CORES_8A if internal_io else None,
    )


def run(scale: float = 1.0) -> ExperimentResult:
    tasks = max(64, int(1024 * scale))
    result = ExperimentResult(
        experiment="fig8a",
        title=f"{tasks} one-off invocations, 150 ms storage, 32 cores / 64 GiB",
    )
    for label, internal in (("Fix", False), ("Fix (internal I/O)", True)):
        platform = _build(internal)
        graph = build_oneoff_graph(tasks=tasks)
        run_result = platform.run(graph, submitter="node0")
        busy = platform.cluster.accountant.core_seconds()
        total_ms = run_result.makespan * 1000
        user_ms = busy["user"] * 1000
        system_ms = busy["system"] * 1000
        paper = FIG8A[label]
        result.rows.append(
            {
                "system": label,
                "user_ms": round(user_ms, 2),
                "system_ms": round(system_ms, 3),
                "io_wait_ms": round(total_ms - user_ms - system_ms, 1),
                "total_ms": round(total_ms, 1),
                "throughput_tasks_s": round(tasks / run_result.makespan),
                "paper_total_ms": paper["total_ms"] * tasks / 1024,
                "paper_throughput": paper["throughput"],
            }
        )
    result.notes.append(
        "io_wait_ms is wall time not covered by user+system core-seconds, "
        "matching the paper's table arithmetic (user+system+io/wait=total)"
    )
    result.notes.append(
        "internal I/O admits only 64 concurrent fetches (64 GiB / 1 GB "
        "memory binding) -> ~16 storage-latency waves"
    )
    return result
