"""Fig. 7b: a chain of 500 function invocations, nearby vs remote client.

Ray resolves every dependency through the client that created it, paying
one client RTT per link; Fixpoint and Pheromone express the whole chain
in one shot and execute it cluster-side.  The latency models live in
:mod:`repro.workloads.chain`; this bench also runs the *real* chain on
the in-process runtime to verify the dataflow itself (result == length).
"""

from __future__ import annotations

from ..fixpoint.runtime import Fixpoint
from ..workloads.chain import chain_latencies, run_chain
from .harness import ExperimentResult
from .paperdata import FIG7B_CHAIN_LENGTH, FIG7B_SECONDS


def run(scale: float = 1.0) -> ExperimentResult:
    length = max(10, int(FIG7B_CHAIN_LENGTH * scale))
    result = ExperimentResult(
        experiment="fig7b",
        title=f"Chain of {length} function invocations (nearby vs remote client)",
    )
    for placement, nearby in (("nearby", True), ("remote", False)):
        for latency in chain_latencies(length, nearby=nearby):
            paper = FIG7B_SECONDS[placement].get(latency.system)
            scaled_paper = (
                paper * length / FIG7B_CHAIN_LENGTH if paper is not None else None
            )
            result.rows.append(
                {
                    "system": f"{latency.system} ({placement})",
                    "model_s": latency.seconds,
                    "paper_s": scaled_paper,
                    "roundtrips": latency.roundtrips,
                }
            )
    # Execute the real chain end-to-end on the in-process runtime.
    fp = Fixpoint()
    value = run_chain(fp, length)
    result.notes.append(
        f"real chain of {length} increments evaluated on the Python runtime: "
        f"result={value} (expected {length}), "
        f"invocations={fp.trace.invocation_count('increment')}"
    )
    if value != length:
        raise AssertionError("real chain produced a wrong result")
    result.notes.append(
        "paper_s scaled linearly when the chain is shortened for CI runs"
    )
    return result
