"""Fig. 7a: duration of a single trivial function invocation.

Three kinds of rows:

* **paper** - the constants measured by the authors (they anchor the
  platform models; reproducing them is by construction);
* **composed** - the same trivial add pushed through each *simulated*
  platform end to end, showing the component models really add up to the
  measured totals (a consistency check on the decompositions);
* **real** - actual measurements on this host: a direct Python call, a
  real process spawn, and a real invocation through the in-process Python
  Fixpoint runtime (our runtime's overhead is honest wall-clock, not a
  model).
"""

from __future__ import annotations

import time
from typing import Optional

from ..baselines.calibration import FIXPOINT_INVOKE
from ..baselines.faasm import Faasm
from ..baselines.linuxproc import measure_process_spawn, measure_python_call
from ..baselines.openwhisk import OpenWhisk
from ..baselines.pheromone import Pheromone
from ..baselines.ray import RayPlatform
from ..codelets.stdlib import int_blob
from ..dist.engine import FixpointSim
from ..dist.graph import JobGraph, TaskSpec
from ..fixpoint.runtime import Fixpoint
from .harness import ExperimentResult
from .paperdata import FIG7A_CORE_SECONDS, FIG7A_SECONDS

_PLATFORMS = {
    "Fixpoint": (FixpointSim, {}),
    "Pheromone": (Pheromone, {}),
    "Ray": (RayPlatform, {"style": "blocking"}),
    "Faasm": (Faasm, {}),
    "OpenWhisk": (OpenWhisk, {}),
}


def _single_add_graph() -> JobGraph:
    graph = JobGraph()
    graph.add_data("a", 1, "node0")
    graph.add_data("b", 1, "node0")
    graph.add_task(
        TaskSpec(
            name="add",
            fn="add_u8",
            inputs=("a", "b"),
            output="sum",
            output_size=1,
            compute_seconds=0.0,
            memory_bytes=1 << 20,
        )
    )
    return graph


def composed_invocation_seconds(system: str) -> float:
    """Push one warm trivial add through the simulated platform."""
    cls, kwargs = _PLATFORMS[system]
    platform = cls.build(nodes=1, cores=4, **kwargs)
    result = platform.run(_single_add_graph(), submitter="node0")
    return result.makespan


def measure_real_fixpoint(iterations: int = 2000) -> float:
    """Mean wall seconds per add_u8 invocation on the Python runtime.

    Memoization is disabled so every iteration truly re-executes; the
    codelet is warm (compiled + linked ahead of time), matching the
    paper's methodology of excluding setup time.
    """
    fp = Fixpoint(memoize=False)
    a = fp.repo.put_blob(int_blob(3, 1))
    b = fp.repo.put_blob(int_blob(4, 1))
    encode = fp.invoke(fp.stdlib["add_u8"], [a, b]).wrap_strict()
    fp.eval(encode)  # warm the linker and caches
    start = time.perf_counter()
    for _ in range(iterations):
        fp.eval(encode)
    return (time.perf_counter() - start) / iterations


def run(scale: float = 1.0, measure_real: Optional[bool] = None) -> ExperimentResult:
    """Regenerate fig. 7a.  ``scale`` shrinks the real-measurement loops."""
    if measure_real is None:
        measure_real = True
    result = ExperimentResult(
        experiment="fig7a",
        title="Trivial invocation overhead (add two 8-bit integers)",
    )
    fix_paper = FIG7A_SECONDS["Fixpoint"]
    for system, seconds in FIG7A_SECONDS.items():
        row: dict = {
            "system": system,
            "paper_s": seconds,
            "paper_slowdown": round(seconds / fix_paper, 1),
        }
        if system in FIG7A_CORE_SECONDS:
            row["paper_core_s"] = FIG7A_CORE_SECONDS[system]
        if system in _PLATFORMS:
            row["composed_s"] = composed_invocation_seconds(system)
        result.rows.append(row)
    if measure_real:
        iterations = max(50, int(2000 * scale))
        real_fix = measure_real_fixpoint(iterations)
        real_call = measure_python_call(max(1000, int(100_000 * scale)))
        real_spawn = measure_process_spawn(max(10, int(50 * scale)))
        result.rows.append(
            {"system": "real: Python direct call", "measured_s": real_call}
        )
        result.rows.append(
            {
                "system": "real: Python Fixpoint runtime",
                "measured_s": real_fix,
                "measured_slowdown": round(real_fix / real_call, 1),
            }
        )
        result.rows.append(
            {"system": "real: process spawn (vfork+exec)", "measured_s": real_spawn}
        )
        result.notes.append(
            "real rows are wall-clock on this host; the Python runtime's "
            f"absolute overhead ({real_fix * 1e6:.1f} us) exceeds the C++ "
            f"original's {FIXPOINT_INVOKE * 1e6:.2f} us, but stays far below "
            "every containerized/orchestrated system, preserving the ladder."
        )
    result.notes.append(
        "composed_s: the same warm add executed end-to-end on the simulated "
        "platform models - a consistency check that component constants sum "
        "to the measured totals."
    )
    return result
