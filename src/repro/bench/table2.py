"""Table 2: per-lookup data accessed / memory footprint / invocations.

Two layers of evidence:

* the **analytic formulas** from the paper (in Table 2's O() terms),
  instantiated at the 6M-title scale for each arity;
* an **empirical verification**: a real B+-tree is built on the real
  runtime at a reduced scale, walked by the instrumented reference walker
  in each system's style, and the measured counts must match the
  formulas' predictions (invocations exactly; bytes within the rounding
  of partially-filled nodes).
"""

from __future__ import annotations

import math

from ..fixpoint.runtime import Fixpoint
from ..workloads.bptree import (
    build_bptree,
    fixpoint_costs,
    ray_blocking_costs,
    ray_cps_costs,
    sample_queries,
    walk_real_tree,
)
from ..workloads.titles import make_titles
from .fig9 import tree_shape
from .harness import ExperimentResult
from .paperdata import FIG9_ARITIES, FIG9_KEY_COUNT, FIG9_MEAN_KEY_BYTES


def run(scale: float = 1.0, verify_keys: int = 4096, verify_arity: int = 16) -> ExperimentResult:
    key_count = max(4096, int(FIG9_KEY_COUNT * scale))
    result = ExperimentResult(
        experiment="table2",
        title=f"Access costs per lookup, {key_count:,} keys",
    )
    for arity in FIG9_ARITIES:
        shape = tree_shape(key_count, arity)
        d = shape.levels
        for label, costs in (
            ("Fixpoint", fixpoint_costs(d, arity, FIG9_MEAN_KEY_BYTES)),
            ("Ray (continuation-passing)", ray_cps_costs(d, arity, FIG9_MEAN_KEY_BYTES)),
            ("Ray (blocking)", ray_blocking_costs(d, arity, FIG9_MEAN_KEY_BYTES)),
        ):
            result.rows.append(
                {
                    "system": f"{label} @ 2^{int(math.log2(arity))}",
                    "levels_d": d,
                    "invocations": costs.invocations,
                    "data_accessed_KiB": round(costs.data_accessed / 1024, 1),
                    "peak_footprint_KiB": round(costs.memory_footprint / 1024, 1),
                }
            )
    # Empirical verification on a real tree.
    fp = Fixpoint()
    titles = make_titles(verify_keys)
    tree = build_bptree(fp, titles, [b"v:" + t for t in titles], verify_arity)
    d = tree.levels
    for style, expect_inv in (
        ("fixpoint", d),
        ("ray-cps", 2 * d),
        ("ray-blocking", 1),
    ):
        for key in sample_queries(titles, 5, seed=3):
            stats = walk_real_tree(fp, tree, key, style)
            if stats.invocations != expect_inv:
                raise AssertionError(
                    f"{style}: {stats.invocations} invocations, "
                    f"Table 2 predicts {expect_inv}"
                )
    result.notes.append(
        f"verified on a real {verify_keys}-key tree (arity {verify_arity}, "
        f"d={d}): invocation counts match the formulas for all three styles"
    )
    result.notes.append(
        "Fixpoint touches O(key size) per level and holds one node's keys; "
        "Ray blocking accumulates keys+refs of the whole path"
    )
    return result
