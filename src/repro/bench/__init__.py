"""``repro.bench`` - the experiment harness regenerating every figure.

One module per paper artifact (fig7a, fig7b, fig8a, fig8b, fig9, fig10,
table2, summary), each exposing ``run(scale=...) -> ExperimentResult``.

Run from the command line::

    python -m repro.bench fig8b
    python -m repro.bench all --scale 0.1
"""

from .harness import (
    ExperimentResult,
    factor,
    factor_within,
    ordering_holds,
    relative_error,
)

EXPERIMENTS = (
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "fig9",
    "fig10",
    "table2",
    "summary",
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "factor",
    "factor_within",
    "ordering_holds",
    "relative_error",
]
