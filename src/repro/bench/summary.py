"""The three summary tables of the paper's section 1.

Each is a projection of one regenerated experiment:

* invocation-overhead ladder  <- fig. 7a
* word-count CPU-waiting table <- fig. 8b (three rows)
* B+-tree arity-256 comparison <- fig. 9
"""

from __future__ import annotations

from . import fig7a, fig8b, fig9
from .harness import ExperimentResult
from .paperdata import FIG7A_SLOWDOWNS, FIG9_ARITY256


def run(scale: float = 0.1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="summary",
        title="Section 1 summary tables (projections of figs. 7a, 8b, 9)",
    )
    # Table 1: the overhead ladder.
    ladder = fig7a.run(scale=scale, measure_real=False)
    fix = ladder.value("Fixpoint", "paper_s")
    for system in ("Fixpoint", "Linux process", "Pheromone", "Ray", "Faasm", "OpenWhisk"):
        row = ladder.row(system)
        result.rows.append(
            {
                "system": f"[overhead] {system}",
                "value": row["paper_s"],
                "slowdown_vs_fix": round(float(row["paper_s"]) / fix),  # type: ignore[arg-type]
                "paper_slowdown": FIG7A_SLOWDOWNS.get(system, 1),
            }
        )
    # Table 2: word-count waiting percentages.
    wc = fig8b.run(scale=scale)
    for system in (
        "Fixpoint",
        "Fixpoint (no locality + internal I/O)",
        "OpenWhisk + MinIO + K8s",
    ):
        row = wc.row(system)
        result.rows.append(
            {
                "system": f"[wordcount] {system}",
                "value": row["time_s"],
                "waiting_pct": row["waiting_pct"],
            }
        )
    # Table 3: B+-tree at arity 256.
    bp = fig9.run(scale=1.0)
    row = bp.row("arity 2^8")
    for label, column in (
        ("Fixpoint", "fixpoint_s"),
        ("Ray (blocking)", "ray_blocking_s"),
        ("Ray (continuation-passing)", "ray_cps_s"),
    ):
        result.rows.append(
            {
                "system": f"[bptree-256] {label}",
                "value": row[column],
                "paper_value": FIG9_ARITY256[label],
            }
        )
    result.notes.append(
        "wordcount rows use the scaled shard count; see fig8b for full scale"
    )
    return result
