"""Fig. 9: B+-tree lookup latency vs arity, Fixpoint vs two Ray styles.

The experiment (paper section 5.4): 6M Wikipedia titles in B+-trees of
arity 2^24 (flat) down to 2^6; five sets of ten random queries on a
single node with one worker; system state reset between sets (so a set
shares a warm cache, across sets everything is cold again).

Method here: the *structure* (node counts, keys-blob bytes, path node
identities, cache behaviour) is computed exactly; per-visit costs come
from the calibrated constants; and the whole model is cross-validated
against the real runtime - the instrumented walker in
``repro.workloads.bptree`` runs the same traversals on a real tree and
must report exactly the invocation/get/byte counts the model charges
(see tests/test_fig9_model.py).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..baselines.calibration import (
    DISK_BW,
    DISK_LATENCY,
    FIX_NODE_PARSE,
    FIXPOINT_INVOKE,
    HASH_BW,
    LOCAL_READ_BW,
    PY_DESER_BW,
    RAY_BLOCKING_GET,
    RAY_CPS_STEP_EXTRA,
    RAY_DRIVER_SUBMIT,
    RAY_TASK_OVERHEAD,
)
from .harness import ExperimentResult
from .paperdata import (
    FIG9_ARITIES,
    FIG9_ARITY256,
    FIG9_KEY_COUNT,
    FIG9_MEAN_KEY_BYTES,
    FIG9_QUERIES_PER_SET,
)

ENTRY_BYTES = 32  # one packed handle / serialized ObjectRef


@dataclass(frozen=True)
class TreeShape:
    """Exact node counts per level (root first) for N keys at one arity."""

    key_count: int
    arity: int
    level_nodes: Tuple[int, ...]

    @property
    def levels(self) -> int:
        return len(self.level_nodes)

    def fanout(self, level: int) -> int:
        """Mean children per node at ``level`` (keys for the leaf level)."""
        below = (
            self.level_nodes[level + 1]
            if level + 1 < self.levels
            else self.key_count
        )
        return math.ceil(below / self.level_nodes[level])

    def keys_bytes(self, level: int, key_bytes: int) -> int:
        return self.fanout(level) * key_bytes

    def refs_bytes(self, level: int) -> int:
        return self.fanout(level) * ENTRY_BYTES


def tree_shape(key_count: int, arity: int) -> TreeShape:
    counts = [math.ceil(key_count / arity)]  # leaves
    while counts[-1] > 1:
        counts.append(math.ceil(counts[-1] / arity))
    return TreeShape(key_count, arity, tuple(reversed(counts)))


def _query_paths(
    shape: TreeShape, queries: int, seed: int
) -> List[List[Tuple[int, int]]]:
    """Node identities (level, index) along each query's path."""
    rng = random.Random(seed)
    paths = []
    for _ in range(queries):
        key_index = rng.randrange(shape.key_count)
        path = []
        for level, count in enumerate(shape.level_nodes):
            path.append((level, key_index * count // shape.key_count))
        paths.append(path)
    return paths


# ----------------------------------------------------------------------
# Per-system cost models (charged per node visit + per query)


def _cold_read(nbytes: int) -> float:
    """First touch of node data: disk latency + read + content hash."""
    return DISK_LATENCY + nbytes / DISK_BW + nbytes / HASH_BW


def set_seconds(shape: TreeShape, system: str, seed: int, key_bytes: int) -> float:
    """Seconds for one set of 10 queries (shared cache within the set)."""
    total = 0.0
    cache: Set[Tuple[int, int]] = set()
    for path in _query_paths(shape, FIG9_QUERIES_PER_SET, seed):
        if system == "Fixpoint":
            pass  # no per-query session cost: the lookup is one object graph
        else:
            total += RAY_DRIVER_SUBMIT + RAY_TASK_OVERHEAD
        for level, index in path:
            keys_b = shape.keys_bytes(level, key_bytes)
            refs_b = shape.refs_bytes(level)
            if system == "Fixpoint":
                touched = keys_b  # selection thunks fetch only the keys
                per_visit = FIXPOINT_INVOKE + FIX_NODE_PARSE + keys_b / LOCAL_READ_BW
            elif system == "Ray (blocking)":
                touched = keys_b + refs_b  # two gets: keys + child refs
                per_visit = 2 * RAY_BLOCKING_GET + touched / PY_DESER_BW
            elif system == "Ray (continuation-passing)":
                touched = keys_b + refs_b
                per_visit = (
                    2 * (RAY_TASK_OVERHEAD + RAY_CPS_STEP_EXTRA)
                    + touched / PY_DESER_BW
                )
            else:
                raise ValueError(f"unknown system {system!r}")
            if (level, index) not in cache:
                cache.add((level, index))
                per_visit += _cold_read(touched)
            total += per_visit
    return total


SYSTEMS = ("Fixpoint", "Ray (blocking)", "Ray (continuation-passing)")


def run(scale: float = 1.0, sets: int = 5) -> ExperimentResult:
    key_count = max(4096, int(FIG9_KEY_COUNT * scale))
    result = ExperimentResult(
        experiment="fig9",
        title=(
            f"B+-tree lookup over {key_count:,} titles: seconds per "
            f"{FIG9_QUERIES_PER_SET}-query set vs arity"
        ),
    )
    for arity in FIG9_ARITIES:
        shape = tree_shape(key_count, arity)
        row: Dict[str, object] = {
            "system": f"arity 2^{int(math.log2(arity))}",
            "levels_d": shape.levels,
        }
        fix_time = None
        for system in SYSTEMS:
            mean = sum(
                set_seconds(shape, system, seed, FIG9_MEAN_KEY_BYTES)
                for seed in range(sets)
            ) / sets
            short = {
                "Fixpoint": "fixpoint_s",
                "Ray (blocking)": "ray_blocking_s",
                "Ray (continuation-passing)": "ray_cps_s",
            }[system]
            row[short] = round(mean, 4)
            if system == "Fixpoint":
                fix_time = mean
        assert fix_time
        row["blocking_slowdown"] = round(row["ray_blocking_s"] / fix_time, 1)  # type: ignore[operator]
        row["cps_slowdown"] = round(row["ray_cps_s"] / fix_time, 1)  # type: ignore[operator]
        if arity == 2**8 and scale == 1.0:
            row["paper_fixpoint_s"] = FIG9_ARITY256["Fixpoint"]
            row["paper_blocking_s"] = FIG9_ARITY256["Ray (blocking)"]
            row["paper_cps_s"] = FIG9_ARITY256["Ray (continuation-passing)"]
        result.rows.append(row)
    result.notes.append(
        "Fixpoint's per-set time falls with arity (smaller keys blobs per "
        "node); Ray CPS rises as invocations multiply - the paper's "
        "crossover shape.  Absolute times sit below the paper's (its "
        "client/session path is not modeled); slowdown columns carry the "
        "comparison."
    )
    result.notes.append(
        "levels_d is Table 2's d (nodes on a root-to-leaf path)"
    )
    return result
