"""Fig. 8b: counting a 3-character string across 984 x 100 MiB shards.

Seven systems on a 10-node / 320-vCPU cluster, shards scattered randomly.
The three Fixpoint rows isolate the two design levers (locality-aware
placement; late binding), and the baselines show where each architecture
pays: Ray CPS shares Fix's benefits but at Python task costs, Ray
blocking loses placement information, Pheromone cannot express the reduce
on external data (map phase only, as in the paper), and OpenWhisk moves
every byte through MinIO from data-oblivious pods.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..baselines.base import Platform
from ..baselines.calibration import INTERNAL_IO_THREADS_8B
from ..baselines.openwhisk import OpenWhisk
from ..baselines.pheromone import Pheromone
from ..baselines.ray import RayPlatform
from ..dist.engine import FixpointSim
from ..workloads.corpus import declare_shards
from ..workloads.wordcount import build_wordcount_graph, map_only_graph
from .harness import ExperimentResult
from .paperdata import (
    FIG8B_NODES,
    FIG8B_SECONDS,
    FIG8B_SHARD_BYTES,
    FIG8B_SHARDS,
)


def _rows(scale: float) -> List[Tuple[str, Callable[[], Platform], bool]]:
    """(paper label, platform factory, map_only)."""
    return [
        ("Fixpoint", lambda: FixpointSim.build(nodes=FIG8B_NODES), False),
        (
            "Fixpoint (no locality)",
            lambda: FixpointSim.build(nodes=FIG8B_NODES, locality=False),
            False,
        ),
        (
            "Fixpoint (no locality + internal I/O)",
            lambda: FixpointSim.build(
                nodes=FIG8B_NODES,
                locality=False,
                internal_io=True,
                oversubscribe_cores=INTERNAL_IO_THREADS_8B,
            ),
            False,
        ),
        (
            "Ray (continuation-passing)",
            lambda: RayPlatform.build(nodes=FIG8B_NODES, style="cps"),
            False,
        ),
        (
            "Ray (blocking)",
            lambda: RayPlatform.build(nodes=FIG8B_NODES, style="blocking"),
            False,
        ),
        (
            "Pheromone + MinIO (map only)",
            lambda: Pheromone.build(nodes=FIG8B_NODES),
            True,
        ),
        (
            "OpenWhisk + MinIO + K8s",
            lambda: OpenWhisk.build(nodes=FIG8B_NODES),
            False,
        ),
    ]


def run(scale: float = 1.0, seed: int = 42) -> ExperimentResult:
    shard_count = max(20, int(FIG8B_SHARDS * scale))
    result = ExperimentResult(
        experiment="fig8b",
        title=(
            f"Word-count over {shard_count} x 100 MiB shards, "
            f"{FIG8B_NODES} nodes / {FIG8B_NODES * 32} vCPUs"
        ),
    )
    for label, factory, map_only in _rows(scale):
        platform = factory()
        nodes = platform.cluster.machine_names()
        shards = declare_shards(shard_count, FIG8B_SHARD_BYTES, nodes, seed=seed)
        graph = map_only_graph(shards) if map_only else build_wordcount_graph(shards)
        run_result = platform.run(graph)
        paper = FIG8B_SECONDS.get(label)
        result.rows.append(
            {
                "system": label,
                "time_s": round(run_result.makespan, 2),
                "paper_s": paper * scale if paper is not None else None,
                "user_pct": round(run_result.cpu.user, 1),
                "system_pct": round(run_result.cpu.system, 1),
                "iowait_pct": round(run_result.cpu.iowait, 1),
                "waiting_pct": round(run_result.cpu.waiting_pct, 1),
                "bytes_moved_GiB": round(
                    run_result.bytes_transferred / (1 << 30), 1
                ),
            }
        )
    result.notes.append(
        "Pheromone runs the map phase only: its dependency abstraction "
        "cannot trigger the reduce on external-data completion (paper 5.3.2)"
    )
    result.notes.append(
        "paper_s scaled linearly when the shard count is shrunk for CI runs"
    )
    result.notes.append(
        "waiting_pct = iowait + idle, the paper's 'CPU waiting %' metric"
    )
    return result
