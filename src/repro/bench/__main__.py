"""CLI entry point: ``python -m repro.bench <experiment> [--scale S]``.

``all`` runs every experiment.  ``--scale`` shrinks workloads (default 1.0
= the paper's configuration); the paper-reported columns scale where that
is meaningful.
"""

from __future__ import annotations

import argparse
import importlib
import sys

from . import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=(*EXPERIMENTS, "all"),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = paper configuration)",
    )
    args = parser.parse_args(argv)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        module = importlib.import_module(f".{name}", package=__package__)
        result = module.run(scale=args.scale)
        result.show()
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
