"""Fig. 10: burst-parallel compilation of ~2,000 translation units.

Fixpoint uploads all dependencies from the client and distributes
fine-grained compile invocations with their data bundled; Ray + MinIO
launches Linux executables via Popen that pull sources and headers from
MinIO (binaries start on one node); OpenWhisk creates its function
containers on demand (the paper includes creation time here) and moves
everything through MinIO.
"""

from __future__ import annotations

from ..baselines.openwhisk import OpenWhisk
from ..baselines.ray import RayPopenMinIO
from ..dist.engine import FixpointSim
from ..workloads.compilejob import build_compile_graph
from .harness import ExperimentResult
from .paperdata import FIG10_SECONDS, FIG10_TU_COUNT


def run(scale: float = 1.0, seed: int = 11) -> ExperimentResult:
    tu_count = max(40, int(FIG10_TU_COUNT * scale))
    result = ExperimentResult(
        experiment="fig10",
        title=f"Compile {tu_count} TUs + link, 10 nodes / 320 vCPUs",
    )
    rows = [
        ("Fixpoint", lambda: FixpointSim.build(nodes=10)),
        ("Ray + MinIO", lambda: RayPopenMinIO.build(nodes=10)),
        (
            "OpenWhisk + MinIO + K8s",
            lambda: OpenWhisk.build(
                nodes=10, warm=False, per_invocation_pods=True
            ),
        ),
    ]
    for label, factory in rows:
        platform = factory()
        graph = build_compile_graph(tu_count=tu_count, seed=seed)
        run_result = platform.run(graph)
        paper = FIG10_SECONDS.get(label)
        result.rows.append(
            {
                "system": label,
                "time_s": round(run_result.makespan, 2),
                "paper_s": paper,
                "user_pct": round(run_result.cpu.user, 1),
                "waiting_pct": round(run_result.cpu.waiting_pct, 1),
                "bytes_moved_GiB": round(
                    run_result.bytes_transferred / (1 << 30), 2
                ),
                "invocations": run_result.invocations,
            }
        )
    result.notes.append(
        "OpenWhisk runs cold (function creation included), as in the paper"
    )
    result.notes.append(
        "paper_s is the full 1,987-TU configuration; compare shapes when "
        "scaled down"
    )
    return result
