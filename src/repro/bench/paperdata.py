"""The paper's reported numbers, transcribed per table and figure.

Used by every bench to print paper-vs-measured rows and by the shape
assertions (orderings and factor bands - never point equality; the
substrate is a simulator, not the authors' testbed).
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Fig. 7a: trivial-invocation overhead (seconds)

FIG7A_SECONDS = {
    "static": 1.8e-9,
    "virtual": 12.2e-9,
    "Fixpoint": 1.46e-6,
    "Linux process": 449.1e-6,
    "Pheromone": 1.05e-3,
    "Ray": 1.29e-3,
    "Faasm": 10.6e-3,
    "OpenWhisk": 30.7e-3,
}

#: Internally-timed "core" execution where the paper reports it.
FIG7A_CORE_SECONDS = {
    "Pheromone": 27.0e-6,
    "Faasm": 2.3e-3,
    "OpenWhisk": 5.2e-3,
}

#: Section 1's summary slowdowns (vs Fix).
FIG7A_SLOWDOWNS = {
    "Linux process": 307,
    "Pheromone": 720,
    "Ray": 881,
    "Faasm": 7260,
    "OpenWhisk": 20980,
}

# ----------------------------------------------------------------------
# Fig. 7b: 500-invocation chain (seconds)

FIG7B_SECONDS = {
    "nearby": {"Fixpoint": 5.0e-3, "Pheromone": 17.6e-3, "Ray": 0.821},
    "remote": {"Fixpoint": 25.7e-3, "Pheromone": 38.7e-3, "Ray": 11.7},
}
FIG7B_REMOTE_RTT = 21.3e-3
FIG7B_CHAIN_LENGTH = 500

# ----------------------------------------------------------------------
# Fig. 8a: 1,024 one-off invocations (milliseconds / tasks per second)

FIG8A = {
    "Fix": {
        "user_ms": 3,
        "system_ms": 2,
        "io_wait_ms": 263,
        "total_ms": 268,
        "throughput": 3827,
    },
    "Fix (internal I/O)": {
        "user_ms": 11,
        "system_ms": 6,
        "io_wait_ms": 2621,
        "total_ms": 2638,
        "throughput": 388,
    },
}

# ----------------------------------------------------------------------
# Fig. 8b: Wikipedia word-count (seconds; waiting% where reported)

FIG8B_SECONDS = {
    "Fixpoint": 3.25,
    "Fixpoint (no locality)": 31.43,
    "Fixpoint (no locality + internal I/O)": 33.78,
    "Ray (continuation-passing)": 6.39,
    "Ray (blocking)": 17.87,
    "Pheromone + MinIO (map only)": 42.29,
    "OpenWhisk + MinIO + K8s": 63.68,
}
FIG8B_WAITING_PCT = {"Fixpoint": 37.0, "OpenWhisk + MinIO + K8s": 92.0}
FIG8B_SHARDS = 984
FIG8B_SHARD_BYTES = 100 << 20
FIG8B_NODES = 10
FIG8B_CORES = 320

# ----------------------------------------------------------------------
# Fig. 9 / Table 2: B+-tree lookups

FIG9_ARITIES = [2**24, 2**12, 2**10, 2**8, 2**6]
FIG9_KEY_COUNT = 6_000_000
FIG9_MEAN_KEY_BYTES = 22
FIG9_QUERIES_PER_SET = 10
#: Summary table at arity 256 (seconds per query set).
FIG9_ARITY256 = {
    "Fixpoint": 0.14,
    "Ray (blocking)": 2.8,
    "Ray (continuation-passing)": 5.74,
}
#: Slowdowns vs Fixpoint at arity 2^6 (section 5.4 analysis).
FIG9_ARITY64_SLOWDOWN = {
    "Ray (blocking)": 22.3,
    "Ray (continuation-passing)": 49.9,
}

# ----------------------------------------------------------------------
# Fig. 10: burst-parallel compilation (seconds)

FIG10_SECONDS = {
    "Fixpoint": 39.53,
    "Ray + MinIO": 76.87,
    "OpenWhisk + MinIO + K8s": 100.01,
}
FIG10_TU_COUNT = 1987
