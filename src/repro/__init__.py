"""repro - a Python reproduction of "Fix: externalizing network I/O in
serverless computing" (Deng et al., EuroSys 2026).

Public surface:

* :mod:`repro.core` - the Fix ABI: Handles, Blobs/Trees, Thunks, Encodes,
  minimum repositories, and the evaluator.
* :mod:`repro.codelets` - the trusted toolchain, sandbox, and linker.
* :mod:`repro.fixpoint` - the executable multi-worker runtime (and the
  functional multi-node delegation in :mod:`repro.fixpoint.net`).
* :mod:`repro.sim` - the discrete-event cluster substrate.
* :mod:`repro.dist` - distributed Fixpoint: the job IR, the passive
  object view, the dataflow scheduler, the :class:`~repro.dist.engine.FixpointSim`
  platform (externalized I/O + late binding), and section 6's
  footprint-aware multitenancy packing.
* :mod:`repro.baselines` - OpenWhisk/MinIO/K8s, Ray, Pheromone, Faasm models.
* :mod:`repro.flatware` - the POSIX-compat layer over Fix Trees.
* :mod:`repro.workloads` - the paper's evaluation workloads.
* :mod:`repro.bench` - the experiment harness regenerating every figure.
* :mod:`repro.obs` - cluster-wide metrics registry + causal tracing
  (spans stitched across delegation/gossip wire frames), with JSON
  ``BENCH_*.json`` snapshot export.
* :mod:`repro.analysis` - machine-checked concurrency discipline: the
  tracked-lock race detector behind ``pytest --race`` and the
  repo-invariant AST linter (``python -m repro.analysis.lint src``).

Subpackages beyond ``core`` and ``fixpoint`` load lazily (PEP 562):
``repro.dist`` is reachable as an attribute of ``repro`` without paying
for - or creating import cycles through - the baselines at package-import
time.
"""

from __future__ import annotations

import importlib

from .core import (
    Blob,
    Evaluator,
    FixAPI,
    FixError,
    Handle,
    Repository,
    ResourceLimits,
    Tree,
)
from .fixpoint import Fixpoint

__version__ = "1.0.0"

#: Subpackages resolvable as ``repro.<name>`` attributes on first touch.
_SUBPACKAGES = (
    "analysis",
    "baselines",
    "bench",
    "codelets",
    "core",
    "dist",
    "fixpoint",
    "flatware",
    "obs",
    "sim",
    "workloads",
)

__all__ = [
    "Blob",
    "Evaluator",
    "FixAPI",
    "FixError",
    "Fixpoint",
    "Handle",
    "Repository",
    "ResourceLimits",
    "Tree",
    "__version__",
    *_SUBPACKAGES,
]


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module  # cache: __getattr__ runs once per name
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SUBPACKAGES))
