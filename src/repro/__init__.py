"""repro - a Python reproduction of "Fix: externalizing network I/O in
serverless computing" (Deng et al., EuroSys 2026).

Public surface:

* :mod:`repro.core` - the Fix ABI: Handles, Blobs/Trees, Thunks, Encodes,
  minimum repositories, and the evaluator.
* :mod:`repro.codelets` - the trusted toolchain, sandbox, and linker.
* :mod:`repro.fixpoint` - the executable multi-worker runtime.
* :mod:`repro.sim` - the discrete-event cluster substrate.
* :mod:`repro.dist` - distributed Fixpoint (dataflow-aware scheduling).
* :mod:`repro.baselines` - OpenWhisk/MinIO/K8s, Ray, Pheromone, Faasm models.
* :mod:`repro.flatware` - the POSIX-compat layer over Fix Trees.
* :mod:`repro.workloads` - the paper's evaluation workloads.
* :mod:`repro.bench` - the experiment harness regenerating every figure.
"""

from .core import (
    Blob,
    Evaluator,
    FixAPI,
    FixError,
    Handle,
    Repository,
    ResourceLimits,
    Tree,
)
from .fixpoint import Fixpoint

__version__ = "1.0.0"

__all__ = [
    "Blob",
    "Evaluator",
    "FixAPI",
    "FixError",
    "Fixpoint",
    "Handle",
    "Repository",
    "ResourceLimits",
    "Tree",
    "__version__",
]
