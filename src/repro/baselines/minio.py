"""A MinIO-style object store deployed across the cluster.

OpenWhisk (and the Popen-style Ray baseline) move *all* data through an
object store: functions GET their inputs after starting and PUT their
outputs before finishing.  Objects are sharded across the cluster nodes by
a deterministic hash of their name; every GET/PUT pays a request overhead
plus a cluster-network transfer at MinIO's effective per-stream
throughput (see calibration.py).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple

from ..core.errors import SchedulingError
from ..sim.cluster import Cluster
from ..sim.engine import Event, Simulator
from .calibration import MINIO_REQUEST_OVERHEAD


def _shard(name: str, buckets: int) -> int:
    digest = hashlib.blake2b(name.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "little") % buckets


class MinIO:
    """Object store: name -> (size, holder node)."""

    def __init__(self, sim: Simulator, cluster: Cluster, seed: int = 1349):
        self.sim = sim
        self.cluster = cluster
        self._nodes = cluster.machine_names()
        if not self._nodes:
            raise SchedulingError("MinIO needs at least one node")
        self._objects: Dict[str, Tuple[int, str]] = {}
        # Erasure coding spreads reads over the deployment; the serving
        # node is effectively arbitrary per GET (seeded for determinism,
        # uncorrelated with any scheduler's placement rotation).
        self._stripe_rng = random.Random(seed)
        self.gets = 0
        self.puts = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def node_for(self, name: str) -> str:
        return self._nodes[_shard(name, len(self._nodes))]

    def contains(self, name: str) -> bool:
        return name in self._objects

    def size_of(self, name: str) -> int:
        return self._objects[name][0]

    def preload(self, name: str, size: int) -> str:
        """Place an object in the store with no simulated cost (the state
        before an experiment begins, like the paper's pre-filled buckets)."""
        node = self.node_for(name)
        self._objects[name] = (size, node)
        return node

    def get(self, name: str, dst: str) -> Event:
        """Fetch ``name`` to ``dst``; request overhead + network transfer.

        Reads are striped (MinIO erasure-codes objects across the
        deployment), so repeated GETs of a hot object spread over the
        cluster's transmit pipes instead of hammering one holder.  Every
        GET moves the bytes again - MinIO clients do not share a cache,
        which is exactly the cost fig. 10's baselines pay per invocation.
        """
        if name not in self._objects:
            raise SchedulingError(f"MinIO: no object {name!r}")
        size, _node = self._objects[name]
        source = self._stripe_rng.choice(self._nodes)
        self.gets += 1
        self.bytes_read += size
        return self.sim.process(
            self._op(source, dst, size), name=f"minio.get {name}"
        )

    def put(self, name: str, size: int, src: str) -> Event:
        """Store ``name`` from ``src``; returns event with the holder node."""
        node = self.node_for(name)
        self._objects[name] = (size, node)
        self.puts += 1
        self.bytes_written += size
        return self.sim.process(self._op(src, node, size), name=f"minio.put {name}")

    def _op(self, src: str, dst: str, size: int):
        yield self.sim.timeout(MINIO_REQUEST_OVERHEAD)
        if src != dst:
            yield self.cluster.network.transfer(src, dst, size)
        else:
            yield self.sim.timeout(0.0)
        return dst
