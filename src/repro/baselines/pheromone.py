"""The Pheromone baseline: data-bucket-triggered serverless workflows.

Pheromone (NSDI '23) lets users declare *function-level* dependencies
("invoke B on the output of A") and collocates a function with the bucket
holding its trigger data - so intermediate dataflow is cheap.  Its
dependency abstraction cannot express a dependency on data that is *not*
an intermediate result (paper section 5.3.2): external inputs are fetched
from durable storage without locality, and the fig. 8b reduce phase
cannot be expressed at all (the paper could only run its map phase).
"""

from __future__ import annotations

from typing import Dict

from ..dist.graph import JobGraph, TaskSpec
from ..sim.cluster import Cluster
from ..sim.engine import Simulator
from .base import Platform
from .calibration import (
    PHEROMONE_CHAIN_STEP,
    PHEROMONE_CORE,
    PHEROMONE_INVOKE,
    PHEROMONE_STREAM_BW,
)


class Pheromone(Platform):
    """Bucket-triggered workflows with collocated intermediates."""

    name = "Pheromone + MinIO"
    data_bandwidth = PHEROMONE_STREAM_BW
    #: Pheromone cannot trigger a reduce on completion of external-data
    #: consumers; experiment drivers must respect this (fig. 8b runs the
    #: map phase only, as the paper did).
    can_reduce_on_external = False

    def __init__(self, sim: Simulator, cluster: Cluster, **kwargs):
        super().__init__(sim, cluster, **kwargs)
        self._rr = 0  # round-robin cursor for external-input functions
        self._outstanding: Dict[str, int] = {
            name: 0 for name in cluster.machine_names()
        }

    def _place(self, task: TaskSpec) -> str:
        intermediates = [
            n for n in task.inputs if self.cluster.object(n).locations
        ]
        produced = [
            n
            for n in intermediates
            if not n.startswith("ext:") and self._is_intermediate(n)
        ]
        if produced:
            # Collocate with the largest trigger bucket.
            biggest = max(produced, key=lambda n: self.cluster.object(n).size)
            locations = self.cluster.object(biggest).locations
            machine_locs = [
                loc for loc in locations if loc in self.cluster.machines
            ]
            if machine_locs:
                return min(machine_locs)
        # External-data functions: scheduler has no locality information.
        names = self.cluster.machine_names()
        node = names[self._rr % len(names)]
        self._rr += 1
        return node

    def _is_intermediate(self, name: str) -> bool:
        return name in self._produced

    def load(self, graph: JobGraph) -> None:
        super().load(graph)
        self._produced = set(graph.producers())

    def _invoke_proc(self, task: TaskSpec, submitter: str):
        node = self._place(task)
        machine = self.cluster.machine(node)
        self._outstanding[node] += 1
        try:
            chained = all(self._is_intermediate(n) for n in task.inputs) and bool(
                task.inputs
            )
            if chained:
                # A pre-declared workflow step fires locally off its
                # trigger bucket: no scheduler dispatch.
                overhead = PHEROMONE_CHAIN_STEP
            else:
                yield self.cluster.network.message(submitter, node)
                overhead = PHEROMONE_INVOKE
            # Claim the executor, then fetch any non-local data while
            # holding it (Pheromone executors own their resources).
            yield machine.cores.acquire(task.cores)
            yield machine.memory.acquire(task.memory_bytes)
            try:
                yield from self._busy(
                    node, "system", task.cores, overhead - PHEROMONE_CORE
                )
                started = self.sim.now
                yield self._fetch_all(task.inputs, node)
                self.cluster.accountant.charge(
                    node, "iowait", (self.sim.now - started) * task.cores
                )
                yield from self._busy(node, "system", task.cores, PHEROMONE_CORE)
                yield from self._busy(
                    node, "user", task.cores, task.compute_seconds
                )
            finally:
                machine.memory.release(task.memory_bytes)
                machine.cores.release(task.cores)
        finally:
            self._outstanding[node] -= 1
        self.cluster.add_object(task.output, task.output_size, node)
        return node
