"""A Kubernetes-style pod scheduler: least-loaded and data-oblivious.

OpenWhisk is configured with Kubernetes as the container factory (paper
section 5.1), so pod placement ignores where data lives - the property
that costs it dearly in fig. 8b.  Pod lifecycle costs: a scheduling
decision per pod, plus a cold-start when no warm container for the
function exists on the chosen node.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..core.errors import SchedulingError
from ..sim.cluster import Cluster
from ..sim.engine import Event, Simulator
from ..sim.resources import Resource
from .calibration import K8S_SCHEDULE, OW_COLD_START


class KubeScheduler:
    """Tracks outstanding pods per node; places on the least loaded."""

    def __init__(
        self, sim: Simulator, cluster: Cluster, per_invocation_pods: bool = False
    ):
        self.sim = sim
        self.cluster = cluster
        #: Docker-image actions above OpenWhisk's inline size limit get a
        #: fresh pod per activation (fig. 10's configuration).
        self.per_invocation_pods = per_invocation_pods
        self._outstanding: Dict[str, int] = {
            name: 0 for name in cluster.machine_names()
        }
        self._warm: Set[Tuple[str, str]] = set()  # (function, node)
        # The container runtime creates pods concurrently up to roughly
        # the core count (kubelet/dockerd parallelism).
        self._runtimes: Dict[str, Resource] = {
            name: Resource(
                sim, machine.spec.cores, name=f"{name}.containerd"
            )
            for name, machine in cluster.machines.items()
        }
        self.pods_scheduled = 0
        self.cold_starts = 0

    def place(self) -> str:
        if not self._outstanding:
            raise SchedulingError("no nodes available")
        node = min(self._outstanding, key=lambda n: (self._outstanding[n], n))
        self._outstanding[node] += 1
        self.pods_scheduled += 1
        return node

    def pod_finished(self, node: str) -> None:
        if self._outstanding[node] <= 0:
            raise SchedulingError(f"pod accounting underflow on {node}")
        self._outstanding[node] -= 1

    def is_warm(self, function: str, node: str) -> bool:
        return (function, node) in self._warm

    def prewarm(self, function: str, node: str) -> None:
        self._warm.add((function, node))

    def prewarm_everywhere(self, function: str) -> None:
        for node in self.cluster.machine_names():
            self.prewarm(function, node)

    def pod_start(self, function: str, node: str) -> Event:
        """Scheduling decision plus cold start if needed."""
        cold = self.per_invocation_pods or not self.is_warm(function, node)
        if cold:
            self.cold_starts += 1
            self._warm.add((function, node))
        return self.sim.process(
            self._pod_start_proc(node, cold), name=f"pod_start {node}"
        )

    def _pod_start_proc(self, node: str, cold: bool):
        yield self.sim.timeout(K8S_SCHEDULE)
        if cold:
            runtime = self._runtimes[node]
            yield runtime.acquire(1)
            try:
                yield self.sim.timeout(OW_COLD_START)
            finally:
                runtime.release(1)
