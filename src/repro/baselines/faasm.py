"""The Faasm baseline: Wasm software-fault isolation without externalized I/O.

Faasm (ATC '20) isolates functions with WebAssembly like Fixpoint, but
offers a general host interface (filesystem, shared state) instead of
Fix's declarative dependencies - so its dispatcher must set up that
environment on every call, costing the 10.6 ms / 2.3 ms (total / core)
measured in fig. 7a.  Only the microbenchmarks use this model.
"""

from __future__ import annotations

from typing import Dict

from ..dist.graph import TaskSpec
from ..sim.cluster import Cluster
from ..sim.engine import Simulator
from .base import Platform
from .calibration import FAASM_CORE, FAASM_INVOKE


class Faasm(Platform):
    """Wasm FaaS with host-interface state sharing."""

    name = "Faasm"

    def __init__(self, sim: Simulator, cluster: Cluster, **kwargs):
        super().__init__(sim, cluster, **kwargs)
        self._outstanding: Dict[str, int] = {
            name: 0 for name in cluster.machine_names()
        }

    def _invoke_proc(self, task: TaskSpec, submitter: str):
        node = min(self._outstanding, key=lambda m: (self._outstanding[m], m))
        machine = self.cluster.machine(node)
        self._outstanding[node] += 1
        try:
            yield self.cluster.network.message(submitter, node)
            yield machine.cores.acquire(task.cores)
            yield machine.memory.acquire(task.memory_bytes)
            try:
                # Dispatcher + module activation + host interface setup.
                yield from self._busy(
                    node, "system", task.cores, FAASM_INVOKE - FAASM_CORE
                )
                # State comes through host calls while the core is held.
                started = self.sim.now
                yield self._fetch_all(task.inputs, node)
                self.cluster.accountant.charge(
                    node, "iowait", (self.sim.now - started) * task.cores
                )
                yield from self._busy(node, "system", task.cores, FAASM_CORE)
                yield from self._busy(
                    node, "user", task.cores, task.compute_seconds
                )
            finally:
                machine.memory.release(task.memory_bytes)
                machine.cores.release(task.cores)
        finally:
            self._outstanding[node] -= 1
        self.cluster.add_object(task.output, task.output_size, node)
        return node
