"""The Linux-process isolation point for fig. 7a.

The paper's "Linux" row runs the trivial add as a full process:
``vfork`` + ``exec`` + ``wait``, measured at 449.1 us per execution.  This
module provides both the modeled cost and an *optional real measurement*
(spawning ``/bin/true`` via ``os.posix_spawn``) so the reproduction can
show the constant is the right order of magnitude on the host running the
benchmarks.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from .calibration import STATIC_CALL, VFORK_EXEC, VIRTUAL_CALL


@dataclass(frozen=True)
class InvocationCost:
    """Modeled cost of invoking a trivial function under one mechanism."""

    mechanism: str
    seconds: float


def modeled_costs() -> dict[str, float]:
    """The fig. 7a isolation-mechanism ladder (modeled rows)."""
    return {
        "static": STATIC_CALL,
        "virtual": VIRTUAL_CALL,
        "Linux process": VFORK_EXEC,
    }


def measure_process_spawn(iterations: int = 50) -> float:
    """Actually spawn a trivial process ``iterations`` times; returns the
    mean seconds per spawn.  Used by the fig. 7a bench as a sanity check
    that VFORK_EXEC is the right order of magnitude on this host."""
    target = "/bin/true"
    if not os.path.exists(target):  # pragma: no cover - exotic hosts
        target = "/usr/bin/true"
    start = time.perf_counter()
    for _ in range(iterations):
        pid = os.posix_spawn(target, [target], {})
        os.waitpid(pid, 0)
    return (time.perf_counter() - start) / iterations


def measure_python_call(iterations: int = 100_000) -> float:
    """Mean seconds per direct Python call of a trivial add (the
    reproduction's analog of the paper's 'static' row)."""

    def add(a: int, b: int) -> int:
        return (a + b) % 256

    start = time.perf_counter()
    for i in range(iterations):
        add(i & 0xFF, 100)
    return (time.perf_counter() - start) / iterations
