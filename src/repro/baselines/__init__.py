"""``repro.baselines`` - calibrated models of the comparator systems.

OpenWhisk + MinIO + Kubernetes, Ray (blocking / continuation-passing /
Popen), Pheromone, Faasm, and the Linux-process point, all executing the
same :class:`~repro.dist.graph.JobGraph`s as distributed Fixpoint on the
same simulated clusters.  Every constant lives in
:mod:`repro.baselines.calibration` with provenance notes.
"""

from .base import JobRun, Platform, RunResult
from .calibration import Calibration, DEFAULT_CALIBRATION
from .faasm import Faasm
from .kubernetes import KubeScheduler
from .linuxproc import measure_process_spawn, measure_python_call, modeled_costs
from .minio import MinIO
from .openwhisk import OpenWhisk
from .pheromone import Pheromone
from .ray import RayPlatform

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "Faasm",
    "JobRun",
    "KubeScheduler",
    "MinIO",
    "OpenWhisk",
    "Pheromone",
    "Platform",
    "RayPlatform",
    "RunResult",
    "measure_process_spawn",
    "measure_python_call",
    "modeled_costs",
]
