"""Common machinery for the simulated platforms.

A :class:`Platform` executes a :class:`~repro.dist.graph.JobGraph` on a
:class:`~repro.sim.cluster.Cluster`: it registers the graph's initial data
placements, runs every task as its dependencies complete (each platform
defines its own ``invoke`` process), and reports a :class:`RunResult` with
the makespan and the ``/proc/stat``-style CPU breakdown.

Platform models share helpers for fetching objects (from peer machines,
the client, or the external storage service) and for charging CPU states
while simulated work happens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.errors import SchedulingError
from ..dist.graph import CLIENT, EXTERNAL, JobGraph, TaskSpec
from ..sim.cluster import Cluster
from ..sim.engine import Event, Simulator, all_of
from ..sim.stats import CpuReport, report
from ..sim.storage_service import StorageService
from .calibration import Calibration, DEFAULT_CALIBRATION


@dataclass
class RunResult:
    """Outcome of executing one JobGraph on one platform."""

    platform: str
    makespan: float
    cpu: CpuReport
    task_finish: Dict[str, float] = field(default_factory=dict)
    bytes_transferred: int = 0
    messages: int = 0
    invocations: int = 0

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "platform": self.platform,
            "time_s": round(self.makespan, 3),
        }
        row.update(self.cpu.as_row())
        return row


class Platform:
    """Base class: graph loading, dependency-driven execution, reporting."""

    name = "base"
    #: Effective object-path throughput per NIC for this platform; used by
    #: :meth:`build` when constructing a cluster (see calibration.py).
    data_bandwidth = DEFAULT_CALIBRATION.tcp_stream_bw

    @classmethod
    def build(
        cls,
        nodes: int = 10,
        cores: int = 32,
        memory_bytes: int = 128 << 30,
        storage_latency: Optional[float] = None,
        seed: int = 0,
        **platform_kwargs,
    ) -> "Platform":
        """A fresh simulator + cluster + platform, NICs at this platform's
        effective data bandwidth.  One build per experiment row."""
        from ..sim.cluster import MachineSpec  # local import, no cycle

        sim = Simulator()
        specs = [
            MachineSpec(
                name=f"node{i}",
                cores=cores,
                memory_bytes=memory_bytes,
                nic_bandwidth=cls.data_bandwidth,
            )
            for i in range(nodes)
        ]
        cluster = Cluster(sim, specs)
        storage = None
        if storage_latency is not None:
            storage = StorageService(sim, response_latency=storage_latency)
        return cls(sim, cluster, storage=storage, seed=seed, **platform_kwargs)

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        calib: Calibration = DEFAULT_CALIBRATION,
        storage: Optional[StorageService] = None,
        seed: int = 0,
        client_bandwidth: Optional[float] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.calib = calib
        self.storage = storage
        self.rng = random.Random(seed)
        self.invocations = 0
        # The client is a network endpoint (uploads, driver round trips).
        if CLIENT not in cluster.network._nics:
            cluster.network.attach(
                CLIENT, client_bandwidth or calib.tcp_stream_bw
            )
        self._task_done: Dict[str, Event] = {}
        # In-flight replica transfers, deduplicated per (object, node): a
        # platform's network worker never fetches the same object to the
        # same place twice concurrently.
        self._inflight_fetches: Dict[tuple, Event] = {}

    # ------------------------------------------------------------------
    # Graph loading

    def load(self, graph: JobGraph) -> None:
        """Register the graph's initial data placements."""
        graph.validate()
        for spec in graph.data.values():
            self.cluster.add_object(spec.name, spec.size, spec.location)

    # ------------------------------------------------------------------
    # Execution driver

    def invoke(self, task: TaskSpec, submitter: str) -> Event:
        """Run one task; the event's value is the machine that ran it.

        Subclasses implement :meth:`_invoke_proc`.
        """
        self.invocations += 1
        return self.sim.process(
            self._invoke_proc(task, submitter), name=f"{self.name}:{task.name}"
        )

    def _invoke_proc(self, task: TaskSpec, submitter: str):
        raise NotImplementedError

    def run(self, graph: JobGraph, submitter: str = CLIENT) -> RunResult:
        """Execute the whole graph; returns makespan and CPU report."""
        self.load(graph)
        start = self.sim.now
        finish_times: Dict[str, float] = {}
        done_events: Dict[str, Event] = {}

        def task_driver(task: TaskSpec):
            deps = graph.dependencies(task)
            if deps:
                yield all_of(self.sim, [done_events[d] for d in deps])
            yield self.invoke(task, submitter)
            finish_times[task.name] = self.sim.now

        for task in graph.topological_order():
            done_events[task.name] = self.sim.process(
                task_driver(task), name=f"driver:{task.name}"
            )
        self.sim.run_until(all_of(self.sim, list(done_events.values())))
        makespan = self.sim.now - start
        cpu = report(
            self.cluster.accountant,
            total_cores=self.cluster.total_cores,
            window_seconds=max(makespan, 1e-12),
        )
        return RunResult(
            platform=self.name,
            makespan=makespan,
            cpu=cpu,
            task_finish=finish_times,
            bytes_transferred=self.cluster.network.bytes_transferred,
            messages=self.cluster.network.messages,
            invocations=self.invocations,
        )

    # ------------------------------------------------------------------
    # Shared helpers (processes)

    def _busy(self, machine: str, state: str, cores: int, seconds: float):
        """Charge ``cores`` in ``state`` on ``machine`` for ``seconds``."""
        token = self.cluster.accountant.begin(machine, state, cores)
        yield self.sim.timeout(seconds)
        self.cluster.accountant.end(token)

    def _fetch(self, obj_name: str, dst: str) -> Event:
        """Make ``obj_name`` resident on ``dst``; returns completion event.

        Concurrent fetches of the same object to the same node share one
        transfer (Fixpoint bundles a dependency once per node; fetching
        it per-invocation is exactly the baseline behaviour modeled
        elsewhere, e.g. MinIO GETs).
        """
        info = self.cluster.object(obj_name)
        if dst in info.locations:
            return self.sim.timeout(0.0, value=0)
        key = (obj_name, dst)
        inflight = self._inflight_fetches.get(key)
        if inflight is not None and not inflight.triggered:
            return inflight
        event = self.sim.process(
            self._fetch_proc(obj_name, dst), name=f"fetch {obj_name}->{dst}"
        )
        self._inflight_fetches[key] = event
        return event

    def _fetch_proc(self, obj_name: str, dst: str):
        info = self.cluster.object(obj_name)
        if dst in info.locations:
            return 0
        if info.locations == {EXTERNAL}:
            if self.storage is None:
                raise SchedulingError(
                    f"{self.name}: object {obj_name!r} is external but no "
                    "storage service is configured"
                )
            yield self.storage.get(info.size)
            info.locations.add(dst)
            return info.size
        yield self.cluster.transfer_object(obj_name, dst)
        return info.size

    def _fetch_all(self, names: Iterable[str], dst: str) -> Event:
        return all_of(self.sim, [self._fetch(n, dst) for n in names])

    def missing_bytes(self, task: TaskSpec, machine: str) -> int:
        return self.cluster.bytes_missing(task.inputs, machine)

    def machine_names(self) -> List[str]:
        return self.cluster.machine_names()
