"""Common machinery for the simulated platforms.

A :class:`Platform` executes a :class:`~repro.dist.graph.JobGraph` on a
:class:`~repro.sim.cluster.Cluster`: it registers the graph's initial data
placements, runs every task as its dependencies complete (each platform
defines its own ``invoke`` process), and reports a :class:`RunResult` with
the makespan and the ``/proc/stat``-style CPU breakdown.

The lifecycle is split so many jobs can share one platform instance:
:meth:`Platform.start` loads a graph and launches its task drivers
without touching the clock, returning a :class:`JobRun` whose ``done``
event an external driver (the classic :meth:`Platform.run`, or
:class:`repro.dist.admission.AdmissionController`) awaits.  Every
completed invocation appends an
:class:`~repro.fixpoint.billing.InvocationMeter` to its job, so
per-tenant bills come from executed work, not synthetic meters.

Platform models share helpers for fetching objects (from peer machines,
the client, or the external storage service) and for charging CPU states
while simulated work happens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.errors import SchedulingError
from ..dist.graph import CLIENT, EXTERNAL, JobGraph, TaskSpec
from ..fixpoint.billing import InvocationMeter
from ..sim.cluster import Cluster
from ..sim.engine import Event, Simulator, all_of
from ..sim.stats import CpuReport, report
from ..sim.storage_service import StorageService
from .calibration import Calibration, DEFAULT_CALIBRATION


@dataclass
class JobRun:
    """One graph in flight on a (possibly shared) platform.

    ``done`` succeeds when every task has finished; ``meters`` holds one
    :class:`InvocationMeter` per completed invocation, in completion
    order - the raw material for pay-for-results vs pay-for-effort
    billing of *executed* work.
    """

    index: int
    job_id: str
    graph: JobGraph
    submitter: str
    started_at: float
    deadline_slack_hours: float = 0.0
    task_finish: Dict[str, float] = field(default_factory=dict)
    meters: List[InvocationMeter] = field(default_factory=list)
    done: Optional[Event] = None


@dataclass
class RunResult:
    """Outcome of executing one JobGraph on one platform."""

    platform: str
    makespan: float
    cpu: CpuReport
    task_finish: Dict[str, float] = field(default_factory=dict)
    bytes_transferred: int = 0
    messages: int = 0
    invocations: int = 0

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "platform": self.platform,
            "time_s": round(self.makespan, 3),
        }
        row.update(self.cpu.as_row())
        return row


class Platform:
    """Base class: graph loading, dependency-driven execution, reporting."""

    name = "base"
    #: Effective object-path throughput per NIC for this platform; used by
    #: :meth:`build` when constructing a cluster (see calibration.py).
    data_bandwidth = DEFAULT_CALIBRATION.tcp_stream_bw

    @classmethod
    def build(
        cls,
        nodes: int = 10,
        cores: int = 32,
        memory_bytes: int = 128 << 30,
        storage_latency: Optional[float] = None,
        seed: int = 0,
        **platform_kwargs,
    ) -> "Platform":
        """A fresh simulator + cluster + platform, NICs at this platform's
        effective data bandwidth.  One build per experiment row."""
        from ..sim.cluster import MachineSpec  # local import, no cycle

        sim = Simulator()
        specs = [
            MachineSpec(
                name=f"node{i}",
                cores=cores,
                memory_bytes=memory_bytes,
                nic_bandwidth=cls.data_bandwidth,
            )
            for i in range(nodes)
        ]
        cluster = Cluster(sim, specs)
        storage = None
        if storage_latency is not None:
            storage = StorageService(sim, response_latency=storage_latency)
        return cls(sim, cluster, storage=storage, seed=seed, **platform_kwargs)

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        calib: Calibration = DEFAULT_CALIBRATION,
        storage: Optional[StorageService] = None,
        seed: int = 0,
        client_bandwidth: Optional[float] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.calib = calib
        self.storage = storage
        self.rng = random.Random(seed)
        self.invocations = 0
        # The client is a network endpoint (uploads, driver round trips).
        if CLIENT not in cluster.network._nics:
            cluster.network.attach(
                CLIENT, client_bandwidth or calib.tcp_stream_bw
            )
        self._task_done: Dict[str, Event] = {}
        self._job_seq = 0
        # In-flight replica transfers, deduplicated per (object, node): a
        # platform's network worker never fetches the same object to the
        # same place twice concurrently.
        self._inflight_fetches: Dict[tuple, Event] = {}

    # ------------------------------------------------------------------
    # Graph loading

    def load(self, graph: JobGraph) -> None:
        """Register the graph's initial data placements."""
        graph.validate()
        for spec in graph.data.values():
            self.cluster.add_object(spec.name, spec.size, spec.location)

    # ------------------------------------------------------------------
    # Execution driver

    def invoke(
        self, task: TaskSpec, submitter: str, job: Optional[JobRun] = None
    ) -> Event:
        """Run one task; the event's value is the machine that ran it.

        Subclasses implement :meth:`_invoke_proc`; engines that keep
        per-job state (scheduler views) override :meth:`invoke` itself to
        thread ``job`` through.
        """
        self.invocations += 1
        return self.sim.process(
            self._invoke_proc(task, submitter), name=f"{self.name}:{task.name}"
        )

    def _invoke_proc(self, task: TaskSpec, submitter: str):
        raise NotImplementedError

    def _meter(
        self, task: TaskSpec, began: float, job: JobRun
    ) -> InvocationMeter:
        """What the platform measured for one completed invocation.

        ``wall_seconds`` spans dependency-ready to function-return: the
        whole slice a provisioned pod would have occupied (delegation,
        fetches, queueing) - exactly what pay-for-effort charges for.
        ``user_cpu_seconds`` is the declared compute alone (core-seconds
        the function itself retired); platform overheads like
        oversubscription context switches are the provider's fault and
        stay out of the pay-for-results meter.
        """
        input_bytes = sum(
            self.cluster.object(name).size for name in task.inputs
        )
        return InvocationMeter(
            input_bytes=input_bytes,
            reserved_memory_bytes=task.memory_bytes,
            user_cpu_seconds=task.compute_seconds * task.cores,
            bytes_mapped=input_bytes + task.output_size,
            wall_seconds=self.sim.now - began,
            deadline_slack_hours=job.deadline_slack_hours,
        )

    def start(
        self,
        graph: JobGraph,
        submitter: str = CLIENT,
        deadline_slack_hours: float = 0.0,
    ) -> JobRun:
        """Load ``graph`` and launch its task drivers *without* running
        the clock - the multi-job entry point.

        Several jobs may be in flight at once on one platform; their
        invocations interleave on the shared cluster and each completed
        one meters into its own :class:`JobRun`.  An external driver
        (:meth:`run`, or the admission layer) advances the simulator and
        awaits ``job.done``.
        """
        self.load(graph)
        job = JobRun(
            index=self._job_seq,
            job_id=f"job{self._job_seq}",
            graph=graph,
            submitter=submitter,
            started_at=self.sim.now,
            deadline_slack_hours=deadline_slack_hours,
        )
        self._job_seq += 1
        done_events: Dict[str, Event] = {}

        def task_driver(task: TaskSpec):
            deps = graph.dependencies(task)
            if deps:
                yield all_of(self.sim, [done_events[d] for d in deps])
            began = self.sim.now
            yield self.invoke(task, submitter, job)
            job.task_finish[task.name] = self.sim.now
            job.meters.append(self._meter(task, began, job))

        for task in graph.topological_order():
            done_events[task.name] = self.sim.process(
                task_driver(task), name=f"driver:{job.job_id}:{task.name}"
            )
        job.done = all_of(self.sim, list(done_events.values()))
        return job

    def run(self, graph: JobGraph, submitter: str = CLIENT) -> RunResult:
        """Execute the whole graph; returns makespan and CPU report."""
        job = self.start(graph, submitter)
        self.sim.run_until(job.done)
        makespan = self.sim.now - job.started_at
        cpu = report(
            self.cluster.accountant,
            total_cores=self.cluster.total_cores,
            window_seconds=max(makespan, 1e-12),
        )
        return RunResult(
            platform=self.name,
            makespan=makespan,
            cpu=cpu,
            task_finish=dict(job.task_finish),
            bytes_transferred=self.cluster.network.bytes_transferred,
            messages=self.cluster.network.messages,
            invocations=self.invocations,
        )

    # ------------------------------------------------------------------
    # Shared helpers (processes)

    def _busy(self, machine: str, state: str, cores: int, seconds: float):
        """Charge ``cores`` in ``state`` on ``machine`` for ``seconds``.

        Uses :meth:`CpuAccountant.track` so a process interrupted at the
        yield (engine throw/close) still closes its token - the interval
        actually held is charged instead of vanishing.
        """
        with self.cluster.accountant.track(machine, state, cores):
            yield self.sim.timeout(seconds)

    def _fetch(self, obj_name: str, dst: str) -> Event:
        """Make ``obj_name`` resident on ``dst``; returns completion event.

        Concurrent fetches of the same object to the same node share one
        transfer (Fixpoint bundles a dependency once per node; fetching
        it per-invocation is exactly the baseline behaviour modeled
        elsewhere, e.g. MinIO GETs).
        """
        info = self.cluster.object(obj_name)
        if dst in info.locations:
            return self.sim.timeout(0.0, value=0)
        key = (obj_name, dst)
        inflight = self._inflight_fetches.get(key)
        if inflight is not None and not inflight.triggered:
            return inflight
        event = self.sim.process(
            self._fetch_proc(obj_name, dst), name=f"fetch {obj_name}->{dst}"
        )
        self._inflight_fetches[key] = event
        return event

    def _fetch_proc(self, obj_name: str, dst: str):
        info = self.cluster.object(obj_name)
        if dst in info.locations:
            return 0
        if info.locations == {EXTERNAL}:
            if self.storage is None:
                raise SchedulingError(
                    f"{self.name}: object {obj_name!r} is external but no "
                    "storage service is configured"
                )
            yield self.storage.get(info.size)
            info.locations.add(dst)
            return info.size
        yield self.cluster.transfer_object(obj_name, dst)
        return info.size

    def _fetch_all(self, names: Iterable[str], dst: str) -> Event:
        return all_of(self.sim, [self._fetch(n, dst) for n in names])

    def missing_bytes(self, task: TaskSpec, machine: str) -> int:
        return self.cluster.bytes_missing(task.inputs, machine)

    def machine_names(self) -> List[str]:
        return self.cluster.machine_names()
