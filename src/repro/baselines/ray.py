"""The Ray baseline, in the paper's three usage styles (section 5.1).

* **blocking** - user functions call ``ray.get`` *inside* the task: the
  worker claims its core, then pulls each dependency while occupying it
  (iowait).  Because arguments are bare ObjectRefs resolved inside the
  function, the scheduler has no locality information at placement time.
* **cps** (continuation-passing) - every dependency boundary becomes a new
  task whose arguments Ray pulls *before* assigning a worker; placement is
  locality-aware (the paper gives Ray the same location information as
  Fixpoint).  The cost is one full task overhead per continuation plus an
  ownership round trip to resolve each nested ObjectRef.
* **popen** - user functions are Linux executables launched via Popen,
  reading from and writing to MinIO; binaries start on a single node and
  are loaded on first use per node (fig. 10's "Ray + MinIO").

Every style pays the driver's serial submission cost (a single Python
process pushing task specs) and the per-task overhead measured in
fig. 7a.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core.errors import SchedulingError
from ..dist.graph import JobGraph, TaskSpec
from ..sim.cluster import Cluster
from ..sim.engine import Simulator
from ..sim.resources import Resource
from .base import Platform
from .calibration import (
    PY_DESER_BW,
    RAY_DRIVER_SUBMIT,
    RAY_LOCAL_GET,
    RAY_OWNER_RTT,
    RAY_PULL_BW,
    RAY_RESULT_STORE,
    RAY_TASK_OVERHEAD,
    VFORK_EXEC,
)
from .calibration import MINIO_STREAM_BW
from .minio import MinIO

STYLES = ("blocking", "cps", "popen")


class RayPlatform(Platform):
    """Ray with a distributed plasma object store."""

    data_bandwidth = RAY_PULL_BW

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        style: str = "blocking",
        minio: Optional[MinIO] = None,
        binary_home: Optional[str] = None,
        binary_size: int = 100 << 20,
        **kwargs,
    ):
        super().__init__(sim, cluster, **kwargs)
        if style not in STYLES:
            raise SchedulingError(f"unknown Ray style {style!r}")
        self.style = style
        self.name = {
            "blocking": "Ray (blocking)",
            "cps": "Ray (continuation-passing)",
            "popen": "Ray + MinIO",
        }[style]
        # The driver is one Python process: submissions serialize.
        self._driver = Resource(sim, 1, name="ray.driver")
        self._head = cluster.machine_names()[0]
        self.minio = minio
        if style == "popen" and minio is None:
            self.minio = MinIO(sim, cluster)
        # Popen style: executables start on one machine, loaded on demand.
        self._binary_home = binary_home or self._head
        self._binary_size = binary_size
        self._binaries_loaded: Set[str] = {self._binary_home}
        self._outstanding: Dict[str, int] = {
            name: 0 for name in cluster.machine_names()
        }

    # ------------------------------------------------------------------

    def load(self, graph: JobGraph) -> None:
        if self.style == "popen":
            graph.validate()
            assert self.minio is not None
            for spec in graph.data.values():
                node = self.minio.preload(spec.name, spec.size)
                self.cluster.add_object(spec.name, spec.size, node)
        else:
            super().load(graph)

    def _place(self, task: TaskSpec) -> str:
        if self.style == "cps":
            # Locality-aware: Ray sees the same placement info as Fixpoint.
            names = self.cluster.machine_names()
            return min(
                names,
                key=lambda m: (
                    self.missing_bytes(task, m),
                    self._outstanding[m],
                    m,
                ),
            )
        if self.style == "popen":
            # Popen executables read from MinIO; schedule least-loaded.
            return min(
                self._outstanding, key=lambda m: (self._outstanding[m], m)
            )
        # Blocking: arguments are opaque refs; no locality information.
        return self.rng.choice(self.cluster.machine_names())

    def _invoke_proc(self, task: TaskSpec, submitter: str):
        # Driver-side serialization: pickle + submit, one task at a time.
        yield self._driver.acquire(1)
        yield self.sim.timeout(RAY_DRIVER_SUBMIT)
        self._driver.release(1)
        node = self._place(task)
        self._outstanding[node] += 1
        try:
            yield self.cluster.network.message(submitter, node)
            if self.style == "blocking":
                yield from self._run_blocking(task, node)
            elif self.style == "cps":
                yield from self._run_cps(task, node)
            else:
                yield from self._run_popen(task, node)
        finally:
            self._outstanding[node] -= 1
        return node

    # ------------------------------------------------------------------

    def _deser_seconds(self, task: TaskSpec) -> float:
        """Python-side ingest of the input bytes (pickle / numpy copy)."""
        total = sum(self.cluster.object(n).size for n in task.inputs)
        return total / PY_DESER_BW

    def _run_blocking(self, task: TaskSpec, node: str):
        machine = self.cluster.machine(node)
        yield machine.cores.acquire(task.cores)
        yield machine.memory.acquire(task.memory_bytes)
        try:
            yield from self._busy(
                node, "system", task.cores, RAY_TASK_OVERHEAD
            )
            # ray.get inside the function: the core starves while plasma
            # pulls each object.
            started = self.sim.now
            for name in task.inputs:
                yield self._fetch(name, node)
                yield self.sim.timeout(RAY_LOCAL_GET)
            self.cluster.accountant.charge(
                node, "iowait", (self.sim.now - started) * task.cores
            )
            yield from self._busy(
                node, "user", task.cores, self._deser_seconds(task)
            )
            yield from self._busy(node, "user", task.cores, task.compute_seconds)
            yield from self._busy(node, "system", task.cores, RAY_RESULT_STORE)
        finally:
            machine.memory.release(task.memory_bytes)
            machine.cores.release(task.cores)
        self.cluster.add_object(task.output, task.output_size, node)

    def _run_cps(self, task: TaskSpec, node: str):
        # Resolving each nested ObjectRef costs an ownership round trip.
        for name in task.inputs:
            if self.cluster.object(name).locations != {node}:
                yield self.sim.timeout(RAY_OWNER_RTT)
        # The raylet pulls arguments before a worker is assigned: no core
        # or memory is held during the fetch (Ray's own late binding).
        yield self._fetch_all(task.inputs, node)
        machine = self.cluster.machine(node)
        yield machine.cores.acquire(task.cores)
        yield machine.memory.acquire(task.memory_bytes)
        try:
            yield from self._busy(node, "system", task.cores, RAY_TASK_OVERHEAD)
            yield from self._busy(
                node, "user", task.cores, self._deser_seconds(task)
            )
            yield from self._busy(node, "user", task.cores, task.compute_seconds)
            yield from self._busy(node, "system", task.cores, RAY_RESULT_STORE)
        finally:
            machine.memory.release(task.memory_bytes)
            machine.cores.release(task.cores)
        self.cluster.add_object(task.output, task.output_size, node)

    def _run_popen(self, task: TaskSpec, node: str):
        assert self.minio is not None
        machine = self.cluster.machine(node)
        # Load the executable on first use (binaries live on one machine).
        if node not in self._binaries_loaded:
            self._binaries_loaded.add(node)
            yield self.cluster.network.transfer(
                self._binary_home, node, self._binary_size
            )
        yield machine.cores.acquire(task.cores)
        yield machine.memory.acquire(task.memory_bytes)
        try:
            yield from self._busy(node, "system", task.cores, RAY_TASK_OVERHEAD)
            yield from self._busy(node, "system", task.cores, VFORK_EXEC)
            started = self.sim.now
            for name in task.inputs:
                yield self.minio.get(name, node)
            self.cluster.accountant.charge(
                node, "iowait", (self.sim.now - started) * task.cores
            )
            yield from self._busy(node, "user", task.cores, task.compute_seconds)
            started = self.sim.now
            yield self.minio.put(task.output, task.output_size, node)
            self.cluster.accountant.charge(
                node, "iowait", (self.sim.now - started) * task.cores
            )
        finally:
            machine.memory.release(task.memory_bytes)
            machine.cores.release(task.cores)
        holder = self.minio.node_for(task.output)
        self.cluster.add_object(task.output, task.output_size, holder)


class RayPopenMinIO(RayPlatform):
    """Fig. 10's "Ray + MinIO": Linux executables via Popen, data in MinIO.

    The data path is MinIO's HTTP GET/PUT - slower per stream than Ray's
    plasma pulls - so the cluster NICs are provisioned at MinIO's
    effective throughput.
    """

    name = "Ray + MinIO"
    data_bandwidth = MINIO_STREAM_BW

    def __init__(self, sim: Simulator, cluster: Cluster, **kwargs):
        kwargs.setdefault("style", "popen")
        super().__init__(sim, cluster, **kwargs)
