"""Every cost constant used by the platform models, with provenance.

Constants fall in three classes:

* **paper-measured** - taken directly from the paper's microbenchmarks
  (fig. 7a per-invocation overheads, fig. 7b RTTs, fig. 8a storage
  latency).  These anchor each model.
* **public-knowledge** - hardware/service characteristics of the paper's
  testbed (m5.8xlarge NICs, EBS gp3, single-stream TCP throughput on EC2,
  MinIO GET throughput).  Sourced from vendor docs and common measurement.
* **calibrated** - effective data-path throughputs per system, chosen so
  the model reproduces the paper's end-to-end numbers while staying
  physically plausible; each is annotated.  The *shape* conclusions
  (orderings, crossovers) are robust to these within wide bands - see
  ``benchmarks/`` which asserts bands, not point values.

All times in seconds, sizes in bytes, rates in bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass

# ----------------------------------------------------------------------
# Fig. 7a: per-invocation overheads (paper-measured)

STATIC_CALL = 1.8e-9  # static C function call
VIRTUAL_CALL = 12.2e-9  # C++ virtual call
FIXPOINT_INVOKE = 1.46e-6  # Fixpoint codelet dispatch
VFORK_EXEC = 449.1e-6  # Linux vfork+exec+wait of a trivial program
PHEROMONE_INVOKE = 1.05e-3  # Pheromone client-triggered invocation
PHEROMONE_CORE = 27.0e-6  # Pheromone's internally-timed core execution
RAY_TASK_OVERHEAD = 1.29e-3  # Ray remote-function round trip (warm worker)
FAASM_INVOKE = 10.6e-3  # Faasm dispatch + Wasm module activation
FAASM_CORE = 2.3e-3  # Faasm internally-timed execution
OPENWHISK_INVOKE = 30.7e-3  # OpenWhisk warm action end-to-end
OPENWHISK_CORE = 5.2e-3  # OpenWhisk internally-timed action body

# Decomposition of the OpenWhisk warm path (public architecture:
# nginx -> controller -> Kafka -> invoker -> container /run).  The parts
# sum to OPENWHISK_INVOKE; only the split is estimated.
OW_GATEWAY = 2.0e-3
OW_CONTROLLER = 6.5e-3
OW_KAFKA = 5.0e-3
OW_INVOKER = 7.0e-3
OW_RESULT_PATH = 5.0e-3
assert abs(
    (OW_GATEWAY + OW_CONTROLLER + OW_KAFKA + OW_INVOKER + OW_RESULT_PATH)
    + OPENWHISK_CORE
    - OPENWHISK_INVOKE
) < 1e-9

# Ray decomposition (public architecture: pickle -> raylet -> worker).
RAY_PICKLE = 0.15e-3
RAY_RAYLET_DISPATCH = 0.55e-3
RAY_WORKER_HANDOFF = 0.35e-3
RAY_RESULT_STORE = 0.24e-3
assert abs(
    RAY_PICKLE + RAY_RAYLET_DISPATCH + RAY_WORKER_HANDOFF + RAY_RESULT_STORE
    - RAY_TASK_OVERHEAD
) < 1e-9

# ----------------------------------------------------------------------
# Fig. 7b: chain orchestration (paper-measured RTTs)

RTT_NEARBY = 0.35e-3  # client in the same EC2 cluster
RTT_REMOTE = 21.3e-3  # the paper's remote client
#: Pheromone executes a pre-declared workflow step locally (its 27 us core
#: plus bucket-trigger bookkeeping).  Calibrated from fig. 7b: 500 steps
#: in ~17.6 ms - RTT => ~34 us/step.
PHEROMONE_CHAIN_STEP = 34e-6
#: Client-side cost to build + serialize one Fix object (handle hashing,
#: tree packing).  Calibrated from fig. 7b nearby: 5.0 ms for a 500-thunk
#: chain => ~8 us/object client side + 1.46 us/invocation server side.
FIX_CLIENT_OBJECT = 8e-6

# ----------------------------------------------------------------------
# Storage / network data paths

#: Remote storage response latency for small objects (paper section 5.3.1).
S3_LATENCY = 0.150
#: m5.8xlarge NIC line rate: 10 Gb/s.
NIC_LINE_RATE = 1.25e9
#: Effective single-stream TCP throughput on EC2 for bulk object pulls
#: (window/latency limited; ~2.4 Gb/s).  Calibrated: makes Fixpoint
#: (no locality) spend ~31 s moving 885 non-local 100 MiB shards, matching
#: fig. 8b.  Physically plausible for one TCP stream per pull.
TCP_STREAM_BW = 0.30e9
#: MinIO GET/PUT effective throughput per object stream (HTTP + erasure
#: coding overhead; public benchmarks show 150-250 MB/s per stream).
#: Calibrated against fig. 8b's OpenWhisk row.
MINIO_STREAM_BW = 0.15e9
#: Pheromone's data path to durable storage (its own KVS client; parallel
#: range reads).  Calibrated against fig. 8b's Pheromone map phase.
PHEROMONE_STREAM_BW = 0.22e9
#: Ray plasma object pulls use chunked parallel streams (faster than one
#: TCP stream).  Calibrated against fig. 8b's Ray (blocking) row.
RAY_PULL_BW = 0.60e9
#: In-memory scan rate of the count-string operator (SIMD substring scan
#: incl. page-cache read): calibrated so Fixpoint's fig. 8b time lands at
#: ~3 s for 984 x 100 MiB shards on 320 cores.
MEMORY_SCAN_BW = 0.157e9
#: Local page-cache / plasma read bandwidth.
LOCAL_READ_BW = 3.0e9
#: Python-side deserialization/copy of bulk objects (Ray worker ingest).
PY_DESER_BW = 0.35e9

# ----------------------------------------------------------------------
# Ray details

#: A ray.get of a local plasma object from Python (IPC + handle).
RAY_LOCAL_GET = 0.4e-3
#: Driver-side serial submission cost per task (fig. 8b: the driver is a
#: single Python process pushing ~2,000 task specs).
RAY_DRIVER_SUBMIT = 1.0e-3
#: Continuation-passing adds a driver/owner round trip per nested
#: ObjectRef resolution (ownership protocol).
RAY_OWNER_RTT = 0.7e-3

# ----------------------------------------------------------------------
# OpenWhisk / Kubernetes details

#: Creating a pod/container for an action (K8s factory; fig. 10 includes
#: these, fig. 7a/8b use warm pools).
OW_COLD_START = 0.9
#: Docker-image actions (fig. 10: libclang/liblld exceed OpenWhisk's
#: inline binary limit) pull their image to each node on first use.
OW_IMAGE_BYTES = 1_200 << 20
#: K8s scheduling decision per pod.
K8S_SCHEDULE = 5e-3
#: MinIO per-request overhead on top of the stream transfer.
MINIO_REQUEST_OVERHEAD = 2.0e-3

# ----------------------------------------------------------------------
# Fixpoint distributed runtime details

#: Oversubscription factor for the "internal I/O" ablations (fig. 8a uses
#: 200 schedulable cores on a 32-core box; fig. 8b uses 128 threads on 31).
INTERNAL_IO_CORES_8A = 200
INTERNAL_IO_THREADS_8B = 128
#: Throughput penalty from oversubscribing CPUs (context-switch and cache
#: pressure); the paper measures 7.5% on fig. 8b.
OVERSUBSCRIPTION_PENALTY = 0.075
#: Per-invocation cost of the *blocking* read path: issuing the GET from
#: inside the reserved worker and waking it through the (oversubscribed)
#: run queue when data arrives.  Calibrated from fig. 8a's internal-I/O
#: residual: 2638 ms total - 16 waves x 150 ms - user - system leaves
#: ~238 ms across 1,024 invocations => ~0.23 ms each.  Externalized I/O
#: has no analog: network workers deliver resident data to a core that
#: binds exactly once.
INTERNAL_IO_RESUME = 0.23e-3

# ----------------------------------------------------------------------
# B+-tree experiment (fig. 9) data-path constants

#: First-touch read of node data from local disk (EBS gp3-class).
DISK_LATENCY = 0.5e-3
DISK_BW = 0.30e9
#: Content verification (BLAKE3-class hashing) of fetched data.
HASH_BW = 1.5e9
#: Fixpoint handle/tree parse per node visit (beyond FIXPOINT_INVOKE).
FIX_NODE_PARSE = 20e-6
#: Ray task for one CPS step of the B+-tree walk: task overhead plus the
#: ownership round trip plus result-ref plumbing (calibrated to fig. 9's
#: ~50x at arity 2^6).
RAY_CPS_STEP_EXTRA = 3.3e-3
#: Ray blocking-get of one node component (plasma IPC + deserialization
#: floor; calibrated to fig. 9's ~22x at arity 2^6).
RAY_BLOCKING_GET = 1.9e-3


@dataclass(frozen=True)
class Calibration:
    """A bundle of the tunable constants, overridable per experiment."""

    fixpoint_invoke: float = FIXPOINT_INVOKE
    ray_task_overhead: float = RAY_TASK_OVERHEAD
    openwhisk_invoke: float = OPENWHISK_INVOKE
    pheromone_invoke: float = PHEROMONE_INVOKE
    faasm_invoke: float = FAASM_INVOKE
    vfork_exec: float = VFORK_EXEC
    tcp_stream_bw: float = TCP_STREAM_BW
    minio_stream_bw: float = MINIO_STREAM_BW
    ray_pull_bw: float = RAY_PULL_BW
    memory_scan_bw: float = MEMORY_SCAN_BW
    s3_latency: float = S3_LATENCY


DEFAULT_CALIBRATION = Calibration()
