"""The OpenWhisk + MinIO + Kubernetes baseline.

Models the classic FaaS pipeline the paper deploys (section 5.1):

  client -> API gateway -> controller -> Kafka -> invoker -> container

with per-invocation overhead decomposed from the paper's measured 30.7 ms
warm path (fig. 7a).  Crucially, the data path is *internal*: the function
claims its pod's CPU and memory at admission, then GETs inputs from MinIO
while occupying them (iowait), computes, and PUTs its output back to
MinIO.  Placement is Kubernetes': least-loaded, data-oblivious.
"""

from __future__ import annotations

from ..dist.graph import JobGraph, TaskSpec
from ..sim.cluster import Cluster
from ..sim.engine import Simulator
from .base import Platform
from .calibration import (
    MINIO_STREAM_BW,
    OPENWHISK_CORE,
    OW_IMAGE_BYTES,
    OW_CONTROLLER,
    OW_GATEWAY,
    OW_INVOKER,
    OW_KAFKA,
    OW_RESULT_PATH,
)
from .kubernetes import KubeScheduler
from .minio import MinIO


class OpenWhisk(Platform):
    """OpenWhisk on K8s with MinIO as the data plane."""

    name = "OpenWhisk + MinIO + K8s"
    data_bandwidth = MINIO_STREAM_BW

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        warm: bool = True,
        per_invocation_pods: bool = False,
        **kwargs,
    ):
        super().__init__(sim, cluster, **kwargs)
        self.minio = MinIO(sim, cluster)
        self.k8s = KubeScheduler(
            sim, cluster, per_invocation_pods=per_invocation_pods
        )
        self.warm = warm
        self._controller = cluster.machine_names()[0]
        # Docker-image actions pull their image per node on first use; the
        # registry is an external endpoint at NIC line rate (the pull's
        # real cost is the receiving node's data path).
        self._registry = "ow-registry"
        cluster.network.attach(self._registry, 1.25e9)
        self._images: dict[tuple, object] = {}

    # ------------------------------------------------------------------

    def load(self, graph: JobGraph) -> None:
        """All input data starts in MinIO (the paper stores the Wikipedia
        shards and compile inputs there for OpenWhisk)."""
        graph.validate()
        for spec in graph.data.values():
            node = self.minio.preload(spec.name, spec.size)
            self.cluster.add_object(spec.name, spec.size, node)
        if self.warm:
            for task in graph.tasks.values():
                self.k8s.prewarm_everywhere(task.fn)

    def _invoke_proc(self, task: TaskSpec, submitter: str):
        # Control path: gateway -> controller -> Kafka; charged as system
        # time on the controller node.
        pre = OW_GATEWAY + OW_CONTROLLER + OW_KAFKA
        yield self.cluster.network.message(submitter, self._controller)
        yield from self._busy(self._controller, "system", 1, pre)
        node = self.k8s.place()
        machine = self.cluster.machine(node)
        try:
            if not self.warm:
                yield self._pull_image(task.fn, node)
            # The pod's resources are reserved at scheduling time; the
            # container then boots while holding them (internal I/O from
            # the very first moment).
            yield machine.cores.acquire(task.cores)
            yield machine.memory.acquire(task.memory_bytes)
            try:
                started = self.sim.now
                yield self.k8s.pod_start(task.fn, node)
                self.cluster.accountant.charge(
                    node, "iowait", (self.sim.now - started) * task.cores
                )
                yield from self._busy(node, "system", task.cores, OW_INVOKER)
                # GET every input from MinIO while occupying the pod.
                started = self.sim.now
                for name in task.inputs:
                    yield self.minio.get(name, node)
                self.cluster.accountant.charge(
                    node, "iowait", (self.sim.now - started) * task.cores
                )
                yield from self._busy(
                    node, "system", task.cores, OPENWHISK_CORE
                )
                yield from self._busy(
                    node, "user", task.cores, task.compute_seconds
                )
                # PUT the output back to MinIO, still inside the pod.
                started = self.sim.now
                yield self.minio.put(task.output, task.output_size, node)
                self.cluster.accountant.charge(
                    node, "iowait", (self.sim.now - started) * task.cores
                )
            finally:
                machine.memory.release(task.memory_bytes)
                machine.cores.release(task.cores)
            yield from self._busy(self._controller, "system", 1, OW_RESULT_PATH)
        finally:
            self.k8s.pod_finished(node)
        holder = self.minio.node_for(task.output)
        self.cluster.add_object(task.output, task.output_size, holder)
        return node

    def _pull_image(self, function: str, node: str):
        """Pull the action's Docker image on first use (deduplicated)."""
        key = (function, node)
        pull = self._images.get(key)
        if pull is None:
            pull = self.cluster.network.transfer(
                self._registry, node, OW_IMAGE_BYTES
            )
            self._images[key] = pull
        return pull
