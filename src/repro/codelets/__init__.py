"""``repro.codelets`` - the trusted toolchain, linker, and sandbox.

Mirrors Fixpoint's ahead-of-time compilation architecture (paper section
4.1): untrusted function source passes through a validating toolchain,
is stored as content-addressed codelet blobs, and is linked in-memory
against the Fix API before any invocation runs.
"""

from .linker import Entrypoint, LinkedCodelet, Linker
from .sandbox import ENTRYPOINT, SAFE_BUILTINS, forbidden_names, seal_globals, validate_source
from .stdlib import SOURCES, blob_int, compile_stdlib, int_blob
from .toolchain import MAGIC, CodeletImage, Toolchain, is_codelet_blob

__all__ = [
    "CodeletImage",
    "ENTRYPOINT",
    "Entrypoint",
    "LinkedCodelet",
    "Linker",
    "MAGIC",
    "SAFE_BUILTINS",
    "SOURCES",
    "Toolchain",
    "blob_int",
    "compile_stdlib",
    "forbidden_names",
    "int_blob",
    "is_codelet_blob",
    "seal_globals",
    "validate_source",
]
