"""The ahead-of-time trusted toolchain (paper section 4.1.1).

The original Fixpoint compiles Wasm modules to x86-64 machine codelets via
wasm2c + libclang + liblld, producing ELF files stored as Fix data.  Our
analog "compiles" deterministic Python source into a *codelet blob*: a
self-describing Fix Blob holding the validated source, stored
content-addressed in a repository.  The toolchain runs entirely ahead of
time - nothing it does is on the invocation critical path.

Codelet blob format::

    b"FIXCODELET\\x00" [u16 name length] [name utf-8] [source utf-8]

The blob's content handle *is* the function's identity: two copies of the
same source anywhere in the system share one handle, so code moves around
the cluster exactly like data.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..core.errors import NotAFunctionError, SandboxError
from ..core.handle import Handle
from ..core.storage import Repository
from .sandbox import validate_source

MAGIC = b"FIXCODELET\x00"
_NAME_LEN = struct.Struct("<H")


@dataclass(frozen=True)
class CodeletImage:
    """A parsed codelet blob: the unit the linker consumes."""

    name: str
    source: str

    def pack(self) -> bytes:
        name_bytes = self.name.encode("utf-8")
        return MAGIC + _NAME_LEN.pack(len(name_bytes)) + name_bytes + self.source.encode(
            "utf-8"
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "CodeletImage":
        if not raw.startswith(MAGIC):
            raise NotAFunctionError("blob is not a codelet (bad magic)")
        offset = len(MAGIC)
        (name_len,) = _NAME_LEN.unpack_from(raw, offset)
        offset += _NAME_LEN.size
        name = raw[offset : offset + name_len].decode("utf-8")
        source = raw[offset + name_len :].decode("utf-8")
        return cls(name=name, source=source)


def is_codelet_blob(raw: bytes) -> bool:
    return raw.startswith(MAGIC)


class Toolchain:
    """Compiles codelet source into content-addressed codelet blobs."""

    def __init__(self, repo: Repository):
        self.repo = repo
        self.compiled = 0

    def compile(self, source: str, name: str = "codelet") -> Handle:
        """Validate ``source`` and store it as a codelet blob.

        Raises :class:`~repro.core.errors.SandboxError` when the source
        violates the sandbox rules; nothing invalid is ever stored.
        """
        validate_source(source, source_name=name)
        image = CodeletImage(name=name, source=source)
        handle = self.repo.put_blob(image.pack())
        self.compiled += 1
        return handle

    def compile_many(self, sources: dict[str, str]) -> dict[str, Handle]:
        """Compile a mapping of name -> source; returns name -> handle."""
        return {name: self.compile(src, name) for name, src in sources.items()}

    def recompile_check(self, handle: Handle) -> CodeletImage:
        """Re-validate an existing codelet blob (defense in depth)."""
        raw = self.repo.get_blob(handle).data
        image = CodeletImage.unpack(raw)
        try:
            validate_source(image.source, source_name=image.name)
        except SandboxError as exc:
            raise SandboxError(
                f"stored codelet {image.name!r} failed re-validation: {exc}"
            ) from exc
        return image
