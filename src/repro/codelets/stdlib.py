"""Built-in codelets: the procedures from the paper's figures.

Sources here are written against the Table-1 API and compiled by the
trusted toolchain like any user code.  Includes the paper's running
examples: the trivial ``add`` of two 8-bit integers (fig. 7a), the ``if``
procedure (fig. 2 / Algorithm 1), the recursive ``fib`` (fig. 3 /
Algorithm 2), and the ``increment`` used by the 500-function chain
(fig. 7b).

Integers cross codelet boundaries as 8-byte little-endian Blobs (which are
literals, so they ride inside handles for free).
"""

from __future__ import annotations

from ..core.handle import Handle
from ..core.storage import Repository
from .toolchain import Toolchain

ADD_U8_SOURCE = '''\
"""Add two 8-bit integers: the paper's fig. 7a microbenchmark function."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    a = fix.read_blob(entries[2])
    b = fix.read_blob(entries[3])
    total = (int.from_bytes(a, "little") + int.from_bytes(b, "little")) % 256
    return fix.create_blob(total.to_bytes(1, "little"))
'''

ADD_SOURCE = '''\
"""Add two little-endian integers of any width (used by fib)."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    a = int.from_bytes(fix.read_blob(entries[2]), "little")
    b = int.from_bytes(fix.read_blob(entries[3]), "little")
    return fix.create_blob((a + b).to_bytes(8, "little"))
'''

IDENTITY_SOURCE = '''\
"""Return the (single) argument handle unchanged."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    return entries[2]
'''

INCREMENT_SOURCE = '''\
"""Increment a little-endian integer by one (fig. 7b chain stage)."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    value = int.from_bytes(fix.read_blob(entries[2]), "little")
    return fix.create_blob((value + 1).to_bytes(8, "little"))
'''

IF_SOURCE = '''\
"""Algorithm 1: select one of two Thunks based on a predicate.

The unselected Thunk - and its entire data footprint - is never loaded.
"""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    pred = fix.read_blob(entries[2])
    branch_true = entries[3]
    branch_false = entries[4]
    if any(pred):
        return branch_true
    return branch_false
'''

FIB_SOURCE = '''\
"""Algorithm 2: Fibonacci via recursive Thunks and a tail call to add."""

def _fix_apply(fix, input):
    entries = fix.read_tree(input)
    rlimit = entries[0]
    fib = entries[1]
    add = entries[2]
    x = entries[3]
    n = int.from_bytes(fix.read_blob(x), "little")
    if n == 0 or n == 1:
        return fix.create_blob(n.to_bytes(8, "little"))
    x1 = fix.create_blob((n - 1).to_bytes(8, "little"))
    t1 = fix.create_tree([rlimit, fib, add, x1])
    e1 = fix.strict(fix.application(t1))
    x2 = fix.create_blob((n - 2).to_bytes(8, "little"))
    t2 = fix.create_tree([rlimit, fib, add, x2])
    e2 = fix.strict(fix.application(t2))
    tsum = fix.create_tree([rlimit, add, e1, e2])
    return fix.application(tsum)
'''

#: name -> source for every built-in codelet.
SOURCES = {
    "add_u8": ADD_U8_SOURCE,
    "add": ADD_SOURCE,
    "identity": IDENTITY_SOURCE,
    "increment": INCREMENT_SOURCE,
    "if": IF_SOURCE,
    "fib": FIB_SOURCE,
}


def compile_stdlib(repo: Repository) -> dict[str, Handle]:
    """Compile every built-in codelet into ``repo``; returns name -> handle."""
    toolchain = Toolchain(repo)
    return toolchain.compile_many(SOURCES)


def int_blob(value: int, width: int = 8) -> bytes:
    """Little-endian integer payload, as codelets expect."""
    return value.to_bytes(width, "little")


def blob_int(data: bytes) -> int:
    return int.from_bytes(data, "little")
