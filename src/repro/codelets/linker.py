"""The in-memory linker: codelet blobs -> ready-to-run entrypoints.

Fixpoint contains a small in-memory ELF linker that links codelets against
the Fixpoint API ahead of time, off the critical path (paper section
4.1.1).  Our analog validates + ``compile()``s the codelet source once and
caches the resulting entrypoint keyed by the blob's content - invoking a
linked codelet is then a direct function call, exactly like Fixpoint
jumping to ``_fix_apply``.

Isolation note: each *invocation* executes the module body in a fresh
sealed-globals namespace, so no mutable state survives between
invocations (the sandbox additionally rejects module-level mutable
state, making the re-execution cheap: only ``def`` statements run).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import CodeType
from typing import Callable, Dict

from ..analysis.sync import TrackedLock
from ..core.api import FixAPI
from ..core.errors import CodeletError, FixError, NotAFunctionError
from ..core.handle import Handle
from ..core.storage import Repository
from .sandbox import ENTRYPOINT, seal_globals, validate_source
from .toolchain import CodeletImage

Entrypoint = Callable[[FixAPI, Handle], Handle]


@dataclass
class LinkedCodelet:
    """A codelet ready to run: compiled module code plus metadata."""

    name: str
    handle: Handle
    module_code: CodeType

    def instantiate(self) -> Entrypoint:
        """Fresh entrypoint with a sealed, isolated namespace."""
        env = seal_globals()
        exec(self.module_code, env)  # runs only def-statements (validated)
        entry = env.get(ENTRYPOINT)
        if not callable(entry):
            raise NotAFunctionError(f"codelet {self.name!r} lost its entrypoint")
        return entry

    def run(self, fix: FixAPI, input_handle: Handle) -> Handle:
        """Invoke ``_fix_apply``; wrap escaped exceptions as CodeletError."""
        entry = self.instantiate()
        try:
            result = entry(fix, input_handle)
        except FixError:
            # Platform errors (access violations, resource limits, missing
            # objects) propagate as themselves - they are the runtime
            # speaking, not the codelet.
            raise
        except Exception as exc:  # noqa: BLE001 - user code boundary
            raise CodeletError(
                f"codelet {self.name!r} raised {type(exc).__name__}: {exc}",
                codelet=self.handle,
            ) from exc
        if not isinstance(result, Handle):
            raise CodeletError(
                f"codelet {self.name!r} returned {type(result).__name__}, "
                "expected a Handle",
                codelet=self.handle,
            )
        return result


class Linker:
    """Thread-safe cache of linked codelets, keyed by blob content."""

    def __init__(self, repo: Repository):
        self.repo = repo
        self._lock = TrackedLock("Linker._lock")
        self._cache: Dict[bytes, LinkedCodelet] = {}
        self.links = 0  # number of cold links performed

    def link(self, handle: Handle) -> LinkedCodelet:
        """Link (or fetch the cached link of) the codelet blob at ``handle``."""
        key = handle.content_key()
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        raw = self.repo.get_blob(handle).data
        image = CodeletImage.unpack(raw)
        # Defense in depth: the linker refuses anything the toolchain would.
        validate_source(image.source, source_name=image.name)
        module_code = compile(image.source, f"<codelet:{image.name}>", "exec")
        linked = LinkedCodelet(name=image.name, handle=handle, module_code=module_code)
        with self._lock:
            self._cache.setdefault(key, linked)
            self.links += 1
        return linked

    def prelink(self, handles) -> None:
        """Ahead-of-time link a batch of codelets (off the critical path)."""
        for handle in handles:
            self.link(handle)

    def cache_size(self) -> int:
        with self._lock:
            return len(self._cache)
