"""Determinism and safety validation for codelets.

Fixpoint runs untrusted code in a shared address space by requiring that it
pass through a *trusted toolchain* ahead of time (paper section 4.1.1); the
original uses Wasm -> wasm2c -> clang.  Our analog validates a Python
module's AST and executes it with sealed builtins, guaranteeing the same
three properties the paper needs:

1. **No ambient I/O.**  Imports, ``open``, ``exec`` and friends are
   rejected; the only capability a codelet holds is its ``FixAPI``.
2. **Determinism.**  No clocks, randomness, or salted hashing (``hash`` and
   ``id`` are excluded from the builtins); no shared mutable module state
   (module bodies may only define functions and constants; ``global`` is
   rejected; mutable default arguments are rejected).
3. **Isolation.**  Dunder attribute access (``x.__class__`` escapes) is
   rejected, so a codelet cannot climb out of its namespace.

Validation happens at compile time and again at link time (defense in
depth); nothing is checked on the invocation hot path, mirroring how
Fixpoint jumps directly to a codelet's entry point.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core.errors import SandboxError

ENTRYPOINT = "_fix_apply"

#: Builtins a codelet may use.  Deliberately excludes: open, __import__,
#: exec, eval, compile, input, print, globals, locals, vars, dir, id, hash
#: (salted => nondeterministic across runs), object, type (escape hatches),
#: getattr/setattr/delattr (dunder laundering).
SAFE_BUILTINS = {
    name: __builtins__[name] if isinstance(__builtins__, dict) else getattr(__builtins__, name)
    for name in (
        "abs", "all", "any", "bin", "bool", "bytearray", "bytes", "callable",
        "chr", "dict", "divmod", "enumerate", "filter", "float", "format",
        "frozenset", "hex", "int", "isinstance", "issubclass", "iter", "len",
        "list", "map", "max", "min", "next", "oct", "ord", "pow", "range",
        "repr", "reversed", "round", "set", "slice", "sorted", "str", "sum",
        "tuple", "zip",
        # exceptions a codelet may raise or catch
        "ArithmeticError", "AssertionError", "Exception", "IndexError",
        "KeyError", "LookupError", "OverflowError", "RuntimeError",
        "StopIteration", "TypeError", "ValueError", "ZeroDivisionError",
    )
}

#: Generators (Yield) are allowed: a generator object never outlives its
#: invocation, so it cannot smuggle state - and deterministic replay of
#: generators is how Flatware's Asyncify splits programs at I/O points.
_FORBIDDEN_NODES = (
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.AsyncFunctionDef,
    ast.AsyncFor,
    ast.AsyncWith,
    ast.Await,
)

#: Names rejected outright.  Harmless-but-absent builtins (``print``,
#: ``input``) are *not* listed: the sealed builtins already make them
#: NameErrors, and codelets legitimately use ``input`` as a parameter name
#: (the paper's calling convention).  This list is defense in depth for
#: names that could reach ambient authority or nondeterminism.
_FORBIDDEN_NAMES = frozenset(
    {
        "open", "exec", "eval", "compile", "__import__",
        "globals", "locals", "vars", "dir", "id", "hash", "getattr",
        "setattr", "delattr", "type", "object", "super", "memoryview",
        "breakpoint",
    }
)

_ALLOWED_MODULE_STMTS = (ast.FunctionDef, ast.Assign, ast.AnnAssign, ast.Expr)


class _Validator(ast.NodeVisitor):
    def __init__(self, source_name: str):
        self.source_name = source_name

    def _fail(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", "?")
        raise SandboxError(f"{self.source_name}:{line}: {message}")

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, _FORBIDDEN_NODES):
            self._fail(node, f"forbidden construct: {type(node).__name__}")
        super().generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in _FORBIDDEN_NAMES:
            self._fail(node, f"forbidden name: {node.id}")
        if node.id.startswith("__") and node.id != "__doc__":
            self._fail(node, f"forbidden dunder name: {node.id}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("__"):
            self._fail(node, f"forbidden dunder attribute: .{node.attr}")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.Call)):
                self._fail(
                    default,
                    "mutable default argument (would carry state across "
                    "invocations)",
                )
        self.generic_visit(node)


def _validate_module_body(tree: ast.Module, source_name: str) -> None:
    """Module scope may only hold functions, constants, and docstrings."""
    for stmt in tree.body:
        if not isinstance(stmt, _ALLOWED_MODULE_STMTS):
            raise SandboxError(
                f"{source_name}:{getattr(stmt, 'lineno', '?')}: module scope "
                f"may not contain {type(stmt).__name__}"
            )
        if isinstance(stmt, ast.Expr) and not isinstance(stmt.value, ast.Constant):
            raise SandboxError(
                f"{source_name}:{stmt.lineno}: module-scope expressions must "
                "be docstrings"
            )
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is not None and not _is_constant_expr(value):
                raise SandboxError(
                    f"{source_name}:{stmt.lineno}: module globals must be "
                    "constants (no mutable shared state)"
                )


def _is_constant_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_constant_expr(e) for e in node.elts)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_constant_expr(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_constant_expr(node.left) and _is_constant_expr(node.right)
    return False


def validate_source(source: str, source_name: str = "<codelet>") -> ast.Module:
    """Parse and validate codelet source; returns the AST on success.

    Raises :class:`SandboxError` describing the first violation.
    """
    try:
        tree = ast.parse(source, filename=source_name)
    except SyntaxError as exc:
        raise SandboxError(f"{source_name}: syntax error: {exc}") from exc
    _validate_module_body(tree, source_name)
    _Validator(source_name).visit(tree)
    if not any(
        isinstance(stmt, ast.FunctionDef) and stmt.name == ENTRYPOINT
        for stmt in tree.body
    ):
        raise SandboxError(f"{source_name}: missing entrypoint {ENTRYPOINT}(fix, input)")
    return tree


def seal_globals(extra: dict | None = None) -> dict:
    """A fresh globals dict with only the sealed builtins (plus ``extra``)."""
    env = {"__builtins__": dict(SAFE_BUILTINS)}
    if extra:
        env.update(extra)
    return env


def forbidden_names() -> Iterable[str]:
    return sorted(_FORBIDDEN_NAMES)
