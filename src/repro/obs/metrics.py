"""A thread-safe, low-overhead metrics registry with a pluggable clock.

The paper's whole evaluation is runtime-side measurement - per-invocation
wall/bytes traces (Table 2), CPU-state breakdowns (fig. 8), per-operation
cost models (fig. 9) - and the ROADMAP's throughput work needs scheduler
µs/decision, queue latencies, and persisted ``BENCH_*.json`` curves.
This module is the one place all of that lands: labeled
:class:`Counter`\\ s, :class:`Gauge`\\ s, and fixed-bucket
:class:`Histogram`\\ s owned by a :class:`MetricsRegistry`.

Two properties are load-bearing:

* **Pluggable clock.**  The registry times things through one callable.
  The executing runtime (:mod:`repro.fixpoint.net`) uses wall time
  (``time.perf_counter``); the simulated platform
  (:class:`~repro.dist.engine.FixpointSim`) passes ``lambda: sim.now``
  so every duration a metric observes is *simulated* time - metrics
  stay bit-identical under seeded replay (a property the tests assert),
  exactly like the rest of the deterministic substrate.

* **Off the critical path.**  Updating a metric is one lock acquire and
  a dict write; nothing is formatted, flushed, or exported until someone
  asks (:meth:`MetricsRegistry.export`).  The Lithops invoker/monitor
  split (PAPERS.md) is the pattern: measurement must never serialize the
  hot path it measures.  :class:`NullRegistry` is the control: the same
  API compiled down to no-ops, which the overhead benchmark prices
  against the real thing (<5% on ``scatter`` fan-out is asserted).

Label handling is open-schema: any keyword arguments form a series key,
and one family may hold series with different label sets (the gossip
round counter is bumped unlabeled by the coordinator and per-peer by the
wire path).  Export is deterministic: families and series sort by name
and label key.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.sync import TrackedLock
from ..core.errors import FixError

Clock = Callable[[], float]

#: Series key: sorted ``(label, value)`` pairs.  ``()`` is the unlabeled
#: series every bare ``inc()``/``set()`` touches.
LabelKey = Tuple[Tuple[str, str], ...]


class MetricsError(FixError):
    """Registry misuse (name collisions across metric kinds, bad buckets)."""


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelKey) -> Dict[str, str]:
    return {k: v for k, v in key}


def _format_series(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


#: Default histogram buckets (seconds): spans the microsecond-scale
#: scheduler decisions of fig. 10 up to multi-second simulated fetches.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing labeled family of floats."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = TrackedLock("Counter._lock")
        self._series: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self, **label_filter: object) -> float:
        """Sum over every series matching the given label subset."""
        wanted = _label_key(label_filter)
        with self._lock:
            return sum(
                v
                for key, v in self._series.items()
                if set(wanted) <= set(key)
            )

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()

    def export(self) -> List[Dict[str, object]]:
        with self._lock:
            return [
                {"labels": _labels_dict(key), "value": self._series[key]}
                for key in sorted(self._series)
            ]

    def summary_lines(self) -> List[str]:
        with self._lock:
            return [
                f"{_format_series(self.name, key)} {self._series[key]:g}"
                for key in sorted(self._series)
            ]


class Gauge:
    """A labeled family of set/add values, plus sampled callbacks.

    :meth:`set_function` registers a callable evaluated at export time -
    how live structures (an :class:`~repro.dist.objectview.ObjectView`'s
    entry count, a channel's configured latency, in-flight delegation
    load) are observed without the hot path pushing every change.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = TrackedLock("Gauge._lock")
        self._series: Dict[LabelKey, float] = {}
        self._fns: Dict[LabelKey, Callable[[], float]] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, value: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def set_function(self, fn: Callable[[], float], **labels: object) -> None:
        with self._lock:
            self._fns[_label_key(labels)] = fn

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        with self._lock:
            fn = self._fns.get(key)
            if fn is None:
                return self._series.get(key, 0.0)
        return float(fn())

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self._fns.clear()

    def _sampled(self) -> Dict[LabelKey, float]:
        with self._lock:
            values = dict(self._series)
            fns = list(self._fns.items())
        for key, fn in fns:  # outside the lock: callbacks may take others
            values[key] = float(fn())
        return values

    def export(self) -> List[Dict[str, object]]:
        values = self._sampled()
        return [
            {"labels": _labels_dict(key), "value": values[key]}
            for key in sorted(values)
        ]

    def summary_lines(self) -> List[str]:
        values = self._sampled()
        return [
            f"{_format_series(self.name, key)} {values[key]:g}"
            for key in sorted(values)
        ]


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # one extra slot for +Inf
        self.sum = 0.0
        self.count = 0


class _Timer:
    """``with histogram.time():`` - observes the clocked duration."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: "Histogram", labels: Dict[str, object]):
        self._histogram = histogram
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._histogram._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(
            self._histogram._clock() - self._start, **self._labels
        )


class Histogram:
    """Fixed-bucket labeled histogram (cumulative export, like fig. 9's
    per-operation cost rows: counts per band, sum, count)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        clock: Clock = time.perf_counter,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricsError(
                f"histogram {self.__class__.__name__} {name!r} needs "
                "ascending, non-empty buckets"
            )
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self._clock = clock
        self._lock = TrackedLock("Histogram._lock")
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def time(self, **labels: object) -> _Timer:
        """A context manager observing its duration on the registry clock."""
        return _Timer(self, labels)

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.sum if series is not None else 0.0

    def mean(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            return series.sum / series.count

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-resolution quantile: the upper bound of the bucket the
        q-th observation falls in (+Inf collapses to the last bound)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            target = q * series.count
            seen = 0
            for index, count in enumerate(series.counts):
                seen += count
                if seen >= target and count:
                    return self.buckets[min(index, len(self.buckets) - 1)]
            return self.buckets[-1]

    def reset(self) -> None:
        with self._lock:
            self._series.clear()

    def export(self) -> List[Dict[str, object]]:
        with self._lock:
            out = []
            for key in sorted(self._series):
                series = self._series[key]
                out.append(
                    {
                        "labels": _labels_dict(key),
                        "buckets": list(self.buckets),
                        "counts": list(series.counts),
                        "sum": series.sum,
                        "count": series.count,
                    }
                )
            return out

    def summary_lines(self) -> List[str]:
        with self._lock:
            lines = []
            for key in sorted(self._series):
                series = self._series[key]
                mean = series.sum / series.count if series.count else 0.0
                lines.append(
                    f"{_format_series(self.name, key)} "
                    f"count={series.count} sum={series.sum:.6g} "
                    f"mean={mean:.6g}"
                )
            return lines


class MetricsRegistry:
    """Owns metric families; the unit of export and of clock injection.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family (so instruments can be
    looked up where they are used), and asking for an existing name as a
    different kind raises - one name, one meaning.
    """

    def __init__(self, name: str = "obs", clock: Clock = time.perf_counter):
        self.name = name
        self.clock = clock
        self._lock = TrackedLock("MetricsRegistry._lock")
        self._families: Dict[str, object] = {}

    # ------------------------------------------------------------------

    def _get_or_create(self, kind: type, name: str, factory):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, kind):
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {kind.kind}"  # type: ignore[attr-defined]
                    )
                return family
            family = factory()
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            lambda: Histogram(name, help, buckets=buckets, clock=self.clock),
        )

    # ------------------------------------------------------------------

    def families(self) -> List[object]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        for family in self.families():
            family.reset()  # type: ignore[attr-defined]

    def export(self) -> Dict[str, object]:
        """The whole registry as one JSON-ready dict (sorted, stable)."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for family in self.families():
            target = {
                "counter": counters,
                "gauge": gauges,
                "histogram": histograms,
            }[family.kind]  # type: ignore[attr-defined]
            target[family.name] = family.export()  # type: ignore[attr-defined]
        return {
            "name": self.name,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def summary(self) -> str:
        lines = [f"== metrics: {self.name} =="]
        for family in self.families():
            lines.extend(family.summary_lines())  # type: ignore[attr-defined]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The no-op twin: same API, zero work - the overhead-guard control.


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullCounter(Counter):
    def __init__(self):
        super().__init__("null")

    def inc(self, value: float = 1.0, **labels: object) -> None:
        return None


class NullGauge(Gauge):
    def __init__(self):
        super().__init__("null")

    def set(self, value: float, **labels: object) -> None:
        return None

    def add(self, value: float = 1.0, **labels: object) -> None:
        return None

    def set_function(self, fn: Callable[[], float], **labels: object) -> None:
        return None


class NullHistogram(Histogram):
    def __init__(self):
        super().__init__("null", buckets=(1.0,))

    def observe(self, value: float, **labels: object) -> None:
        return None

    def time(self, **labels: object) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry(MetricsRegistry):
    """Every family is a shared no-op; export is empty.

    This is what "metrics disabled" means: the instrumentation points
    stay in the code, each one costing a single dynamic call into a
    body that immediately returns - the cost the <5% ``scatter``
    overhead bench compares against.
    """

    def __init__(self, name: str = "null", clock: Clock = time.perf_counter):
        super().__init__(name, clock)

    def counter(self, name: str, help: str = "") -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def export(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def summary(self) -> str:
        return f"== metrics: {self.name} (disabled) =="
