"""``repro.obs`` - cluster-wide observability for the reproduction.

One facade, :class:`Obs`, bundles the two instruments every subsystem
shares:

* a :class:`~repro.obs.metrics.MetricsRegistry` of labeled counters,
  gauges, and fixed-bucket histograms (pluggable clock: wall time for
  the executing runtime, ``sim.now`` for :class:`FixpointSim`, so
  simulated metrics are bit-identical under seeded replay);
* a :class:`~repro.obs.trace.Tracer` of causal spans whose 16-byte
  :class:`~repro.obs.trace.SpanContext` rides inside the delegation and
  gossip wire frames of :mod:`repro.fixpoint.net`, so one job's spans
  stitch across nodes (:func:`stitch`).

Snapshots persist the perf trajectory the ROADMAP calls for:
:meth:`Obs.export` is a JSON-ready dict and :func:`dump_bench` writes a
``BENCH_<name>.json`` a future session (or a CI artifact diff) can
``json.load``; :meth:`Obs.summary` renders the text dashboard the
examples print.

``NULL_OBS`` is the disabled twin - same API, no work - both the
default for components that predate a caller opting in, and the control
the overhead benchmark prices real instrumentation against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from .metrics import (
    Clock,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
)
from .trace import (
    CONTEXT_BYTES,
    NULL_CONTEXT,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    render_trace,
    stitch,
)

#: Schema version stamped into every exported snapshot, so a future
#: reader of an old ``BENCH_*.json`` knows what it is parsing.
SNAPSHOT_SCHEMA = 1


class Obs:
    """Registry + tracer under one name and one clock."""

    enabled = True

    def __init__(
        self,
        name: str = "obs",
        clock: Optional[Clock] = None,
        max_spans: int = 100_000,
    ):
        self.name = name
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self.registry = MetricsRegistry(name=name, clock=self.clock)
        self.tracer = Tracer(node=name, clock=self.clock, max_spans=max_spans)

    # ------------------------------------------------------------------

    def export(self) -> Dict[str, object]:
        """Everything observed, as one deterministic JSON-ready dict."""
        spans = self.tracer.spans
        return {
            "schema": SNAPSHOT_SCHEMA,
            "name": self.name,
            "metrics": self.registry.export(),
            "spans": [span.as_dict() for span in spans],
            "traces": len({s.trace_id for s in spans}),
            "spans_dropped": self.tracer.dropped,
        }

    def summary(self) -> str:
        """The text dashboard: metrics, then every stitched trace."""
        lines = [self.registry.summary()]
        traces = self.tracer.traces()
        if traces:
            lines.append(f"== traces: {self.name} ({len(traces)}) ==")
            for trace_id in sorted(traces):
                lines.append(f"trace {trace_id:#x}")
                lines.append(render_trace(traces[trace_id]))
        return "\n".join(lines)

    def dump_bench(self, path: Union[str, Path]) -> Path:
        """Persist this snapshot as ``BENCH_<name>.json`` (see
        :func:`dump_bench`)."""
        return dump_bench(path, self.export())

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()


class NullObs(Obs):
    """Observability off: every instrument is a shared no-op."""

    enabled = False

    def __init__(self, name: str = "null"):
        self.name = name
        self.clock = time.perf_counter
        self.registry = NullRegistry(name=name)
        self.tracer = NullTracer(node=name)

    def export(self) -> Dict[str, object]:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "name": self.name,
            "metrics": self.registry.export(),
            "spans": [],
            "traces": 0,
            "spans_dropped": 0,
        }


#: The shared disabled instance - pass as ``obs=NULL_OBS`` to run a
#: component with zero observability overhead.
NULL_OBS = NullObs()


def dump_bench(path: Union[str, Path], payload: Dict[str, object]) -> Path:
    """Write one ``BENCH_*.json`` snapshot; returns the path written.

    The file is a single JSON object with sorted keys (diffable across
    runs - the perf trajectory is a git log of these), always loadable
    back with ``json.load``.  A bare name like ``"core"`` becomes
    ``BENCH_core.json`` in the working directory.
    """
    path = Path(path)
    if not path.suffix:
        path = path.with_name(f"BENCH_{path.name}.json")
    body = {"schema": SNAPSHOT_SCHEMA, **payload}
    path.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Union[str, Path]) -> Dict[str, object]:
    """Read a snapshot back (the trivial inverse, kept for symmetry)."""
    with open(path) as fh:
        return json.load(fh)


__all__ = [
    "CONTEXT_BYTES",
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_CONTEXT",
    "NULL_OBS",
    "NullObs",
    "NullRegistry",
    "NullTracer",
    "Obs",
    "SNAPSHOT_SCHEMA",
    "Span",
    "SpanContext",
    "Tracer",
    "dump_bench",
    "load_bench",
    "render_trace",
    "stitch",
]
