"""Span-based causal tracing that survives crossing the wire.

"Why was this placement slow" is unanswerable from per-node logs once a
job hops a delegation: the caller's dispatch, the peer's serve, and the
caller's absorb happen on three threads on two nodes.  A :class:`Span`
records one timed step; a :class:`SpanContext` (``trace_id`` +
``span_id``, 16 bytes packed) rides *inside* the wire frames of
:mod:`repro.fixpoint.net` - delegation request/reply and gossip
SYN/ACK/PUSH alike - so the remote side's spans join the caller's trace
and :func:`stitch` reassembles the causal chain afterwards::

    submit -> admit -> place -> dispatch -> serve (remote) -> absorb

Span identifiers are deterministic: each :class:`Tracer` salts a
sequence counter with a digest of its node name, so two nodes never
collide and a seeded replay mints identical ids - the same property the
rest of the substrate has.  There is no ambient thread-local "current
span": causality in this codebase crosses threads and nodes constantly,
so parenthood is always explicit (the bug class implicit context would
invite - a serve span parented to an unrelated local eval - cannot be
written).

The clock is pluggable exactly like the metrics registry's: wall for
the executing runtime, ``sim.now`` for the simulated platform.
"""

from __future__ import annotations

import hashlib
import struct
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..analysis.sync import TrackedLock

Clock = Callable[[], float]

_CTX = struct.Struct("<QQ")

#: Bytes a packed :class:`SpanContext` occupies inside a wire frame.
CONTEXT_BYTES = _CTX.size  # 16


class SpanContext:
    """The 16 bytes of identity a frame carries: (trace_id, span_id)."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def pack(self) -> bytes:
        return _CTX.pack(self.trace_id, self.span_id)

    @classmethod
    def unpack(cls, raw: bytes, offset: int = 0) -> Tuple["SpanContext", int]:
        trace_id, span_id = _CTX.unpack_from(raw, offset)
        return cls(trace_id, span_id), offset + _CTX.size

    def __bool__(self) -> bool:
        return self.trace_id != 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return f"SpanContext({self.trace_id:#x}, {self.span_id:#x})"


#: "No trace": what a frame from an untraced (null-obs) node carries.
NULL_CONTEXT = SpanContext(0, 0)

Parent = Union["Span", SpanContext, None]


class Span:
    """One timed, attributed step of one trace on one node.

    Usable as a context manager (an exception marks it ``error``), or
    ended explicitly with :meth:`finish` - the wire paths do the latter
    because a span's end lives on a different thread than its start.
    """

    __slots__ = (
        "tracer", "name", "node", "trace_id", "span_id", "parent_id",
        "start", "end", "attrs", "status", "error",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int,
        start: float,
        attrs: Dict[str, object],
    ):
        self.tracer = tracer
        self.name = name
        self.node = tracer.node
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.status = "ok"
        self.error: Optional[str] = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def done(self) -> bool:
        return self.end is not None

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(
        self, status: str = "ok", error: Optional[str] = None
    ) -> "Span":
        """End the span (idempotent: the first finish wins)."""
        if self.end is None:
            self.end = self.tracer.clock()
            self.status = status
            self.error = error
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.finish(status="error", error=f"{exc_type.__name__}: {exc}")
        else:
            self.finish()

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "node": self.node,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, node={self.node!r}, "
            f"trace={self.trace_id:#x}, status={self.status!r})"
        )


def _node_salt(node: str) -> int:
    """A 32-bit salt from the node name: deterministic, collision-spread."""
    digest = hashlib.blake2b(node.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little")


class Tracer:
    """Mints and records spans for one node.

    ``max_spans`` bounds memory on long-lived nodes: past the cap new
    spans are still minted (identity must keep flowing onto the wire)
    but no longer retained, and :attr:`dropped` counts them - a bounded
    buffer that degrades visibly, never a silent unbounded list.
    """

    def __init__(
        self,
        node: str = "",
        clock: Clock = time.perf_counter,
        max_spans: int = 100_000,
    ):
        self.node = node
        self.clock = clock
        self.max_spans = max_spans
        self.dropped = 0
        self._salt = _node_salt(node)
        self._seq = 0
        self._lock = TrackedLock("Tracer._lock")
        self._spans: List[Span] = []

    def _next_id(self) -> int:
        # Called with the lock held.
        self._seq += 1
        return (self._salt << 32) | (self._seq & 0xFFFFFFFF)

    def start(self, name: str, parent: Parent = None, **attrs: object) -> Span:
        """Mint (and retain) a span.

        ``parent=None`` starts a fresh trace (the span is its root:
        ``trace_id == span_id``); a :class:`Span` or :class:`SpanContext`
        parent joins its trace - this is the call the wire paths make
        with the context they just unpacked, which is all "distributed
        tracing" is.  A false context (``NULL_CONTEXT``) behaves like no
        parent, so traffic from untraced peers degrades to local roots.
        """
        if isinstance(parent, Span):
            parent = parent.context
        if parent is not None and not parent:
            parent = None
        with self._lock:
            span_id = self._next_id()
            if parent is None:
                trace_id, parent_id = span_id, 0
            else:
                trace_id, parent_id = parent.trace_id, parent.span_id
            span = Span(
                self, name, trace_id, span_id, parent_id,
                self.clock(), dict(attrs),
            )
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
            else:
                self.dropped += 1
        return span

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def traces(self) -> Dict[int, List[Span]]:
        """Spans grouped by trace, each group in start order."""
        return stitch(self)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


class _NullSpan(Span):
    """The shared do-nothing span: carries NULL_CONTEXT onto the wire."""

    def __init__(self):  # noqa: D401 - bypass Span.__init__ entirely
        self.tracer = None  # type: ignore[assignment]
        self.name = "null"
        self.node = ""
        self.trace_id = 0
        self.span_id = 0
        self.parent_id = 0
        self.start = 0.0
        self.end = 0.0
        self.attrs = {}
        self.status = "ok"
        self.error = None

    def set(self, **attrs: object) -> "Span":
        return self

    def finish(self, status: str = "ok", error: Optional[str] = None) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Same API, no spans, no ids - frames carry :data:`NULL_CONTEXT`."""

    def __init__(self, node: str = "null", clock: Clock = time.perf_counter):
        super().__init__(node, clock, max_spans=0)

    def start(self, name: str, parent: Parent = None, **attrs: object) -> Span:
        return _NULL_SPAN


def stitch(*sources: Union[Tracer, Iterable[Span]]) -> Dict[int, List[Span]]:
    """Reassemble traces from any number of tracers/span lists.

    This is the cross-node join: hand it every node's tracer and each
    returned group is one causal chain - caller dispatch, remote serve,
    absorb - no matter which node recorded which span.  Groups and
    members sort by start time (ties by span id, so stitching is
    deterministic even for zero-duration sim spans).
    """
    grouped: Dict[int, List[Span]] = {}
    for source in sources:
        spans = source.spans if isinstance(source, Tracer) else source
        for span in spans:
            if span.trace_id == 0:
                continue
            grouped.setdefault(span.trace_id, []).append(span)
    for spans in grouped.values():
        spans.sort(key=lambda s: (s.start, s.span_id))
    return grouped


def render_trace(spans: List[Span], unit: str = "s") -> str:
    """One stitched trace as an indented text tree (for examples/debug)."""
    children: Dict[int, List[Span]] = {}
    by_id = {span.span_id: span for span in spans}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        flag = "" if span.status == "ok" else f" [{span.status}: {span.error}]"
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        attrs = f" {attrs}" if attrs else ""
        lines.append(
            f"{'  ' * depth}{span.name} @{span.node} "
            f"{span.duration:.6f}{unit}{attrs}{flag}"
        )
        for child in sorted(
            children.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
        walk(root, 0)
    return "\n".join(lines)
