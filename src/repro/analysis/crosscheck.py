"""Static <-> dynamic lock-graph cross-check.

The static analysis (:mod:`repro.analysis.flow`) and the runtime
tracker (:mod:`repro.analysis.sync`) describe the same object - the
lock-acquisition order graph - from two directions, in one vocabulary:
creation-site labels.  Diffing them turns each into a check on the
other:

``dynamic_only`` - **model bugs**.  A test observed an acquisition
    order the static analysis cannot derive: the call-graph model is
    incomplete (an unresolved dynamic call, a missed attribute type).
    Under ``--race`` this set failing empty is an assertion, because an
    incomplete model silently under-reports static deadlock risk.

``static_only`` - **unexercised coverage**.  The source can produce
    this order but no test ever did.  Not a bug in either artifact;
    emitted as a coverage report so a transport refactor can be held
    to "zero unexercised lock edges in new modules".

``matched`` - orders both derived and observed.

``foreign`` - dynamic edges touching labels the static analysis never
    discovered in the analyzed tree (locks minted by test fixtures);
    listed for completeness, asserted on by nobody.

Dynamic labels arrive as ``label#uid`` (per-instance serial appended
by the tracker); the diff strips the serial so both sides speak
creation-site labels.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Set, Tuple

from .sync import base_label

__all__ = ["CrossCheck", "crosscheck"]

Pair = Tuple[str, str]


@dataclass(frozen=True)
class CrossCheck:
    matched: Tuple[Pair, ...]
    dynamic_only: Tuple[Pair, ...]
    static_only: Tuple[Pair, ...]
    foreign: Tuple[Pair, ...]

    @property
    def clean(self) -> bool:
        """True when the static model covers every observed edge."""
        return not self.dynamic_only

    def format(self) -> str:
        lines = [
            "static<->dynamic lock graph: "
            f"{len(self.matched)} matched, "
            f"{len(self.dynamic_only)} dynamic-only (model bugs), "
            f"{len(self.static_only)} static-only (unexercised), "
            f"{len(self.foreign)} foreign (test-fixture locks)"
        ]
        if self.dynamic_only:
            lines.append("dynamic-only edges (STATIC MODEL IS INCOMPLETE):")
            lines.extend(f"  {s} -> {d}" for s, d in self.dynamic_only)
        if self.static_only:
            lines.append("static-only edges (no test exercises this order):")
            lines.extend(f"  {s} -> {d}" for s, d in self.static_only)
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "matched": [list(p) for p in self.matched],
            "dynamic_only": [list(p) for p in self.dynamic_only],
            "static_only": [list(p) for p in self.static_only],
            "foreign": [list(p) for p in self.foreign],
            "clean": self.clean,
        }

    def dump(self, path) -> Path:
        out = Path(path)
        out.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return out


def crosscheck(
    static_edges: Iterable[Pair],
    known_labels: Iterable[str],
    dynamic_edges: Iterable[Pair],
) -> CrossCheck:
    """Diff the static edge set against dynamically observed pairs.

    ``static_edges`` and ``known_labels`` come from a
    :class:`repro.analysis.flow.FlowReport` (``edge_pairs()`` /
    ``labels``); ``dynamic_edges`` from
    :meth:`repro.analysis.sync.RaceReport.edge_pairs` (instance labels
    are normalized here, so either form is accepted).
    """
    static: Set[Pair] = set(static_edges)
    labels: Set[str] = set(known_labels)
    dynamic: Set[Pair] = {
        (base_label(s), base_label(d)) for s, d in dynamic_edges
    }

    matched = sorted(static & dynamic)
    foreign = sorted(
        (s, d) for s, d in dynamic
        if s not in labels or d not in labels
    )
    dynamic_known = {
        (s, d) for s, d in dynamic
        if s in labels and d in labels
    }
    dynamic_only = sorted(dynamic_known - static)
    static_only = sorted(static - dynamic)
    return CrossCheck(
        matched=tuple(matched),
        dynamic_only=tuple(dynamic_only),
        static_only=tuple(static_only),
        foreign=tuple(foreign),
    )
