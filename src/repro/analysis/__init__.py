"""``repro.analysis`` - machine-checked concurrency discipline.

Three tools, one contract: the invariants reviewers kept re-deriving by
hand (PR 4's one-worker dispatch deadlock, PR 5's split channel
sequence space, PR 6's accountant token leak) are now checked by the
build.

* :mod:`repro.analysis.sync` - drop-in :func:`TrackedLock` /
  :func:`TrackedRLock` / :func:`TrackedCondition` factories (raw
  ``threading`` pass-through when tracking is off, like ``NULL_OBS``)
  feeding a :class:`LockTracker` that records the process-wide
  lock-acquisition graph, reports lock-order inversions with both
  stacks, raises on provable self-deadlock, and flags blocking calls
  made while holding a lock.  Enabled suite-wide by ``pytest --race``.

* :mod:`repro.analysis.lint` - an AST linter over ``src/`` enforcing
  repo invariants statically: no wall clock or unseeded randomness in
  sim-clocked modules (aliased imports included), no raw ``threading``
  locks outside this package, no bare ``except:``, every ``pack_*``
  has its ``unpack_*`` *and* agrees with it on fixed-width struct
  layout, no blocking call lexically inside a ``with <lock>:`` body.
  Run it with ``python -m repro.analysis.lint src`` (CI fails on it).

* :mod:`repro.analysis.flow` - the interprocedural layer the linter
  cannot be: a best-effort call graph (:mod:`repro.analysis.callgraph`)
  over the whole tree, a transitive **may-block** effect, per-function
  **lock summaries**, and the *static* lock-acquisition graph in the
  same creation-site-label vocabulary the runtime tracker speaks.
  Flags hold-while-blocking through any depth of calls and potential
  ABBA cycles with full call-chain witnesses - before any thread runs.
  ``python -m repro.analysis.flow src``; under ``pytest --race`` the
  static graph is diffed against the dynamically observed one
  (:mod:`repro.analysis.crosscheck`): dynamic-only edges are model
  bugs, static-only edges are unexercised coverage.
"""

from .sync import (
    DeadlockError,
    LockOrderError,
    LockTracker,
    RaceReport,
    TrackedCondition,
    TrackedLock,
    TrackedRLock,
    base_label,
    current_tracker,
    disable_tracking,
    enable_tracking,
    note_blocking,
    tracking,
)

#: Static-analysis names resolve lazily (PEP 562): ``python -m
#: repro.analysis.lint`` / ``...flow`` must be able to execute the
#: submodule as ``__main__`` without this package having imported it
#: first (runpy warns otherwise).
_LINT_NAMES = ("Violation", "lint_source", "lint_tree", "lint")
_FLOW_NAMES = ("FlowReport", "analyze_source", "analyze_tree", "flow")
_CROSSCHECK_NAMES = ("CrossCheck", "crosscheck")


def __getattr__(name: str):
    # importlib.import_module, not ``from . import``: the latter probes
    # the package attribute first (hasattr via this very __getattr__)
    # and recurses before the submodule import ever starts.
    import importlib

    if name in _LINT_NAMES:
        mod = importlib.import_module(".lint", __name__)
        value = mod if name == "lint" else getattr(mod, name)
    elif name in _FLOW_NAMES:
        mod = importlib.import_module(".flow", __name__)
        value = mod if name == "flow" else getattr(mod, name)
    elif name in _CROSSCHECK_NAMES:
        mod = importlib.import_module(".crosscheck", __name__)
        value = getattr(mod, name)
    else:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    globals()[name] = value
    return value


__all__ = [
    "CrossCheck",
    "DeadlockError",
    "FlowReport",
    "LockOrderError",
    "LockTracker",
    "RaceReport",
    "TrackedCondition",
    "TrackedLock",
    "TrackedRLock",
    "Violation",
    "analyze_source",
    "analyze_tree",
    "base_label",
    "crosscheck",
    "current_tracker",
    "disable_tracking",
    "enable_tracking",
    "lint_source",
    "lint_tree",
    "note_blocking",
    "tracking",
]
