"""``repro.analysis`` - machine-checked concurrency discipline.

Two tools, one contract: the invariants reviewers kept re-deriving by
hand (PR 4's one-worker dispatch deadlock, PR 5's split channel
sequence space, PR 6's accountant token leak) are now checked by the
build.

* :mod:`repro.analysis.sync` - drop-in :func:`TrackedLock` /
  :func:`TrackedRLock` / :func:`TrackedCondition` factories (raw
  ``threading`` pass-through when tracking is off, like ``NULL_OBS``)
  feeding a :class:`LockTracker` that records the process-wide
  lock-acquisition graph, reports lock-order inversions with both
  stacks, raises on provable self-deadlock, and flags blocking calls
  made while holding a lock.  Enabled suite-wide by ``pytest --race``.

* :mod:`repro.analysis.lint` - an AST linter over ``src/`` enforcing
  repo invariants statically: no wall clock or unseeded randomness in
  sim-clocked modules, no raw ``threading`` locks outside this package,
  no bare ``except:``, every ``pack_*`` has its ``unpack_*``, no
  blocking call lexically inside a ``with <lock>:`` body.  Run it with
  ``python -m repro.analysis.lint src`` (CI fails the build on it).
"""

from .sync import (
    DeadlockError,
    LockOrderError,
    LockTracker,
    RaceReport,
    TrackedCondition,
    TrackedLock,
    TrackedRLock,
    current_tracker,
    disable_tracking,
    enable_tracking,
    note_blocking,
    tracking,
)

#: Lint names resolve lazily (PEP 562): ``python -m repro.analysis.lint``
#: must be able to execute the submodule as ``__main__`` without this
#: package having imported it first (runpy warns otherwise).
_LINT_NAMES = ("Violation", "lint_source", "lint_tree", "lint")


def __getattr__(name: str):
    if name in _LINT_NAMES:
        from . import lint as _lint

        value = _lint if name == "lint" else getattr(_lint, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DeadlockError",
    "LockOrderError",
    "LockTracker",
    "RaceReport",
    "TrackedCondition",
    "TrackedLock",
    "TrackedRLock",
    "Violation",
    "current_tracker",
    "disable_tracking",
    "enable_tracking",
    "lint_source",
    "lint_tree",
    "note_blocking",
    "tracking",
]
