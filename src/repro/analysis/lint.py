"""AST-based repo-invariant linter: ``python -m repro.analysis.lint src``.

Every rule here is an invariant the team kept re-deriving in review;
now the build re-derives it instead:

``wall-clock``
    Sim-clocked modules (``repro/sim/``, ``repro/dist/``) must not read
    the wall clock (``time.time``/``perf_counter``/``monotonic``/
    ``process_time``, ``datetime.now``/``utcnow``/``today``): the
    seeded-replay bit-identity contract (PR 6) requires every simulated
    timestamp to come from the simulator's clock.

``unseeded-random``
    The same modules must not draw from the process-global ``random``
    module or an unseeded ``random.Random()``: replay determinism means
    every stream is a ``random.Random(seed)`` owned by a component.

``raw-lock``
    No ``threading.Lock()`` / ``RLock()`` / ``Condition()`` outside
    ``repro/analysis/``: all lock sites go through the tracked factories
    in :mod:`repro.analysis.sync` so the ``--race`` detector sees them.

``bare-except``
    No ``except:`` - it swallows ``KeyboardInterrupt`` and worker-pool
    shutdown; name the exception (``except BaseException:`` where a
    frame boundary genuinely must catch everything).

``codec-pairing``
    Every ``pack_X`` (or ``_pack_X``) in a module has a matching
    ``unpack_X`` in the same module: a wire format you can encode but
    not decode is half a protocol.

``lock-held-blocking``
    No lexically blocking call - ``.result()``, ``.join()``,
    ``sleep(...)`` - inside a ``with <lock>:`` body (identifier
    containing ``lock``, ``cond`` or ``mutex``).  Holding a lock across
    a blocking call is the hold-while-blocking pattern the runtime
    tracker flags dynamically; this rule catches it before the code
    ever runs.  (``Condition.wait`` is exempt: waiting releases the
    lock - that is the point of a condition.)

A line may opt out of one rule with ``# lint: skip[<rule>]`` when the
violation is deliberate (e.g. the wall-clock *default* in a module that
also accepts a sim clock).
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set

__all__ = ["Violation", "lint_source", "lint_path", "lint_tree", "main"]

#: Path fragments marking a module as sim-clocked (seeded-replay
#: bit-identity applies; see PR 6's snapshot byte-equality test).
SIM_CLOCKED = ("repro/sim/", "repro/dist/")

#: Path fragments exempt from ``raw-lock`` (the tracker itself).
RAW_LOCK_EXEMPT = ("repro/analysis/",)

_WALL_CLOCK_TIME = {"time", "monotonic", "perf_counter", "process_time"}
_WALL_CLOCK_DATE = {"now", "utcnow", "today"}
_RAW_LOCK_NAMES = {"Lock", "RLock", "Condition"}
_BLOCKING_ATTRS = {"result", "join"}
_LOCKISH = re.compile(r"lock|cond|mutex", re.IGNORECASE)
_SKIP = re.compile(r"#\s*lint:\s*skip\[([a-z-]+)\]")


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _last_identifier(node: ast.expr) -> str:
    """The trailing identifier of a Name/Attribute chain (else '')."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain (best effort, else '')."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Checker(ast.NodeVisitor):
    def __init__(self, relpath: str, sim_clocked: bool, lock_exempt: bool):
        self.relpath = relpath
        self.sim_clocked = sim_clocked
        self.lock_exempt = lock_exempt
        self.violations: List[Violation] = []
        self.pack_defs: Dict[str, int] = {}
        self.unpack_defs: Set[str] = set()
        #: Lock-context nesting depth while walking with-bodies.
        self._lock_depth = 0

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.relpath, node.lineno, rule, message)
        )

    # -- calls ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        attr = _last_identifier(node.func)
        if self.sim_clocked:
            if dotted.startswith("time.") and attr in _WALL_CLOCK_TIME:
                self._flag(
                    node, "wall-clock",
                    f"{dotted}() in a sim-clocked module breaks seeded "
                    "replay; take the simulator's clock instead",
                )
            elif attr in _WALL_CLOCK_DATE and (
                "datetime" in dotted or "date." in dotted
            ):
                self._flag(
                    node, "wall-clock",
                    f"{dotted}() in a sim-clocked module breaks seeded replay",
                )
            if dotted.startswith("random.") and attr != "Random":
                self._flag(
                    node, "unseeded-random",
                    f"{dotted}() draws from the process-global stream; use "
                    "a component-owned random.Random(seed)",
                )
            elif dotted in ("random.Random", "Random") and not (
                node.args or node.keywords
            ):
                self._flag(
                    node, "unseeded-random",
                    "unseeded random.Random() is nondeterministic across "
                    "runs; pass an explicit seed",
                )
        if (
            not self.lock_exempt
            and dotted.startswith("threading.")
            and attr in _RAW_LOCK_NAMES
        ):
            self._flag(
                node, "raw-lock",
                f"raw {dotted}() is invisible to the --race tracker; use "
                f"repro.analysis.sync.Tracked{attr}",
            )
        if self._lock_depth > 0:
            self._check_blocking_in_lock(node, dotted, attr)
        self.generic_visit(node)

    def _check_blocking_in_lock(
        self, node: ast.Call, dotted: str, attr: str
    ) -> None:
        if attr == "sleep":
            self._flag(
                node, "lock-held-blocking",
                "sleep() inside a `with <lock>:` body stalls every other "
                "thread needing the lock",
            )
            return
        if attr not in _BLOCKING_ATTRS:
            return
        value = node.func.value if isinstance(node.func, ast.Attribute) else None
        # ", ".join(parts) / b"".join(...) are string plumbing, not thread
        # joins: skip literal receivers and the classic generator-arg idiom.
        if isinstance(value, ast.Constant):
            return
        if attr == "join" and node.args and isinstance(
            node.args[0], (ast.GeneratorExp, ast.ListComp)
        ):
            return
        self._flag(
            node, "lock-held-blocking",
            f".{attr}() inside a `with <lock>:` body blocks while holding "
            "the lock (the hold-while-blocking deadlock shape)",
        )

    # -- imports --------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "threading" and not self.lock_exempt:
            for alias in node.names:
                if alias.name in _RAW_LOCK_NAMES:
                    self._flag(
                        node, "raw-lock",
                        f"`from threading import {alias.name}` bypasses the "
                        "tracked factories in repro.analysis.sync",
                    )
        if node.module == "random" and self.sim_clocked:
            for alias in node.names:
                if alias.name != "Random":
                    self._flag(
                        node, "unseeded-random",
                        f"`from random import {alias.name}` pulls the "
                        "process-global stream into a sim-clocked module",
                    )
        self.generic_visit(node)

    # -- except / with / defs -------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(
                node, "bare-except",
                "bare `except:` swallows KeyboardInterrupt and pool "
                "shutdown; name the exception type",
            )
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        lockish = any(
            _LOCKISH.search(_last_identifier(item.context_expr))
            or (
                isinstance(item.context_expr, ast.Call)
                and _LOCKISH.search(_last_identifier(item.context_expr.func))
            )
            for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
        if lockish:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if lockish:
            self._lock_depth -= 1

    def _visit_scope(self, node: ast.AST) -> None:
        # A nested def/lambda body does not run under the enclosing
        # lock; scan it with the lock context reset.
        saved, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._note_codec_def(node.name, node.lineno)
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._note_codec_def(node.name, node.lineno)
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def _note_codec_def(self, name: str, lineno: int) -> None:
        bare = name.lstrip("_")
        if bare.startswith("pack_"):
            self.pack_defs.setdefault(bare[len("pack_"):], lineno)
        elif bare.startswith("unpack_"):
            self.unpack_defs.add(bare[len("unpack_"):])

    def finish(self) -> None:
        for suffix, lineno in sorted(self.pack_defs.items()):
            if suffix not in self.unpack_defs:
                self.violations.append(
                    Violation(
                        self.relpath, lineno, "codec-pairing",
                        f"pack_{suffix} has no matching unpack_{suffix} in "
                        "this module: a wire format you can encode but not "
                        "decode is half a protocol",
                    )
                )


def _suppressed(source_lines: Sequence[str], violation: Violation) -> bool:
    if violation.line - 1 >= len(source_lines):
        return False
    match = _SKIP.search(source_lines[violation.line - 1])
    return match is not None and match.group(1) == violation.rule


def lint_source(source: str, relpath: str) -> List[Violation]:
    """Lint one module's source; ``relpath`` drives path-scoped rules."""
    normalized = relpath.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [
            Violation(
                relpath, exc.lineno or 0, "syntax",
                f"cannot parse: {exc.msg}",
            )
        ]
    checker = _Checker(
        relpath,
        sim_clocked=any(frag in normalized for frag in SIM_CLOCKED),
        lock_exempt=any(frag in normalized for frag in RAW_LOCK_EXEMPT),
    )
    checker.visit(tree)
    checker.finish()
    lines = source.splitlines()
    return [v for v in checker.violations if not _suppressed(lines, v)]


def lint_path(path: Path) -> List[Violation]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_tree(roots: Sequence[Path]) -> List[Violation]:
    """Lint every ``*.py`` under each root (a file root lints itself)."""
    violations: List[Violation] = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            violations.extend(lint_path(path))
    return violations


def main(argv: Sequence[str]) -> int:
    if not argv or any(arg in ("-h", "--help") for arg in argv):
        print(__doc__)
        print("usage: python -m repro.analysis.lint <path> [path...]")
        return 0 if argv else 2
    roots = [Path(arg) for arg in argv]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    violations = lint_tree(roots)
    for violation in violations:
        print(violation.format())
    checked = sum(
        1 if r.is_file() else len(list(r.rglob("*.py"))) for r in roots
    )
    if violations:
        print(
            f"lint: {len(violations)} violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
