"""AST-based repo-invariant linter: ``python -m repro.analysis.lint src``.

Every rule here is an invariant the team kept re-deriving in review;
now the build re-derives it instead:

``wall-clock``
    Sim-clocked modules (``repro/sim/``, ``repro/dist/``) must not read
    the wall clock (``time.time``/``perf_counter``/``monotonic``/
    ``process_time``/``sleep``, ``datetime.now``/``utcnow``/``today``):
    the seeded-replay bit-identity contract (PR 6) requires every
    simulated timestamp to come from the simulator's clock.  Import
    bindings are tracked per module, so ``from time import monotonic``,
    ``import time as t`` and ``from datetime import datetime as dt``
    are seen through - the call is canonicalized before rule matching.

``unseeded-random``
    The same modules must not draw from the process-global ``random``
    module or an unseeded ``random.Random()``: replay determinism means
    every stream is a ``random.Random(seed)`` owned by a component.
    Alias-aware like ``wall-clock`` (``import random as r``,
    ``from random import random as rnd``).

``raw-lock``
    No ``threading.Lock()`` / ``RLock()`` / ``Condition()`` outside
    ``repro/analysis/``: all lock sites go through the tracked factories
    in :mod:`repro.analysis.sync` so the ``--race`` detector sees them.

``bare-except``
    No ``except:`` - it swallows ``KeyboardInterrupt`` and worker-pool
    shutdown; name the exception (``except BaseException:`` where a
    frame boundary genuinely must catch everything).

``codec-pairing``
    Every ``pack_X`` (or ``_pack_X``) in a module has a matching
    ``unpack_X`` in the same module: a wire format you can encode but
    not decode is half a protocol.

``codec-layout``
    A ``pack_X``/``unpack_X`` pair must agree on its fixed-width
    ``struct`` layout.  The checker collects every module-level
    ``struct.Struct`` constant (and literal ``struct.pack``/``unpack``
    format) each side references - transitively, through helpers
    defined in the same module, because ``pack_digest`` may inline a
    width that ``unpack_digest`` reaches via ``_unpack_name`` - and
    flags the pair when the referenced byte widths disagree.  That is
    the encode-side-grew-a-field, decode-side-did-not drift that
    otherwise only surfaces as a corrupt frame at the far end.

``lock-held-blocking``
    No lexically blocking call - ``.result()``, ``.join()``,
    ``sleep(...)`` - inside a ``with <lock>:`` body (identifier
    containing ``lock``, ``cond`` or ``mutex``).  Holding a lock across
    a blocking call is the hold-while-blocking pattern the runtime
    tracker flags dynamically; this rule catches it before the code
    ever runs.  (``Condition.wait`` is exempt: waiting releases the
    lock - that is the point of a condition.)

A line may opt out of one rule with ``# lint: skip[<rule>]`` when the
violation is deliberate (e.g. the wall-clock *default* in a module that
also accepts a sim clock).
"""

from __future__ import annotations

import ast
import re
import struct
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["Violation", "lint_source", "lint_path", "lint_tree", "main"]

#: Path fragments marking a module as sim-clocked (seeded-replay
#: bit-identity applies; see PR 6's snapshot byte-equality test).
SIM_CLOCKED = ("repro/sim/", "repro/dist/")

#: Path fragments exempt from ``raw-lock`` (the tracker itself).
RAW_LOCK_EXEMPT = ("repro/analysis/",)

_WALL_CLOCK_TIME = {"time", "monotonic", "perf_counter", "process_time", "sleep"}
_WALL_CLOCK_DATE = {"now", "utcnow", "today"}
_RAW_LOCK_NAMES = {"Lock", "RLock", "Condition"}
_BLOCKING_ATTRS = {"result", "join"}
_LOCKISH = re.compile(r"lock|cond|mutex", re.IGNORECASE)
_SKIP = re.compile(r"#\s*lint:\s*skip\[([a-z-]+)\]")

#: Modules whose import bindings we canonicalize: aliasing one of these
#: (``import time as t``, ``from random import random as rnd``) must
#: not launder a call past the path-scoped rules above.
_ALIAS_MODULES = {"time", "random", "datetime", "struct"}

#: ``struct``-module call forms whose first argument is a format string
#: (a literal fixed-width layout reference, pseudo-constant for
#: ``codec-layout``).
_STRUCT_FMT_CALLS = {
    "struct.Struct",
    "struct.pack",
    "struct.pack_into",
    "struct.unpack",
    "struct.unpack_from",
    "struct.calcsize",
}


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _last_identifier(node: ast.expr) -> str:
    """The trailing identifier of a Name/Attribute chain (else '')."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain (best effort, else '')."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _fmt_size(fmt: str) -> Optional[int]:
    """Byte width of a struct format string, or None if it is invalid
    (leave invalid formats to the runtime - this rule is about drift
    between two valid sides)."""
    try:
        return struct.calcsize(fmt)
    except struct.error:
        return None


class _Checker(ast.NodeVisitor):
    def __init__(self, relpath: str, sim_clocked: bool, lock_exempt: bool):
        self.relpath = relpath
        self.sim_clocked = sim_clocked
        self.lock_exempt = lock_exempt
        self.violations: List[Violation] = []
        self.pack_defs: Dict[str, Tuple[int, str]] = {}
        self.unpack_defs: Dict[str, str] = {}
        #: Lock-context nesting depth while walking with-bodies.
        self._lock_depth = 0
        #: Local name -> canonical dotted path (``t`` -> ``time``,
        #: ``rnd`` -> ``random.random``) for the modules in
        #: _ALIAS_MODULES.
        self._aliases: Dict[str, str] = {}
        #: codec-layout state: module-level Struct constants (name ->
        #: byte width), and per-def struct references / local calls for
        #: the transitive closure in finish().
        self.struct_consts: Dict[str, int] = {}
        self._fn_stack: List[str] = []
        self._fn_names: Dict[str, Set[str]] = {}
        self._fn_literals: Dict[str, Dict[str, int]] = {}
        self._fn_calls: Dict[str, Set[str]] = {}

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.relpath, node.lineno, rule, message)
        )

    def _canonical(self, dotted: str) -> str:
        """Resolve the leading identifier through the import-binding map.

        ``t.monotonic`` -> ``time.monotonic``; bare ``sleep`` (bound by
        ``from time import sleep``) -> ``time.sleep``.  Unknown heads
        pass through unchanged.
        """
        if not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _current_fn(self) -> Optional[str]:
        # Nested helpers fold into their outermost def: a struct
        # referenced by a closure counts toward the enclosing codec.
        return self._fn_stack[0] if self._fn_stack else None

    # -- calls ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        canon = self._canonical(dotted)
        # Rule matching runs on the canonical spelling; messages show
        # the source spelling (plus the resolution when they differ).
        shown = dotted if canon == dotted else f"{dotted} (= {canon})"
        attr = canon.rsplit(".", 1)[-1] if canon else _last_identifier(node.func)
        if self.sim_clocked:
            if canon.startswith("time.") and attr in _WALL_CLOCK_TIME:
                self._flag(
                    node, "wall-clock",
                    f"{shown}() in a sim-clocked module breaks seeded "
                    "replay; take the simulator's clock instead",
                )
            elif attr in _WALL_CLOCK_DATE and (
                "datetime" in canon or "date." in canon
            ):
                self._flag(
                    node, "wall-clock",
                    f"{shown}() in a sim-clocked module breaks seeded replay",
                )
            if canon.startswith("random.") and attr != "Random":
                self._flag(
                    node, "unseeded-random",
                    f"{shown}() draws from the process-global stream; use "
                    "a component-owned random.Random(seed)",
                )
            elif canon in ("random.Random", "Random") and not (
                node.args or node.keywords
            ):
                self._flag(
                    node, "unseeded-random",
                    "unseeded random.Random() is nondeterministic across "
                    "runs; pass an explicit seed",
                )
        if (
            not self.lock_exempt
            and canon.startswith("threading.")
            and attr in _RAW_LOCK_NAMES
        ):
            self._flag(
                node, "raw-lock",
                f"raw {shown}() is invisible to the --race tracker; use "
                f"repro.analysis.sync.Tracked{attr}",
            )
        if self._lock_depth > 0:
            self._check_blocking_in_lock(node, dotted, attr)
        self._note_struct_call(node, canon)
        self.generic_visit(node)

    def _note_struct_call(self, node: ast.Call, canon: str) -> None:
        fn = self._current_fn()
        if fn is None:
            return
        if isinstance(node.func, ast.Name):
            self._fn_calls.setdefault(fn, set()).add(node.func.id)
        if canon in _STRUCT_FMT_CALLS and node.args and isinstance(
            node.args[0], ast.Constant
        ) and isinstance(node.args[0].value, str):
            size = _fmt_size(node.args[0].value)
            if size is not None:
                self._fn_literals.setdefault(fn, {})[node.args[0].value] = size

    def _check_blocking_in_lock(
        self, node: ast.Call, dotted: str, attr: str
    ) -> None:
        if attr == "sleep":
            self._flag(
                node, "lock-held-blocking",
                "sleep() inside a `with <lock>:` body stalls every other "
                "thread needing the lock",
            )
            return
        if attr not in _BLOCKING_ATTRS:
            return
        value = node.func.value if isinstance(node.func, ast.Attribute) else None
        # ", ".join(parts) / b"".join(...) are string plumbing, not thread
        # joins: skip literal receivers and the classic generator-arg idiom.
        if isinstance(value, ast.Constant):
            return
        if attr == "join" and node.args and isinstance(
            node.args[0], (ast.GeneratorExp, ast.ListComp)
        ):
            return
        self._flag(
            node, "lock-held-blocking",
            f".{attr}() inside a `with <lock>:` body blocks while holding "
            "the lock (the hold-while-blocking deadlock shape)",
        )

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.partition(".")[0] in _ALIAS_MODULES:
                self._aliases[(alias.asname or alias.name).partition(".")[0]] = (
                    alias.name if alias.asname else alias.name.partition(".")[0]
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in _ALIAS_MODULES:
            for alias in node.names:
                if alias.name == "*":
                    continue
                self._aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        if node.module == "threading" and not self.lock_exempt:
            for alias in node.names:
                if alias.name in _RAW_LOCK_NAMES:
                    self._flag(
                        node, "raw-lock",
                        f"`from threading import {alias.name}` bypasses the "
                        "tracked factories in repro.analysis.sync",
                    )
        if node.module == "random" and self.sim_clocked:
            for alias in node.names:
                if alias.name != "Random":
                    self._flag(
                        node, "unseeded-random",
                        f"`from random import {alias.name}` pulls the "
                        "process-global stream into a sim-clocked module",
                    )
        self.generic_visit(node)

    # -- codec-layout bookkeeping ---------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        fn = self._current_fn()
        if fn is not None:
            self._fn_names.setdefault(fn, set()).add(node.id)
        self.generic_visit(node)

    def _note_struct_const(self, target: ast.expr, value: ast.expr) -> None:
        if self._fn_stack or not isinstance(target, ast.Name):
            return
        if not (isinstance(value, ast.Call) and value.args):
            return
        if self._canonical(_dotted(value.func)) != "struct.Struct":
            return
        arg = value.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            size = _fmt_size(arg.value)
            if size is not None:
                self.struct_consts[target.id] = size

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_struct_const(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_struct_const(node.target, node.value)
        self.generic_visit(node)

    # -- except / with / defs -------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(
                node, "bare-except",
                "bare `except:` swallows KeyboardInterrupt and pool "
                "shutdown; name the exception type",
            )
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        lockish = any(
            _LOCKISH.search(_last_identifier(item.context_expr))
            or (
                isinstance(item.context_expr, ast.Call)
                and _LOCKISH.search(_last_identifier(item.context_expr.func))
            )
            for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
        if lockish:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if lockish:
            self._lock_depth -= 1

    def _visit_scope(self, node: ast.AST) -> None:
        # A nested def/lambda body does not run under the enclosing
        # lock; scan it with the lock context reset.
        saved, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._note_codec_def(node.name, node.lineno)
        self._fn_stack.append(node.name)
        try:
            self._visit_scope(node)
        finally:
            self._fn_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._note_codec_def(node.name, node.lineno)
        self._fn_stack.append(node.name)
        try:
            self._visit_scope(node)
        finally:
            self._fn_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def _note_codec_def(self, name: str, lineno: int) -> None:
        bare = name.lstrip("_")
        if bare.startswith("pack_"):
            self.pack_defs.setdefault(bare[len("pack_"):], (lineno, name))
        elif bare.startswith("unpack_"):
            self.unpack_defs.setdefault(bare[len("unpack_"):], name)

    def _layout_refs(self, fn: str) -> Dict[str, int]:
        """Struct items ``fn`` references, transitively through calls to
        helpers defined in this module: display name -> byte width."""
        refs: Dict[str, int] = {}
        seen: Set[str] = set()
        queue = [fn]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            for name in self._fn_names.get(current, ()):
                if name in self.struct_consts:
                    refs[name] = self.struct_consts[name]
            for fmt, size in self._fn_literals.get(current, {}).items():
                refs[f'"{fmt}"'] = size
            for callee in self._fn_calls.get(current, ()):
                # Only intra-module helpers extend the closure; calls to
                # names we never saw defined are ignored.
                if callee in self._fn_names or callee in self._fn_calls:
                    queue.append(callee)
        return refs

    def finish(self) -> None:
        for suffix, (lineno, pack_name) in sorted(self.pack_defs.items()):
            unpack_name = self.unpack_defs.get(suffix)
            if unpack_name is None:
                self.violations.append(
                    Violation(
                        self.relpath, lineno, "codec-pairing",
                        f"pack_{suffix} has no matching unpack_{suffix} in "
                        "this module: a wire format you can encode but not "
                        "decode is half a protocol",
                    )
                )
                continue
            pack_refs = self._layout_refs(pack_name)
            unpack_refs = self._layout_refs(unpack_name)
            # Compare byte widths of the distinct struct items each side
            # reaches; spelling may differ (a constant on one side, an
            # equivalent literal format on the other) without drift.
            if not pack_refs or not unpack_refs:
                continue
            if sorted(pack_refs.values()) == sorted(unpack_refs.values()):
                continue
            self.violations.append(
                Violation(
                    self.relpath, lineno, "codec-layout",
                    f"{pack_name}/{unpack_name} disagree on fixed-width "
                    f"struct layout: {pack_name} references "
                    f"{_layout_text(pack_refs)}; {unpack_name} references "
                    f"{_layout_text(unpack_refs)}",
                )
            )


def _layout_text(refs: Dict[str, int]) -> str:
    return ", ".join(
        f"{name}({size}B)" for name, size in sorted(refs.items())
    )


def _suppressed(source_lines: Sequence[str], violation: Violation) -> bool:
    if violation.line - 1 >= len(source_lines):
        return False
    match = _SKIP.search(source_lines[violation.line - 1])
    return match is not None and match.group(1) == violation.rule


def lint_source(source: str, relpath: str) -> List[Violation]:
    """Lint one module's source; ``relpath`` drives path-scoped rules."""
    normalized = relpath.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [
            Violation(
                relpath, exc.lineno or 0, "syntax",
                f"cannot parse: {exc.msg}",
            )
        ]
    checker = _Checker(
        relpath,
        sim_clocked=any(frag in normalized for frag in SIM_CLOCKED),
        lock_exempt=any(frag in normalized for frag in RAW_LOCK_EXEMPT),
    )
    checker.visit(tree)
    checker.finish()
    lines = source.splitlines()
    return [v for v in checker.violations if not _suppressed(lines, v)]


def lint_path(path: Path) -> List[Violation]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_tree(roots: Sequence[Path]) -> List[Violation]:
    """Lint every ``*.py`` under each root (a file root lints itself)."""
    violations: List[Violation] = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            violations.extend(lint_path(path))
    return violations


def main(argv: Sequence[str]) -> int:
    if not argv or any(arg in ("-h", "--help") for arg in argv):
        print(__doc__)
        print("usage: python -m repro.analysis.lint <path> [path...]")
        return 0 if argv else 2
    roots = [Path(arg) for arg in argv]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    violations = lint_tree(roots)
    for violation in violations:
        print(violation.format())
    checked = sum(
        1 if r.is_file() else len(list(r.rglob("*.py"))) for r in roots
    )
    if violations:
        print(
            f"lint: {len(violations)} violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
