"""Interprocedural may-block / lock-summary analysis:
``python -m repro.analysis.flow src``.

Where :mod:`repro.analysis.lint` is lexical (one function body at a
time) and the :mod:`repro.analysis.sync` tracker is dynamic (only the
lock orders a test actually exercised), this analysis is *whole-program
and static*: it builds a best-effort call graph over the tree
(:mod:`repro.analysis.callgraph`), infers a **may-block** effect for
every function, computes per-function **lock summaries** - which
tracked-factory locks a function acquires, directly or through any
chain of calls - and derives the *static lock-acquisition graph* whose
nodes are creation-site labels, the same vocabulary the runtime
tracker uses.

Two rules fire on the result:

``hold-blocking``
    A function performs (or calls into, any number of frames down) a
    blocking operation while holding a tracked lock.  ``with lock:
    self._helper()`` is flagged even when the ``Job.wait`` is three
    calls deep.  A condition's own lock is exempt at its ``wait`` - the
    wait releases it; that is the point of a condition.

``lock-cycle``
    The static lock graph has a cycle: the classic ABBA inversion, with
    a full call-chain witness for every edge.  A *self* cycle on a
    non-reentrant label is reported too - two instances of the same
    lock class acquired nested (PR 5's double-dial was exactly this
    shape, instance-symmetric and invisible to per-instance reasoning).
    Reentrant (RLock) self-edges are skipped: label-level analysis
    cannot tell reentry on one instance from nesting across two, and
    reentry is the overwhelmingly common - and legal - case.

A line may opt out of one rule with ``# flow: skip[<rule>]`` plus a
justification, mirroring the linter.  For a ``lock-cycle`` the marker
may sit on any line participating in the cycle's witness heads.

Exit codes: 0 clean, 1 findings, 2 usage error.  ``--graph`` prints
the static lock graph; ``--unresolved`` lists every call the model
could not resolve (documented blind spots: dynamic callables, stored
callbacks, containers of functions), grouped by reason.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import (
    Acquire,
    Blocking,
    CallSite,
    FunctionInfo,
    LockType,
    Program,
    build_program,
)

__all__ = [
    "Edge",
    "Finding",
    "FlowReport",
    "analyze_source",
    "analyze_tree",
    "main",
]

_SKIP = re.compile(r"#\s*flow:\s*skip\[([a-z-]+)\]")


@dataclass(frozen=True)
class Edge:
    """One static lock-order edge: ``dst`` acquired while ``src`` held."""

    src: str
    dst: str
    relpath: str
    line: int
    chain: Tuple[str, ...]  # formatted frames, outermost first

    def format(self) -> str:
        lines = [f"{self.src} -> {self.dst}"]
        lines.extend(f"  {frame}" for frame in self.chain)
        return "\n".join(lines)


@dataclass(frozen=True)
class Finding:
    rule: str
    relpath: str
    line: int
    message: str
    chain: Tuple[str, ...] = ()

    def format(self) -> str:
        head = f"{self.relpath}:{self.line}: [{self.rule}] {self.message}"
        if not self.chain:
            return head
        return "\n".join([head] + [f"  {frame}" for frame in self.chain])


@dataclass(frozen=True)
class Unresolved:
    reason: str
    relpath: str
    line: int
    callee: str
    function: str


@dataclass
class FlowReport:
    findings: List[Finding] = field(default_factory=list)
    edges: Dict[Tuple[str, str], Edge] = field(default_factory=dict)
    labels: Set[str] = field(default_factory=set)
    unresolved: List[Unresolved] = field(default_factory=list)
    functions: int = 0
    may_block: Dict[str, str] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        return set(self.edges)


# ----------------------------------------------------------------------
# The interprocedural solver.


class _Solver:
    def __init__(self, program: Program):
        self.program = program
        self.fns = program.functions
        #: label -> (reentrant, condition)
        self.lock_meta: Dict[str, Tuple[bool, bool]] = {}
        self._collect_lock_meta()
        #: qname -> base blocking fact reached (or absent)
        self.may_block: Dict[str, str] = {}
        #: qname -> witness step: ("direct", Blocking) | ("call", cs, g)
        self.block_via: Dict[str, Tuple] = {}
        #: qname -> {label -> ("acquire", line) | ("call", cs, g)}
        self.acq: Dict[str, Dict[str, Tuple]] = {
            q: {} for q in self.fns
        }

    def _collect_lock_meta(self) -> None:
        def note(t: object) -> None:
            if isinstance(t, LockType):
                prev = self.lock_meta.get(t.label)
                if prev is None:
                    self.lock_meta[t.label] = (t.reentrant, t.condition)

        for mod in self.program.modules.values():
            for t in mod.globals_types.values():
                note(t)
        for cls in self.program.classes.values():
            for t in cls.attr_types.values():
                note(t)
        # Labels only seen at acquire sites (locals, parameters).
        for fn in self.fns.values():
            for a in fn.acquires:
                if a.label not in self.lock_meta:
                    self.lock_meta[a.label] = (a.reentrant, a.condition)

    def reentrant(self, label: str) -> bool:
        return self.lock_meta.get(label, (False, False))[0]

    def solve(self) -> None:
        """Propagate may-block and acquired-locks to a fixpoint."""
        for qname, fn in self.fns.items():
            if fn.blocks:
                b = fn.blocks[0]
                self.may_block[qname] = b.what
                self.block_via[qname] = ("direct", b)
            for a in fn.acquires:
                self.acq[qname].setdefault(a.label, ("acquire", a.line))

        changed = True
        while changed:
            changed = False
            for qname, fn in self.fns.items():
                mine = self.acq[qname]
                for cs in fn.calls:
                    for tq in cs.targets:
                        if tq == qname:
                            continue
                        for label in self.acq.get(tq, ()):
                            if label not in mine:
                                mine[label] = ("call", cs, tq)
                                changed = True
                        if qname not in self.may_block and tq in self.may_block:
                            self.may_block[qname] = self.may_block[tq]
                            self.block_via[qname] = ("call", cs, tq)
                            changed = True

    # -- witnesses -----------------------------------------------------

    def _fmt(self, fn: FunctionInfo, line: int, text: str) -> str:
        return f"{fn.relpath}:{line}: {fn.qname} {text}"

    def acquire_chain(self, qname: str, label: str) -> List[str]:
        """Call-chain frames from ``qname`` down to the acquire site."""
        frames: List[str] = []
        seen: Set[str] = set()
        cur = qname
        while cur not in seen:
            seen.add(cur)
            fn = self.fns[cur]
            step = self.acq[cur].get(label)
            if step is None:
                break
            if step[0] == "acquire":
                frames.append(self._fmt(fn, step[1], f"acquires {label!r}"))
                break
            _, cs, tq = step
            frames.append(
                self._fmt(fn, cs.line, f"calls {self.fns[tq].qname}")
            )
            cur = tq
        return frames

    def block_chain(self, qname: str) -> List[str]:
        frames: List[str] = []
        seen: Set[str] = set()
        cur = qname
        while cur not in seen:
            seen.add(cur)
            fn = self.fns[cur]
            step = self.block_via.get(cur)
            if step is None:
                break
            if step[0] == "direct":
                b = step[1]
                frames.append(self._fmt(fn, b.line, f"blocks on {b.what}"))
                break
            _, cs, tq = step
            frames.append(
                self._fmt(fn, cs.line, f"calls {self.fns[tq].qname}")
            )
            cur = tq
        return frames

    # -- the static lock graph ----------------------------------------

    def lock_edges(self) -> Dict[Tuple[str, str], Edge]:
        edges: Dict[Tuple[str, str], Edge] = {}

        def add(
            src: str,
            dst: str,
            fn: FunctionInfo,
            line: int,
            tail: List[str],
        ) -> None:
            if src == dst and self.reentrant(src):
                return
            key = (src, dst)
            if key in edges:
                return
            edges[key] = Edge(
                src=src,
                dst=dst,
                relpath=fn.relpath,
                line=line,
                chain=tuple(tail),
            )

        for qname, fn in self.fns.items():
            for a in fn.acquires:
                for h in a.held:
                    add(
                        h, a.label, fn, a.line,
                        [self._fmt(
                            fn, a.line,
                            f"acquires {a.label!r} while holding {h!r}",
                        )],
                    )
            for cs in fn.calls:
                if not cs.held:
                    continue
                for tq in cs.targets:
                    for label in self.acq.get(tq, ()):
                        for h in cs.held:
                            head = self._fmt(
                                fn, cs.line,
                                f"[holding {h!r}] calls {self.fns[tq].qname}",
                            )
                            add(
                                h, label, fn, cs.line,
                                [head] + self.acquire_chain(tq, label),
                            )
        return edges

    # -- rules ---------------------------------------------------------

    def findings(
        self, edges: Dict[Tuple[str, str], Edge]
    ) -> List[Finding]:
        found: List[Finding] = []
        found.extend(self._hold_blocking())
        found.extend(self._lock_cycles(edges))
        return found

    def _hold_blocking(self) -> List[Finding]:
        found: List[Finding] = []
        seen: Set[Tuple[str, int]] = set()
        for qname, fn in self.fns.items():
            for b in fn.blocks:
                if not b.held:
                    continue
                key = (fn.relpath, b.line)
                if key in seen:
                    continue
                seen.add(key)
                found.append(
                    Finding(
                        rule="hold-blocking",
                        relpath=fn.relpath,
                        line=b.line,
                        message=(
                            f"{fn.qname} blocks on {b.what} while "
                            f"holding {list(b.held)}"
                        ),
                        chain=(self._fmt(fn, b.line, f"blocks on {b.what}"),),
                    )
                )
            for cs in fn.calls:
                if not cs.held:
                    continue
                blocking_target = next(
                    (tq for tq in cs.targets if tq in self.may_block), None
                )
                if blocking_target is None:
                    continue
                key = (fn.relpath, cs.line)
                if key in seen:
                    continue
                seen.add(key)
                what = self.may_block[blocking_target]
                chain = [
                    self._fmt(
                        fn, cs.line,
                        f"[holding {list(cs.held)}] calls "
                        f"{self.fns[blocking_target].qname}",
                    )
                ] + self.block_chain(blocking_target)
                found.append(
                    Finding(
                        rule="hold-blocking",
                        relpath=fn.relpath,
                        line=cs.line,
                        message=(
                            f"{fn.qname} calls {cs.callee} while holding "
                            f"{list(cs.held)}, and it blocks on {what} "
                            "down the call chain"
                        ),
                        chain=tuple(chain),
                    )
                )
        return found

    def _lock_cycles(
        self, edges: Dict[Tuple[str, str], Edge]
    ) -> List[Finding]:
        graph: Dict[str, Set[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        cycles = _simple_cycles(graph)
        found: List[Finding] = []
        for cycle in cycles:
            cycle_edges = [
                edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
                for i in range(len(cycle))
            ]
            anchor = min(cycle_edges, key=lambda e: (e.relpath, e.line))
            pretty = " -> ".join(list(cycle) + [cycle[0]])
            chain: List[str] = []
            for e in cycle_edges:
                chain.append(f"edge {e.src} -> {e.dst}:")
                chain.extend(f"  {frame}" for frame in e.chain)
            if len(cycle) == 1:
                message = (
                    f"non-reentrant lock {cycle[0]!r} may be acquired "
                    "while an instance with the same label is already "
                    "held (instance-symmetric ABBA, the double-dial shape)"
                )
            else:
                message = f"potential lock-order inversion: {pretty}"
            found.append(
                Finding(
                    rule="lock-cycle",
                    relpath=anchor.relpath,
                    line=anchor.line,
                    message=message,
                    chain=tuple(chain),
                )
            )
        return found


def _simple_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles of a small digraph, each reported once.

    DFS rooted at each node in sorted order, only visiting nodes >= the
    root (so every cycle is found exactly once, rotated to start at its
    smallest node).  The lock graphs here have tens of nodes; no need
    for Johnson's algorithm.
    """
    order = sorted(graph)
    index = {n: i for i, n in enumerate(order)}
    cycles: List[List[str]] = []

    def dfs(root: str, node: str, path: List[str], on_path: Set[str]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if index[nxt] < index[root]:
                continue
            if nxt == root:
                cycles.append(list(path))
                continue
            if nxt in on_path:
                continue
            path.append(nxt)
            on_path.add(nxt)
            dfs(root, nxt, path, on_path)
            on_path.remove(nxt)
            path.pop()

    for root in order:
        dfs(root, root, [root], {root})  # a self-edge yields [root]
    return cycles


# ----------------------------------------------------------------------
# Suppressions.


def _suppressed_lines(source: str) -> Dict[int, str]:
    marked: Dict[int, str] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SKIP.search(text)
        if match is not None:
            marked[lineno] = match.group(1)
    return marked


def _apply_suppressions(
    report: FlowReport, sources: Dict[str, str]
) -> FlowReport:
    marks: Dict[str, Dict[int, str]] = {
        relpath: _suppressed_lines(text)
        for relpath, text in sources.items()
    }

    def line_marked(relpath: str, line: int, rule: str) -> bool:
        return marks.get(relpath, {}).get(line) == rule

    kept: List[Finding] = []
    for f in report.findings:
        if line_marked(f.relpath, f.line, f.rule):
            continue
        if f.rule == "lock-cycle":
            # The justification may sit on any witness head of the cycle.
            heads = _witness_heads(f.chain)
            if any(
                line_marked(relpath, line, f.rule)
                for relpath, line in heads
            ):
                continue
        kept.append(f)
    report.findings = kept
    return report


_FRAME = re.compile(r"^\s*(\S+?):(\d+): ")


def _witness_heads(chain: Sequence[str]) -> List[Tuple[str, int]]:
    heads: List[Tuple[str, int]] = []
    for frame in chain:
        match = _FRAME.match(frame)
        if match is not None:
            heads.append((match.group(1), int(match.group(2))))
    return heads


# ----------------------------------------------------------------------
# Entry points.


def _analyze_program(
    program: Program, sources: Dict[str, str]
) -> FlowReport:
    solver = _Solver(program)
    solver.solve()
    edges = solver.lock_edges()
    report = FlowReport(
        edges=edges,
        labels=set(solver.lock_meta),
        functions=len(program.functions),
        may_block=dict(solver.may_block),
        errors=list(program.errors),
    )
    report.findings = sorted(
        solver.findings(edges),
        key=lambda f: (f.relpath, f.line, f.rule, f.message),
    )
    for fn in program.functions.values():
        for cs in fn.calls:
            if cs.reason is not None:
                report.unresolved.append(
                    Unresolved(
                        reason=cs.reason,
                        relpath=fn.relpath,
                        line=cs.line,
                        callee=cs.callee,
                        function=fn.qname,
                    )
                )
    return _apply_suppressions(report, sources)


def analyze_tree(roots: Sequence[Path]) -> FlowReport:
    """Analyze every ``*.py`` under each root."""
    program = build_program(roots)
    sources: Dict[str, str] = {}
    for relpath in program.modules:
        try:
            sources[relpath] = Path(relpath).read_text(encoding="utf-8")
        except OSError:
            sources[relpath] = ""
    return _analyze_program(program, sources)


def analyze_source(source: str, relpath: str = "<string>") -> FlowReport:
    """Analyze a single in-memory module (the test entry point)."""
    from .callgraph import build_program_from_sources

    program = build_program_from_sources([(relpath, source)])
    return _analyze_program(program, {relpath: source})


# ----------------------------------------------------------------------
# CLI.


def _print_graph(report: FlowReport) -> None:
    print(f"static lock graph: {len(report.labels)} labels, "
          f"{len(report.edges)} edges")
    for (src, dst), edge in sorted(report.edges.items()):
        print(edge.format())


def _print_unresolved(report: FlowReport) -> None:
    by_reason: Dict[str, List[Unresolved]] = {}
    for u in report.unresolved:
        by_reason.setdefault(u.reason, []).append(u)
    print(f"unresolved calls: {len(report.unresolved)}")
    for reason in sorted(by_reason):
        entries = by_reason[reason]
        print(f"  [{reason}] x{len(entries)}")
        for u in entries[:10]:
            print(f"    {u.relpath}:{u.line}: {u.callee} (in {u.function})")
        if len(entries) > 10:
            print(f"    ... {len(entries) - 10} more")


def main(argv: Sequence[str]) -> int:
    args = list(argv)
    show_graph = "--graph" in args
    show_unresolved = "--unresolved" in args
    as_json = "--json" in args
    paths = [
        a for a in args
        if a not in ("--graph", "--unresolved", "--json")
    ]
    if not paths or any(a in ("-h", "--help") for a in paths):
        print(__doc__)
        print(
            "usage: python -m repro.analysis.flow <path> [path...] "
            "[--graph] [--unresolved] [--json]"
        )
        return 0 if paths else 2
    roots = [Path(p) for p in paths]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"flow: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    report = analyze_tree(roots)
    if as_json:
        print(json.dumps(
            {
                "functions": report.functions,
                "labels": sorted(report.labels),
                "edges": sorted(list(e) for e in report.edges),
                "findings": [
                    {
                        "rule": f.rule,
                        "path": f.relpath,
                        "line": f.line,
                        "message": f.message,
                    }
                    for f in report.findings
                ],
                "unresolved": len(report.unresolved),
                "errors": report.errors,
            },
            indent=2,
        ))
        return 0 if report.clean else 1
    if show_graph:
        _print_graph(report)
    if show_unresolved:
        _print_unresolved(report)
    for error in report.errors:
        print(f"flow: parse error: {error}", file=sys.stderr)
    for finding in report.findings:
        print(finding.format())
    summary = (
        f"flow: {report.functions} function(s), "
        f"{len(report.labels)} lock label(s), "
        f"{len(report.edges)} static order edge(s), "
        f"{len(report.unresolved)} unresolved call(s), "
        f"{len(report.findings)} finding(s)"
    )
    if report.clean:
        print(summary)
        return 0
    print(summary, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
