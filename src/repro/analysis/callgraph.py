"""Best-effort program model and call graph for :mod:`repro.analysis.flow`.

This module turns a Python source tree into a *program model*: every
module, class, and function indexed; attribute and local-variable types
inferred just far enough to resolve method calls; every tracked-factory
lock identified by its **creation-site label** (the same label
:mod:`repro.analysis.sync` gives the runtime object, so the static and
dynamic lock graphs speak one vocabulary).

The walker then lowers every function body into a flat list of *ops*:

``Acquire``
    Entering ``with <lock>:`` where the context expression types to a
    tracked lock, recorded with the labels already held at that point.

``CallSite``
    Any call, resolved to zero or more target functions, with the held
    labels at the call.  Unresolved calls carry a *reason* (``super``,
    ``dynamic-callable``, ``container-callable``, ``unknown-receiver``,
    ...) - they are documented, never fatal: a call the analysis cannot
    see is missing coverage, not a crash.

``Blocking``
    A base may-block fact at this position: ``time.sleep``,
    ``Condition.wait`` (its own lock excluded from the held set, since
    waiting releases it), ``Event.wait``/``Thread.join``, ``.result()``
    / ``.join()`` / ``.wait()`` on unknown receivers, ``socket``/
    ``select`` operations, and every ``note_blocking(...)`` call site.

Deliberate modeling choices (mirroring the runtime semantics):

* ``threading.Thread(target=fn)`` and worker-pool task submission do
  **not** create a call edge at the registration site - the target runs
  later on another thread with an *empty* lock context, exactly as the
  dynamic tracker would observe it.  The target's own body is still
  analyzed standalone (nested functions and lambdas each get their own
  :class:`FunctionInfo`).
* Callables stored in attributes or containers and invoked through them
  (``self._fn()``, ``handlers[k]()``) resolve to nothing and are
  recorded as unresolved ``dynamic-callable`` / ``container-callable``.
* Decorated functions are modeled as their undecorated selves
  (``@property`` getters are additionally invoked at attribute reads).

Resolution is by bare name where imports would need full import-system
emulation: class names are unique in this tree (checked cheaply), and
ambiguous module-level function names resolve only within their own
module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "Acquire",
    "Blocking",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LockType",
    "ModuleInfo",
    "Program",
    "build_program",
    "build_program_from_sources",
]


# ----------------------------------------------------------------------
# Types.  ``None`` means unknown; everything else is a small marker.


@dataclass(frozen=True)
class LockType:
    """A tracked-factory lock identified by its creation-site label."""

    label: str
    reentrant: bool
    condition: bool


@dataclass(frozen=True)
class ClassType:
    """An instance of a known class (or a pseudo-class like
    ``threading.Event`` the analysis types specially)."""

    qname: str


@dataclass(frozen=True)
class ClassRef:
    """The class object itself (``Foo``, before a call constructs it)."""

    qname: str


@dataclass(frozen=True)
class FuncRef:
    """A first-class reference to a known function (``f = self._serve``)."""

    qname: str


@dataclass(frozen=True)
class DictType:
    value: Optional[object]


@dataclass(frozen=True)
class ItemsType:
    """The result of ``dict.items()``: iterating yields (key, value)."""

    value: Optional[object]


@dataclass(frozen=True)
class ListType:
    elem: Optional[object]


Type = Optional[object]


# ----------------------------------------------------------------------
# Ops emitted per function.


@dataclass(frozen=True)
class Acquire:
    label: str
    reentrant: bool
    condition: bool
    line: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    targets: Tuple[str, ...]
    reason: Optional[str]  # set when targets is empty and the call matters
    callee: str  # source text of the callee, for messages
    line: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class Blocking:
    what: str
    line: int
    held: Tuple[str, ...]  # own condition lock already excluded


# ----------------------------------------------------------------------
# Program structure.


@dataclass
class FunctionInfo:
    qname: str
    name: str
    relpath: str
    lineno: int
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    module: "ModuleInfo"
    cls: Optional["ClassInfo"] = None
    is_property: bool = False
    is_static: bool = False
    decorators: Tuple[str, ...] = ()
    return_type: Type = None
    closure: Dict[str, Type] = field(default_factory=dict)
    acquires: List[Acquire] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    blocks: List[Blocking] = field(default_factory=list)

    def __repr__(self) -> str:  # keep debug output short
        return f"<fn {self.qname}>"


@dataclass
class ClassInfo:
    qname: str
    name: str
    relpath: str
    lineno: int
    node: ast.ClassDef
    module: "ModuleInfo"
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, Type] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<class {self.qname}>"


@dataclass
class ModuleInfo:
    relpath: str
    dotted: str
    tree: ast.Module
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    globals_types: Dict[str, Type] = field(default_factory=dict)
    #: local name -> canonical dotted target ("t" -> "time",
    #: "sleep" -> "time.sleep", "TrackedLock" -> "...sync.TrackedLock").
    imports: Dict[str, str] = field(default_factory=dict)


@dataclass
class Program:
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: bare class name -> ClassInfo (class names are unique in-tree;
    #: a collision keeps the first and records the name as ambiguous).
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    ambiguous_classes: Set[str] = field(default_factory=set)
    errors: List[str] = field(default_factory=list)

    # -- lookups -------------------------------------------------------

    def resolve_class(self, name: str) -> Optional[ClassInfo]:
        if name in self.ambiguous_classes:
            return None
        return self.classes.get(name)

    def method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Look ``name`` up on ``cls`` and its (bare-named) bases."""
        seen: Set[str] = set()
        todo = [cls]
        while todo:
            cur = todo.pop(0)
            if cur.qname in seen:
                continue
            seen.add(cur.qname)
            fn = cur.methods.get(name)
            if fn is not None:
                return fn
            for base in cur.bases:
                parent = self.resolve_class(base)
                if parent is not None:
                    todo.append(parent)
        return None

    def attr_type(self, cls: ClassInfo, name: str) -> Type:
        seen: Set[str] = set()
        todo = [cls]
        while todo:
            cur = todo.pop(0)
            if cur.qname in seen:
                continue
            seen.add(cur.qname)
            if name in cur.attr_types:
                return cur.attr_types[name]
            for base in cur.bases:
                parent = self.resolve_class(base)
                if parent is not None:
                    todo.append(parent)
        return None

    def lock_labels(self) -> Set[str]:
        """Every creation-site label the analysis discovered."""
        labels: Set[str] = set()
        for mod in self.modules.values():
            for t in mod.globals_types.values():
                if isinstance(t, LockType):
                    labels.add(t.label)
        for cls in self.classes.values():
            for t in cls.attr_types.values():
                if isinstance(t, LockType):
                    labels.add(t.label)
        return labels


# ----------------------------------------------------------------------
# Small AST helpers (shared idiom with repro.analysis.lint).

_FACTORY_KINDS = {
    "TrackedLock": (False, False),
    "TrackedRLock": (True, False),
    "TrackedCondition": (False, True),
}

_LIST_BUILTINS = {"list", "sorted", "tuple", "reversed"}

_OPAQUE_BUILTINS = {
    "len", "range", "min", "max", "sum", "enumerate", "zip", "isinstance",
    "issubclass", "repr", "str", "int", "float", "bool", "print", "iter",
    "next", "getattr", "setattr", "hasattr", "id", "hash", "abs", "any",
    "all", "bytes", "bytearray", "set", "frozenset", "dict", "type",
    "vars", "format", "divmod", "round", "map", "filter", "callable",
    "open", "ord", "chr", "hex", "bin", "oct", "object", "memoryview",
    "globals", "locals", "exec", "eval", "input", "pow", "slice",
    "staticmethod", "classmethod", "property", "delattr",
}

_DICT_VALUE_METHODS = {"get", "pop", "setdefault"}

_STR_ANN_CONTAINERS_LIST = {
    "List", "Sequence", "Iterable", "Iterator", "Deque", "Set",
    "FrozenSet", "Collection", "MutableSequence", "list", "set",
    "frozenset", "deque",
}
_STR_ANN_CONTAINERS_DICT = {
    "Dict", "Mapping", "MutableMapping", "dict", "DefaultDict",
    "OrderedDict", "Counter",
}


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _callee_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<call>"


def _const_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ----------------------------------------------------------------------
# Builder.


class _Builder:
    def __init__(self, program: Program):
        self.program = program

    # -- pass 1: index modules ----------------------------------------

    def index_module(self, relpath: str, tree: ast.Module) -> ModuleInfo:
        dotted = relpath[:-3].replace("/", ".").replace("\\", ".")
        mod = ModuleInfo(relpath=relpath, dotted=dotted, tree=tree)
        self.program.modules[relpath] = mod
        for node in tree.body:
            self._index_top(mod, node)
        return mod

    def _index_top(self, mod: ModuleInfo, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                mod.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                target = f"{base}.{alias.name}" if base else alias.name
                mod.imports[alias.asname or alias.name] = target
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = self._make_function(mod, None, node, f"{mod.dotted}.{node.name}")
            mod.functions[node.name] = fn
        elif isinstance(node, ast.ClassDef):
            self._index_class(mod, node)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and import fallbacks.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._index_top(mod, child)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qname = f"{mod.dotted}.{node.name}"
        cls = ClassInfo(
            qname=qname,
            name=node.name,
            relpath=mod.relpath,
            lineno=node.lineno,
            node=node,
            module=mod,
            bases=tuple(
                b for b in (_last_name(base) for base in node.bases) if b
            ),
        )
        mod.classes[node.name] = cls
        if node.name in self.program.classes:
            self.program.ambiguous_classes.add(node.name)
        else:
            self.program.classes[node.name] = cls
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._make_function(
                    mod, cls, item, f"{qname}.{item.name}"
                )
                cls.methods[item.name] = fn

    def _make_function(
        self,
        mod: ModuleInfo,
        cls: Optional[ClassInfo],
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        qname: str,
    ) -> FunctionInfo:
        decorators = tuple(
            _dotted(d.func) if isinstance(d, ast.Call) else _dotted(d)
            for d in node.decorator_list
        )
        fn = FunctionInfo(
            qname=qname,
            name=node.name,
            relpath=mod.relpath,
            lineno=node.lineno,
            node=node,
            module=mod,
            cls=cls,
            is_property=any(
                d in ("property", "cached_property", "functools.cached_property")
                for d in decorators
            ),
            is_static=any(d == "staticmethod" for d in decorators),
            decorators=decorators,
        )
        self.program.functions[qname] = fn
        return fn

    # -- annotations ---------------------------------------------------

    def ann_type(self, mod: ModuleInfo, node: Optional[ast.expr]) -> Type:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = _last_name(node)
            if name in ("None", "Any", "object"):
                return None
            if _dotted(node) in ("threading.Event", "threading.Thread"):
                return ClassType(_dotted(node))
            cls = self._class_for_name(mod, name)
            if cls is not None:
                return ClassType(cls.qname)
            return None
        if isinstance(node, ast.Subscript):
            head = _last_name(node.value)
            inner = node.slice
            elts = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            if head == "Optional" and elts:
                return self.ann_type(mod, elts[0])
            if head == "Union":
                for e in elts:
                    t = self.ann_type(mod, e)
                    if t is not None:
                        return t
                return None
            if head in _STR_ANN_CONTAINERS_DICT and len(elts) == 2:
                return DictType(self.ann_type(mod, elts[1]))
            if head in _STR_ANN_CONTAINERS_LIST and elts:
                return ListType(self.ann_type(mod, elts[0]))
            if head == "Tuple":
                return None
        return None

    def _class_for_name(
        self, mod: ModuleInfo, name: str
    ) -> Optional[ClassInfo]:
        if not name:
            return None
        cls = mod.classes.get(name)
        if cls is not None:
            return cls
        target = mod.imports.get(name)
        if target is not None:
            name = target.rsplit(".", 1)[-1]
        return self.program.resolve_class(name)

    # -- lock factories ------------------------------------------------

    def factory_kind(self, mod: ModuleInfo, func: ast.expr) -> Optional[str]:
        """``TrackedLock``/``TrackedRLock``/``TrackedCondition`` when
        ``func`` names a tracked factory (directly or via import)."""
        name = _last_name(func)
        if name in _FACTORY_KINDS:
            target = mod.imports.get(name, name)
            if target.rsplit(".", 1)[-1] == name or target.endswith(name):
                return name
        return None

    def lock_from_factory(
        self,
        mod: ModuleInfo,
        kind: str,
        call: ast.Call,
        env: Dict[str, Type],
        typer: "_Typer",
    ) -> LockType:
        reentrant, condition = _FACTORY_KINDS[kind]
        if kind == "TrackedCondition":
            lock_arg: Optional[ast.expr] = None
            name_arg: Optional[ast.expr] = None
            if call.args:
                lock_arg = call.args[0]
            if len(call.args) > 1:
                name_arg = call.args[1]
            for kw in call.keywords:
                if kw.arg == "lock":
                    lock_arg = kw.value
                elif kw.arg == "name":
                    name_arg = kw.value
            if lock_arg is not None and not (
                isinstance(lock_arg, ast.Constant) and lock_arg.value is None
            ):
                under = typer.type_of(lock_arg, env)
                if isinstance(under, LockType):
                    return LockType(
                        label=under.label,
                        reentrant=under.reentrant,
                        condition=True,
                    )
            label = _const_str(name_arg)
            if label is None:
                label = f"{mod.relpath}:{call.lineno}"
            return LockType(label=label, reentrant=False, condition=True)
        name_arg = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "name":
                name_arg = kw.value
        label = _const_str(name_arg)
        if label is None:
            label = f"{mod.relpath}:{call.lineno}"
        return LockType(label=label, reentrant=reentrant, condition=condition)


def _last_name(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1].strip("'\" ")
    return ""


# ----------------------------------------------------------------------
# Expression typing (no op emission - used by attribute inference; the
# walker wraps it with emission).


class _Typer:
    def __init__(self, builder: _Builder, mod: ModuleInfo):
        self.builder = builder
        self.program = builder.program
        self.mod = mod

    def canonical(self, node: ast.expr) -> str:
        """Alias-aware dotted name: ``t.monotonic`` -> ``time.monotonic``."""
        dotted = _dotted(node)
        if not dotted:
            return ""
        head, _, rest = dotted.partition(".")
        target = self.mod.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def name_type(self, name: str, env: Dict[str, Type]) -> Type:
        if name in env:
            return env[name]
        if name in self.mod.globals_types:
            return self.mod.globals_types[name]
        if name in self.mod.functions:
            return FuncRef(self.mod.functions[name].qname)
        cls = self.builder._class_for_name(self.mod, name)
        if cls is not None:
            return ClassRef(cls.qname)
        return None

    def attr_type(self, vt: Type, attr: str) -> Type:
        if isinstance(vt, ClassType):
            cls = self.program.resolve_class(vt.qname.rsplit(".", 1)[-1])
            if cls is None:
                return None
            t = self.program.attr_type(cls, attr)
            if t is not None:
                return t
            m = self.program.method(cls, attr)
            if m is not None:
                if m.is_property:
                    return m.return_type
                return FuncRef(m.qname)
            return None
        return None

    def type_of(self, node: ast.expr, env: Dict[str, Type]) -> Type:
        """Best-effort type of ``node``; never raises."""
        if isinstance(node, ast.Name):
            return self.name_type(node.id, env)
        if isinstance(node, ast.Attribute):
            return self.attr_type(self.type_of(node.value, env), node.attr)
        if isinstance(node, ast.Call):
            return self.call_result(node, env)
        if isinstance(node, ast.IfExp):
            return (
                self.type_of(node.body, env)
                or self.type_of(node.orelse, env)
            )
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                t = self.type_of(value, env)
                if t is not None:
                    return t
            return None
        if isinstance(node, ast.NamedExpr):
            return self.type_of(node.value, env)
        if isinstance(node, ast.Await):
            return self.type_of(node.value, env)
        if isinstance(node, ast.Subscript):
            vt = self.type_of(node.value, env)
            if isinstance(vt, DictType):
                return vt.value
            if isinstance(vt, ListType):
                return vt.elem
            return None
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for elt in node.elts:
                t = self.type_of(elt, env)
                if t is not None:
                    return ListType(t)
            return ListType(None)
        if isinstance(node, ast.Dict):
            for v in node.values:
                if v is not None:
                    t = self.type_of(v, env)
                    if t is not None:
                        return DictType(t)
            return DictType(None)
        if isinstance(node, ast.ListComp):
            return ListType(None)
        return None

    def call_result(self, node: ast.Call, env: Dict[str, Type]) -> Type:
        """Result type of a call (no emission; mirror of resolve_call)."""
        kind, payload, result = self.resolve_call(node, env)
        del kind, payload
        return result

    # -- the shared resolver ------------------------------------------

    def resolve_call(
        self, node: ast.Call, env: Dict[str, Type]
    ) -> Tuple[str, object, Type]:
        """Classify one call.

        Returns ``(kind, payload, result_type)`` where kind is one of
        ``targets`` (payload: list of FunctionInfo), ``factory``
        (payload: LockType), ``blocking`` (payload: (what, exempt_label)),
        ``opaque`` (payload: None) or ``unresolved`` (payload: reason).
        """
        func = node.func
        builder = self.builder

        # Tracked-lock factories, by local or dotted name.
        kind = builder.factory_kind(self.mod, func)
        if kind is not None:
            lock = builder.lock_from_factory(self.mod, kind, node, env, self)
            return "factory", lock, lock

        canon = self.canonical(func) if not isinstance(func, ast.Call) else ""
        if canon:
            base = canon.rsplit(".", 1)[-1]
            if base == "note_blocking":
                what = _const_str(node.args[0]) if node.args else None
                return "blocking", (what or "note_blocking", None), None
            if canon == "time.sleep":
                return "blocking", ("time.sleep", None), None
            if canon.startswith(("socket.", "select.")):
                return "blocking", (canon, None), None
            if canon == "threading.Event":
                return "opaque", None, ClassType("threading.Event")
            if canon == "threading.Thread":
                # The target runs later, on its own thread, with an
                # empty lock context: no call edge here by design.
                return "opaque", None, ClassType("threading.Thread")

        if isinstance(func, ast.Name):
            return self._resolve_name_call(func.id, node, env)
        if isinstance(func, ast.Attribute):
            return self._resolve_attr_call(func, node, env)
        if isinstance(func, ast.Subscript):
            return "unresolved", "container-callable", None
        if isinstance(func, ast.Call):
            inner = self.type_of(func, env)
            if isinstance(inner, FuncRef):
                fn = self.program.functions.get(inner.qname)
                if fn is not None:
                    return "targets", [fn], fn.return_type
            return "unresolved", "call-of-call", None
        return "unresolved", "dynamic-callable", None

    def _resolve_name_call(
        self, name: str, node: ast.Call, env: Dict[str, Type]
    ) -> Tuple[str, object, Type]:
        bound = env.get(name)
        if isinstance(bound, FuncRef):
            fn = self.program.functions.get(bound.qname)
            if fn is not None:
                return "targets", [fn], fn.return_type
        if isinstance(bound, (ClassRef, ClassType)):
            return self._constructor(bound.qname)
        if bound is not None:
            return "unresolved", "dynamic-callable", None
        if name in self.mod.functions:
            fn = self.mod.functions[name]
            return "targets", [fn], fn.return_type
        cls = self.builder._class_for_name(self.mod, name)
        if cls is not None:
            return self._constructor(cls.qname)
        target = self.mod.imports.get(name)
        if target is not None:
            fn = self._function_by_bare_name(target.rsplit(".", 1)[-1])
            if fn is not None:
                return "targets", [fn], fn.return_type
            return "unresolved", "external-call", None
        if name == "super":
            return "unresolved", "super", None
        if name in _LIST_BUILTINS:
            arg_t = (
                self.type_of(node.args[0], env) if node.args else None
            )
            if isinstance(arg_t, (ListType, DictType, ItemsType)):
                if isinstance(arg_t, DictType):
                    return "opaque", None, ListType(None)
                if isinstance(arg_t, ItemsType):
                    return "opaque", None, arg_t
                return "opaque", None, arg_t
            return "opaque", None, ListType(None)
        if name in _OPAQUE_BUILTINS:
            return "opaque", None, None
        return "unresolved", "unknown-name", None

    def _function_by_bare_name(self, name: str) -> Optional[FunctionInfo]:
        found: Optional[FunctionInfo] = None
        for mod in self.program.modules.values():
            fn = mod.functions.get(name)
            if fn is not None:
                if found is not None:
                    return None  # ambiguous across modules
                found = fn
        return found

    def _constructor(self, qname: str) -> Tuple[str, object, Type]:
        bare = qname.rsplit(".", 1)[-1]
        cls = self.program.resolve_class(bare)
        if cls is None:
            return "opaque", None, ClassType(qname)
        targets: List[FunctionInfo] = []
        init = self.program.method(cls, "__init__")
        if init is not None:
            targets.append(init)
        post = self.program.method(cls, "__post_init__")
        if post is not None:
            targets.append(post)
        result: Type = ClassType(cls.qname)
        if targets:
            return "targets", targets, result
        return "opaque", None, result

    def _resolve_attr_call(
        self, func: ast.Attribute, node: ast.Call, env: Dict[str, Type]
    ) -> Tuple[str, object, Type]:
        attr = func.attr
        vt = self.type_of(func.value, env)

        if isinstance(vt, LockType):
            if vt.condition and attr in ("wait", "wait_for"):
                return "blocking", ("Condition.wait", vt.label), None
            if attr in ("acquire", "release", "locked", "notify",
                        "notify_all"):
                # Explicit acquire/release pairs are invisible to the
                # with-scoped model; surface them for the report.
                if attr == "acquire":
                    return "unresolved", "explicit-lock-op", None
                return "opaque", None, None
            return "opaque", None, None

        if isinstance(vt, ClassType):
            if vt.qname == "threading.Event":
                if attr == "wait":
                    return "blocking", ("Event.wait", None), None
                return "opaque", None, None
            if vt.qname == "threading.Thread":
                if attr == "join":
                    return "blocking", ("Thread.join", None), None
                return "opaque", None, None
            cls = self.program.resolve_class(vt.qname.rsplit(".", 1)[-1])
            if cls is not None:
                m = self.program.method(cls, attr)
                if m is not None and not m.is_property:
                    return "targets", [m], m.return_type
                at = self.program.attr_type(cls, attr)
                if at is not None or attr in _collect_attr_names(cls):
                    return "unresolved", "dynamic-callable", None
                return "unresolved", "unresolved-attribute", None

        if isinstance(vt, (ClassRef, FuncRef)):
            if isinstance(vt, ClassRef):
                cls = self.program.resolve_class(vt.qname.rsplit(".", 1)[-1])
                if cls is not None:
                    m = self.program.method(cls, attr)
                    if m is not None:
                        return "targets", [m], m.return_type
            return "unresolved", "dynamic-callable", None

        if isinstance(vt, DictType):
            if attr in _DICT_VALUE_METHODS:
                return "opaque", None, vt.value
            if attr == "values":
                return "opaque", None, ListType(vt.value)
            if attr == "items":
                return "opaque", None, ItemsType(vt.value)
            return "opaque", None, None
        if isinstance(vt, (ListType, ItemsType)):
            if attr in ("pop", "popleft", "popright"):
                elem = vt.elem if isinstance(vt, ListType) else None
                return "opaque", None, elem
            if attr == "copy":
                return "opaque", None, vt
            return "opaque", None, None

        # Unknown receiver: the conservative blocking heuristics.
        if attr == "wait":
            return "blocking", ("?.wait", None), None
        if attr == "result":
            return "blocking", (".result()", None), None
        if attr == "join":
            if isinstance(func.value, ast.Constant):
                return "opaque", None, None  # ", ".join(...)
            if node.args and isinstance(
                node.args[0], (ast.GeneratorExp, ast.ListComp)
            ):
                return "opaque", None, None
            canon = self.canonical(func)
            if canon.startswith(("os.", "posixpath.", "ntpath.")):
                return "opaque", None, None
            return "blocking", (".join()", None), None
        return "unresolved", "unknown-receiver", None


def _collect_attr_names(cls: ClassInfo) -> Set[str]:
    return set(cls.attr_types)


# ----------------------------------------------------------------------
# Attribute inference (pass 2): a light, ordered walk of every method
# recording ``self.x = ...`` types, iterated to a cross-class fixpoint.


class _AttrPass(ast.NodeVisitor):
    def __init__(self, builder: _Builder, cls: ClassInfo, fn: FunctionInfo):
        self.builder = builder
        self.cls = cls
        self.typer = _Typer(builder, cls.module)
        self.env: Dict[str, Type] = _param_env(builder, fn)
        self.changed = False

    def _merge_attr(self, attr: str, t: Type) -> None:
        if t is None:
            return
        cur = self.cls.attr_types.get(attr)
        if cur is None or (
            isinstance(t, LockType) and not isinstance(cur, LockType)
        ):
            if cur != t:
                self.cls.attr_types[attr] = t
                self.changed = True

    def visit_Assign(self, node: ast.Assign) -> None:
        t = self.typer.type_of(node.value, self.env)
        for target in node.targets:
            self._bind(target, t, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        t = None
        if node.value is not None:
            t = self.typer.type_of(node.value, self.env)
        if t is None:
            t = self.builder.ann_type(self.cls.module, node.annotation)
        self._bind(node.target, t, node.value)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        _bind_for_target(self, node)
        self.generic_visit(node)

    def _bind(
        self, target: ast.expr, t: Type, value: Optional[ast.expr]
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = t
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self._merge_attr(target.attr, t)

    # Do not descend into nested scopes when inferring attributes.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _bind_for_target(walker, node: ast.For) -> None:
    it = walker.typer.type_of(node.iter, walker.env)
    elem: Type = None
    if isinstance(it, ListType):
        elem = it.elem
    elif isinstance(it, ItemsType):
        if isinstance(node.target, ast.Tuple) and len(node.target.elts) == 2:
            key_t, val_t = None, it.value
            for tgt, t in zip(node.target.elts, (key_t, val_t)):
                if isinstance(tgt, ast.Name):
                    walker.env[tgt.id] = t
            return
    if isinstance(node.target, ast.Name):
        walker.env[node.target.id] = elem
    elif isinstance(node.target, ast.Tuple):
        for tgt in node.target.elts:
            if isinstance(tgt, ast.Name):
                walker.env[tgt.id] = None


def _param_env(builder: _Builder, fn: FunctionInfo) -> Dict[str, Type]:
    env: Dict[str, Type] = dict(fn.closure)
    node = fn.node
    args = node.args
    all_args = (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )
    for a in all_args:
        env[a.arg] = builder.ann_type(fn.module, a.annotation)
    if (
        fn.cls is not None
        and not fn.is_static
        and all_args
        and all_args[0].arg in ("self", "cls")
    ):
        if all_args[0].arg == "self":
            env["self"] = ClassType(fn.cls.qname)
        else:
            env["cls"] = ClassRef(fn.cls.qname)
    return env


def _class_body_attrs(builder: _Builder, cls: ClassInfo) -> bool:
    """Class-body fields: plain and ``dataclass`` ``field(...)`` forms."""
    typer = _Typer(builder, cls.module)
    changed = False

    def merge(attr: str, t: Type) -> None:
        nonlocal changed
        if t is None:
            return
        cur = cls.attr_types.get(attr)
        if cur is None or (
            isinstance(t, LockType) and not isinstance(cur, LockType)
        ):
            if cur != t:
                cls.attr_types[attr] = t
                changed = True

    for item in cls.node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            t: Type = None
            value = item.value
            if (
                isinstance(value, ast.Call)
                and _last_name(value.func) == "field"
            ):
                for kw in value.keywords:
                    if kw.arg == "default_factory":
                        factory = kw.value
                        if isinstance(factory, ast.Lambda):
                            t = typer.type_of(factory.body, {})
                        elif isinstance(factory, (ast.Name, ast.Attribute)):
                            fake = ast.Call(
                                func=factory, args=[], keywords=[]
                            )
                            ast.copy_location(fake, value)
                            t = typer.type_of(fake, {})
            elif value is not None:
                t = typer.type_of(value, {})
            if t is None:
                t = builder.ann_type(cls.module, item.annotation)
            merge(item.target.id, t)
        elif isinstance(item, ast.Assign):
            t = typer.type_of(item.value, {})
            for target in item.targets:
                if isinstance(target, ast.Name):
                    merge(target.id, t)
    return changed


# ----------------------------------------------------------------------
# Body walk (pass 3): emit ops per function.


class _FunctionWalker:
    def __init__(self, builder: _Builder, fn: FunctionInfo):
        self.builder = builder
        self.program = builder.program
        self.fn = fn
        self.typer = _Typer(builder, fn.module)
        self.env = _param_env(builder, fn)
        #: stack of (label, reentrant, condition)
        self.held: List[Tuple[str, bool, bool]] = []
        self._anon = 0

    def held_labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _, _ in self.held)

    def run(self) -> List[FunctionInfo]:
        """Walk the body; returns nested functions discovered."""
        self.nested: List[FunctionInfo] = []
        node = self.fn.node
        if isinstance(node, ast.Lambda):
            self.wtype(node.body)
        else:
            for stmt in node.body:
                self.stmt(stmt)
        return self.nested

    # -- statements ----------------------------------------------------

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Expr):
            self.wtype(node.value)
        elif isinstance(node, ast.Assign):
            t = self.wtype(node.value)
            for target in node.targets:
                self._bind(target, t)
        elif isinstance(node, ast.AnnAssign):
            t = None
            if node.value is not None:
                t = self.wtype(node.value)
            if t is None:
                t = self.builder.ann_type(self.fn.module, node.annotation)
            self._bind(node.target, t)
        elif isinstance(node, ast.AugAssign):
            self.wtype(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.wtype(node.value)
        elif isinstance(node, (ast.If, ast.While)):
            self.wtype(node.test)
            for s in node.body:
                self.stmt(s)
            for s in node.orelse:
                self.stmt(s)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.wtype(node.iter)
            _bind_for_target(self, node)
            for s in node.body:
                self.stmt(s)
            for s in node.orelse:
                self.stmt(s)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, ast.Try):
            for s in node.body:
                self.stmt(s)
            for handler in node.handlers:
                for s in handler.body:
                    self.stmt(s)
            for s in node.orelse:
                self.stmt(s)
            for s in node.finalbody:
                self.stmt(s)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.wtype(node.exc)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = self._nested_function(node, node.name)
            self.env[node.name] = FuncRef(nested.qname)
        elif isinstance(node, ast.Assert):
            self.wtype(node.test)
            if node.msg is not None:
                self.wtype(node.msg)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                self.wtype(t)
        elif isinstance(node, ast.ClassDef):
            pass  # nested classes: out of scope for the model
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to do.

    def _bind(self, target: ast.expr, t: Type) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = t
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.env[elt.id] = None
        elif isinstance(target, ast.Attribute):
            self.wtype(target.value)

    def _with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        pushed = 0
        exit_calls: List[Tuple[FunctionInfo, int]] = []
        for item in node.items:
            t = self.wtype(item.context_expr)
            if isinstance(t, LockType):
                self.fn.acquires.append(
                    Acquire(
                        label=t.label,
                        reentrant=t.reentrant,
                        condition=t.condition,
                        line=item.context_expr.lineno,
                        held=self.held_labels(),
                    )
                )
                self.held.append((t.label, t.reentrant, t.condition))
                pushed += 1
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = t
            else:
                if isinstance(t, ClassType):
                    cls = self.program.resolve_class(
                        t.qname.rsplit(".", 1)[-1]
                    )
                    if cls is not None:
                        enter = self.program.method(cls, "__enter__")
                        exit_ = self.program.method(cls, "__exit__")
                        line = item.context_expr.lineno
                        if enter is not None:
                            self._emit_targets([enter], "__enter__", line)
                        if exit_ is not None:
                            exit_calls.append((exit_, line))
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = t
        for s in node.body:
            self.stmt(s)
        for exit_fn, line in exit_calls:
            self._emit_targets([exit_fn], "__exit__", line)
        for _ in range(pushed):
            self.held.pop()

    # -- expressions ---------------------------------------------------

    def wtype(self, node: ast.expr) -> Type:
        """Walk ``node`` (emitting ops for calls) and return its type."""
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            vt = self.wtype(node.value)
            if isinstance(vt, ClassType):
                cls = self.program.resolve_class(vt.qname.rsplit(".", 1)[-1])
                if cls is not None:
                    m = self.program.method(cls, node.attr)
                    if m is not None and m.is_property and isinstance(
                        node.ctx, ast.Load
                    ):
                        # Reading a property runs its getter.
                        self._emit_targets([m], _callee_text(node), node.lineno)
                        return m.return_type
            return self.typer.attr_type(vt, node.attr)
        if isinstance(node, ast.Name):
            return self.typer.name_type(node.id, self.env)
        if isinstance(node, ast.Lambda):
            nested = self._nested_function(node, f"<lambda:{node.lineno}>")
            return FuncRef(nested.qname)
        if isinstance(node, ast.IfExp):
            self.wtype(node.test)
            t1 = self.wtype(node.body)
            t2 = self.wtype(node.orelse)
            return t1 or t2
        if isinstance(node, ast.BoolOp):
            result: Type = None
            for value in node.values:
                t = self.wtype(value)
                result = result or t
            return result
        if isinstance(node, ast.NamedExpr):
            t = self.wtype(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = t
            return t
        if isinstance(node, ast.Await):
            return self.wtype(node.value)
        if isinstance(node, ast.Subscript):
            vt = self.wtype(node.value)
            self.wtype(node.slice)
            if isinstance(vt, DictType):
                return vt.value
            if isinstance(vt, ListType):
                return vt.elem
            return None
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                self.wtype(gen.iter)
                for cond in gen.ifs:
                    self.wtype(cond)
            if isinstance(node, ast.DictComp):
                self.wtype(node.key)
                self.wtype(node.value)
            else:
                self.wtype(node.elt)
            return ListType(None)
        # Generic recursion for everything else.
        result = None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                t = self.wtype(child)
                if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                    result = result or (ListType(t) if t else None)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return result or ListType(None)
        return None

    def _call(self, node: ast.Call) -> Type:
        # Walk the receiver chain and arguments first (their calls are
        # real and happen before this one).
        receiver_walked = False
        if isinstance(node.func, ast.Attribute):
            self.wtype(node.func.value)
            receiver_walked = True
        elif isinstance(node.func, (ast.Call, ast.Subscript, ast.Lambda)):
            self.wtype(node.func)
            receiver_walked = True
        for arg in node.args:
            self.wtype(arg.value if isinstance(arg, ast.Starred) else arg)
        for kw in node.keywords:
            self.wtype(kw.value)
        del receiver_walked

        kind, payload, result = self.typer.resolve_call(node, self.env)
        callee = _callee_text(node.func)
        line = node.lineno
        if kind == "targets":
            self._emit_targets(list(payload), callee, line)
        elif kind == "blocking":
            what, exempt = payload
            held = self.held_labels()
            if exempt is not None:
                held = tuple(l for l in held if l != exempt)
            self.fn.blocks.append(Blocking(what=what, line=line, held=held))
        elif kind == "unresolved":
            self.fn.calls.append(
                CallSite(
                    targets=(),
                    reason=str(payload),
                    callee=callee,
                    line=line,
                    held=self.held_labels(),
                )
            )
        # "factory" and "opaque": nothing to emit.
        return result

    def _emit_targets(
        self, targets: List[FunctionInfo], callee: str, line: int
    ) -> None:
        self.fn.calls.append(
            CallSite(
                targets=tuple(t.qname for t in targets),
                reason=None,
                callee=callee,
                line=line,
                held=self.held_labels(),
            )
        )

    def _nested_function(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda],
        name: str,
    ) -> FunctionInfo:
        qname = f"{self.fn.qname}.{name}"
        if qname in self.program.functions:
            self._anon += 1
            qname = f"{qname}#{self._anon}"
        fn = FunctionInfo(
            qname=qname,
            name=name,
            relpath=self.fn.relpath,
            lineno=node.lineno,
            node=node,
            module=self.fn.module,
            cls=self.fn.cls,
            closure=dict(self.env),
        )
        if not isinstance(node, ast.Lambda):
            fn.return_type = self.builder.ann_type(
                self.fn.module, node.returns
            )
        self.program.functions[qname] = fn
        self.nested.append(fn)
        return fn


# ----------------------------------------------------------------------
# Module-level globals (locks and simple constants).


def _module_globals(builder: _Builder, mod: ModuleInfo) -> None:
    typer = _Typer(builder, mod)
    for node in mod.tree.body:
        if isinstance(node, ast.Assign):
            t = typer.type_of(node.value, {})
            if t is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    mod.globals_types.setdefault(target.id, t)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            t = None
            if node.value is not None:
                t = typer.type_of(node.value, {})
            if t is None:
                t = builder.ann_type(mod, node.annotation)
            if t is not None:
                mod.globals_types.setdefault(node.target.id, t)


# ----------------------------------------------------------------------
# Entry point.


def _iter_sources(roots: Sequence[Path]):
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            yield path


def build_program(roots: Sequence[Path]) -> Program:
    """Parse every ``*.py`` under ``roots`` into a :class:`Program`.

    Files that fail to parse are recorded in :attr:`Program.errors`
    and skipped; the builder itself never raises on input source.
    """
    sources: List[Tuple[str, str]] = []
    for path in _iter_sources(roots):
        try:
            sources.append((str(path), path.read_text(encoding="utf-8")))
        except OSError as exc:  # pragma: no cover - racing deletions
            sources.append((str(path), ""))
            del exc
    return build_program_from_sources(sources)


def build_program_from_sources(
    sources: Sequence[Tuple[str, str]],
) -> Program:
    """Build a :class:`Program` from ``(relpath, source)`` pairs."""
    program = Program()
    builder = _Builder(program)
    parsed: List[Tuple[str, ast.Module]] = []
    for relpath, text in sources:
        try:
            tree = ast.parse(text, filename=relpath)
        except SyntaxError as exc:
            program.errors.append(f"{relpath}:{exc.lineno or 0}: {exc.msg}")
            continue
        parsed.append((relpath, tree))

    for relpath, tree in parsed:
        builder.index_module(relpath, tree)

    # Resolve return annotations now that every class is indexed.
    for fn in list(program.functions.values()):
        node = fn.node
        if not isinstance(node, ast.Lambda):
            fn.return_type = builder.ann_type(fn.module, node.returns)

    for mod in program.modules.values():
        _module_globals(builder, mod)

    # Attribute inference to a cross-class fixpoint.
    for _ in range(8):
        changed = False
        for cls in [
            c for m in program.modules.values() for c in m.classes.values()
        ]:
            changed |= _class_body_attrs(builder, cls)
            for fn in cls.methods.values():
                if isinstance(fn.node, ast.Lambda):
                    continue
                attr_pass = _AttrPass(builder, cls, fn)
                for stmt in fn.node.body:
                    attr_pass.visit(stmt)
                changed |= attr_pass.changed
        if not changed:
            break

    # Body walk; nested functions are appended and walked in turn.
    todo = list(program.functions.values())
    walked: Set[str] = set()
    while todo:
        fn = todo.pop(0)
        if fn.qname in walked:
            continue
        walked.add(fn.qname)
        walker = _FunctionWalker(builder, fn)
        todo.extend(walker.run())

    return program
