"""Tracked locks: a lock-order race detector for the executing runtime.

The repo is a genuinely concurrent system - worker pools, wire-sequenced
channels, gossip frames racing with in-flight delegations - and every
concurrency bug so far was found *by hand in review*.  This module makes
lock discipline machine-checked, lockdep-style:

* :func:`TrackedLock` / :func:`TrackedRLock` / :func:`TrackedCondition`
  are drop-in factories for the ``threading`` primitives.  With tracking
  **disabled** (the default) they return the raw ``threading`` objects -
  zero overhead, the same pass-through contract as
  :data:`repro.obs.NULL_OBS`.  With tracking **enabled** (pytest's
  ``--race`` flag, or :func:`enable_tracking` / :func:`tracking`) they
  return instrumented wrappers bound to a :class:`LockTracker`.

* The tracker records a process-wide **lock-acquisition graph**: an edge
  ``A -> B`` means some thread acquired ``B`` while holding ``A``, with
  the stack of the first such acquisition.  Acquiring an edge that
  closes a cycle in the graph is a **lock-order inversion** - the ABBA
  pattern that deadlocks under the right interleaving even if this run
  happened to get away with it - and is reported with *both* stacks:
  the acquisition that closed the cycle and the stored stack of every
  edge along the inverted path.

* Re-acquiring a non-reentrant lock the same thread already holds would
  hang forever; the tracker raises :class:`DeadlockError` *before*
  blocking (and records the self-cycle), so the test fails instead of
  wedging the suite.

* :func:`note_blocking` marks known blocking operations - paying
  :meth:`Channel.transit <repro.fixpoint.net.Channel.transit>` latency,
  waiting a :class:`~repro.fixpoint.net.Delegation` future
  (:meth:`Job.wait <repro.fixpoint.jobs.Job.wait>`), a worker join,
  ``Condition.wait`` - and records a **hold-while-blocking** event when
  the calling thread holds any tracked lock at that moment (a condition
  waiter's own lock is exempt: ``wait`` releases it).  Holding a lock
  across a blocking call is how PR 4's one-worker dispatch wedge and
  most delivery-window hangs are born.

Cycle detection is *instance*-level (two distinct node locks acquired in
both orders), so consistent-but-concurrent suites never false-positive;
the reports name locks by the site label passed at construction
(``"FixpointNode._lock"``) plus a per-tracker serial, so two instances
of the same class stay distinguishable.

This module deliberately imports nothing from the rest of ``repro`` -
every lock site in the tree imports *it*, and the linter
(:mod:`repro.analysis.lint`) forbids raw ``threading.Lock()`` anywhere
else.
"""

from __future__ import annotations

import sys
import threading
import traceback
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DeadlockError",
    "LockOrderError",
    "LockTracker",
    "RaceReport",
    "TrackedCondition",
    "TrackedLock",
    "TrackedRLock",
    "base_label",
    "current_tracker",
    "disable_tracking",
    "enable_tracking",
    "note_blocking",
    "tracking",
]

#: Stack frames captured per acquisition site in reports.
_STACK_DEPTH = 14


class LockOrderError(RuntimeError):
    """A lock-order inversion (raised only by ``on_cycle='raise'``)."""


class DeadlockError(LockOrderError):
    """An acquisition that would provably hang (self-deadlock)."""


def _capture_stack(skip: int = 2) -> str:
    """The caller's stack, formatted, minus ``skip`` tracker frames."""
    frame = sys._getframe(skip)
    return "".join(traceback.format_stack(frame, limit=_STACK_DEPTH))


@dataclass(frozen=True)
class CycleReport:
    """One detected lock-order inversion.

    ``names`` walks the cycle: ``names[i]`` was held while ``names[i+1]``
    was acquired (and the last entry wraps to the first).  ``stacks``
    holds, per edge, the formatted stack of the acquisition that first
    created it - including the acquisition that closed the cycle, so an
    ABBA inversion reports *both* stacks.
    """

    names: Tuple[str, ...]
    stacks: Tuple[Tuple[str, str, str], ...]  # (held, acquired, stack)

    def format(self) -> str:
        lines = [f"lock-order inversion: {' -> '.join(self.names)}"]
        for held, acquired, stack in self.stacks:
            lines.append(f"  acquired {acquired} while holding {held} at:")
            lines.extend(
                "    " + ln for ln in stack.rstrip("\n").split("\n")
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class BlockingReport:
    """A blocking operation performed while holding tracked locks."""

    what: str
    held: Tuple[str, ...]
    stack: str

    def format(self) -> str:
        lines = [f"blocking on {self.what} while holding {list(self.held)} at:"]
        lines.extend("  " + ln for ln in self.stack.rstrip("\n").split("\n"))
        return "\n".join(lines)


def base_label(label: str) -> str:
    """Strip the per-instance ``#uid`` serial off a tracker label.

    Every runtime lock label is ``{creation-site name}#{uid}`` so two
    instances of the same class stay distinguishable; the *base* label
    (the creation-site half) is the vocabulary the static analysis in
    :mod:`repro.analysis.flow` speaks, and what the static<->dynamic
    cross-check compares on.
    """
    head, sep, tail = label.rpartition("#")
    if sep and tail.isdigit():
        return head
    return label


@dataclass(frozen=True)
class RaceReport:
    """Everything one tracker saw: inversions and hold-while-blocking."""

    cycles: Tuple[CycleReport, ...]
    blocking: Tuple[BlockingReport, ...]
    locks: int
    edges: int
    #: Observed acquisition-order edges at creation-site (base-label)
    #: granularity, deduplicated: ``dst`` was acquired while ``src``
    #: was held.  The static<->dynamic cross-check consumes this.
    edge_pairs: Tuple[Tuple[str, str], ...] = ()

    @property
    def clean(self) -> bool:
        return not self.cycles and not self.blocking

    def format(self) -> str:
        lines = [
            f"race report: {self.locks} locks, {self.edges} order edges, "
            f"{len(self.cycles)} inversion(s), "
            f"{len(self.blocking)} hold-while-blocking event(s)"
        ]
        for cycle in self.cycles:
            lines.append(cycle.format())
        for event in self.blocking:
            lines.append(event.format())
        return "\n".join(lines)


class _Held:
    """One entry of a thread's held-lock stack (depth counts reentry)."""

    __slots__ = ("lock", "depth")

    def __init__(self, lock: "_TrackedLock"):
        self.lock = lock
        self.depth = 1


@dataclass
class _Edge:
    """First-seen acquisition of ``dst`` while holding ``src``."""

    src_name: str
    dst_name: str
    stack: str


class LockTracker:
    """A process-wide lock-acquisition graph plus its findings.

    Every lock minted by :meth:`lock` / :meth:`rlock` /
    :meth:`condition` reports to this tracker for its whole life, even
    if a different tracker is installed later - which is what lets a
    test reconstruct a deadlock against a private tracker without
    polluting the suite-wide ``--race`` report.

    ``on_cycle='raise'`` turns inversion detection into an immediate
    :class:`LockOrderError` at the closing acquisition (useful when a
    test wants the failure at the faulty line); the default records the
    cycle and lets execution continue, because this run's interleaving
    already proved survivable - it is the *next* one that deadlocks.
    """

    def __init__(self, name: str = "race", on_cycle: str = "record"):
        if on_cycle not in ("record", "raise"):
            raise ValueError(f"on_cycle must be 'record' or 'raise': {on_cycle!r}")
        self.name = name
        self.on_cycle = on_cycle
        self._mutex = threading.Lock()  # raw by necessity: the tracker itself
        self._tls = threading.local()
        self._next_uid = 0
        self._lock_names: Dict[int, str] = {}
        #: uid -> {uid -> _Edge}: "acquired key while holding row".
        self._graph: Dict[int, Dict[int, _Edge]] = {}
        self._cycles: List[CycleReport] = []
        self._seen_cycles: set = set()
        self._blocking: List[BlockingReport] = []
        self._seen_blocking: set = set()
        _LIVE.add(self)

    # ------------------------------------------------------------------
    # Factories

    def lock(self, name: Optional[str] = None) -> "_TrackedLock":
        return _TrackedLock(self, self._register(name), reentrant=False)

    def rlock(self, name: Optional[str] = None) -> "_TrackedLock":
        return _TrackedLock(self, self._register(name), reentrant=True)

    def condition(
        self,
        lock: Optional["_TrackedLock"] = None,
        name: Optional[str] = None,
    ) -> "_TrackedCondition":
        if lock is None:
            lock = self.lock(name)
        return _TrackedCondition(self, lock)

    def _register(self, name: Optional[str]) -> Tuple[int, str]:
        with self._mutex:
            uid = self._next_uid
            self._next_uid += 1
            label = f"{name or _callsite_label()}#{uid}"
            self._lock_names[uid] = label
            return uid, label

    # ------------------------------------------------------------------
    # Acquisition bookkeeping (called by the wrappers)

    def _stack(self) -> List[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _before_acquire(self, lock: "_TrackedLock", blocking: bool) -> None:
        stack = self._stack()
        for held in stack:
            if held.lock is lock:
                if lock._reentrant:
                    return  # reentry: no new ordering information
                if not blocking:
                    return  # try-lock of a held lock just fails; no hang
                report = CycleReport(
                    names=(lock._label, lock._label),
                    stacks=(
                        (lock._label, lock._label, _capture_stack(3)),
                    ),
                )
                with self._mutex:
                    self._cycles.append(report)
                raise DeadlockError(
                    f"{self.name}: thread {threading.current_thread().name!r} "
                    f"re-acquiring non-reentrant {lock._label} it already "
                    f"holds would deadlock\n{report.format()}"
                )
        if not blocking or not stack:
            return
        dst = lock._uid
        with self._mutex:
            new_edges: List[Tuple[int, str]] = []
            cycle_path: Optional[List[_Edge]] = None
            cycle_src: Optional[_Held] = None
            for held in stack:
                src = held.lock._uid
                row = self._graph.setdefault(src, {})
                if dst not in row:
                    new_edges.append((src, held.lock._label))
                if cycle_path is None:
                    path = self._find_path(dst, src)
                    if path is not None:
                        cycle_path = path
                        cycle_src = held
            if not new_edges and cycle_path is None:
                return  # hot path: known ordering, no cycle
            stack_text = _capture_stack(3)
            for src, src_label in new_edges:
                self._graph[src][dst] = _Edge(src_label, lock._label, stack_text)
            if cycle_path is not None:
                self._record_cycle(cycle_src, lock, cycle_path, stack_text)
        if cycle_path is not None and self.on_cycle == "raise":
            raise LockOrderError(
                f"{self.name}: lock-order inversion closing "
                f"{cycle_src.lock._label} -> {lock._label}\n"
                + self._cycles[-1].format()
            )

    def _find_path(self, start: int, goal: int) -> Optional[List[_Edge]]:
        """DFS for a path ``start -> ... -> goal`` in the edge graph."""
        if start == goal:
            return []
        seen = {start}
        todo: List[Tuple[int, List[_Edge]]] = [(start, [])]
        while todo:
            node, path = todo.pop()
            for nxt, edge in self._graph.get(node, {}).items():
                if nxt == goal:
                    return path + [edge]
                if nxt not in seen:
                    seen.add(nxt)
                    todo.append((nxt, path + [edge]))
        return None

    def _record_cycle(
        self,
        held: _Held,
        lock: "_TrackedLock",
        path: Sequence[_Edge],
        stack_text: str,
    ) -> None:
        # The cycle: held -> lock (the closing acquisition, stack_text),
        # then lock -> ... -> held (the stored path edges).
        names = [held.lock._label, lock._label]
        stacks = [(held.lock._label, lock._label, stack_text)]
        for edge in path:
            names.append(edge.dst_name)
            stacks.append((edge.src_name, edge.dst_name, edge.stack))
        key = frozenset(names)
        if key in self._seen_cycles:
            return
        self._seen_cycles.add(key)
        self._cycles.append(
            CycleReport(names=tuple(names[:-1]), stacks=tuple(stacks))
        )

    def _note_acquired(self, lock: "_TrackedLock") -> None:
        stack = self._stack()
        for held in stack:
            if held.lock is lock:
                held.depth += 1
                return
        stack.append(_Held(lock))

    def _note_released(self, lock: "_TrackedLock") -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.lock is lock:
                held.depth -= 1
                if held.depth == 0:
                    del stack[index]
                return

    # ------------------------------------------------------------------
    # Blocking-while-holding

    def note_blocking(
        self, what: str, exclude: Optional["_TrackedLock"] = None
    ) -> None:
        """Record ``what`` as a blocking operation if this thread holds
        any of this tracker's locks (minus ``exclude``, a condition
        waiter's own lock, which ``wait`` releases while blocked)."""
        held = [h for h in self._stack() if h.lock is not exclude]
        if not held:
            return
        names = tuple(h.lock._label for h in held)
        key = (what, names)
        stack_text = _capture_stack(2)
        with self._mutex:
            if key in self._seen_blocking:
                return
            self._seen_blocking.add(key)
            self._blocking.append(
                BlockingReport(what=what, held=names, stack=stack_text)
            )

    # ------------------------------------------------------------------
    # Reporting

    def report(self) -> RaceReport:
        with self._mutex:
            pairs = {
                (base_label(edge.src_name), base_label(edge.dst_name))
                for row in self._graph.values()
                for edge in row.values()
            }
            return RaceReport(
                cycles=tuple(self._cycles),
                blocking=tuple(self._blocking),
                locks=self._next_uid,
                edges=sum(len(row) for row in self._graph.values()),
                edge_pairs=tuple(sorted(pairs)),
            )

    def reset(self) -> None:
        with self._mutex:
            self._graph.clear()
            self._cycles.clear()
            self._seen_cycles.clear()
            self._blocking.clear()
            self._seen_blocking.clear()


class _TrackedLock:
    """Instrumented ``Lock``/``RLock`` twin reporting to one tracker.

    Implements the full ``threading`` lock protocol including the
    ``_release_save`` / ``_acquire_restore`` / ``_is_owned`` trio, so a
    ``threading.Condition`` built over it delegates every transition
    through the tracker (including the full release a reentrant holder's
    ``wait`` performs).
    """

    __slots__ = ("_tracker", "_uid", "_label", "_reentrant", "_inner")

    def __init__(
        self, tracker: LockTracker, ident: Tuple[int, str], reentrant: bool
    ):
        self._tracker = tracker
        self._uid, self._label = ident
        self._reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._tracker._before_acquire(self, blocking)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._tracker._note_acquired(self)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._tracker._note_released(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        if locked is not None:
            return locked()
        return self._is_owned()

    # -- the Condition integration protocol ----------------------------

    def _is_owned(self) -> bool:
        return any(h.lock is self for h in self._tracker._stack())

    def _release_save(self) -> int:
        depth = 0
        for held in self._tracker._stack():
            if held.lock is self:
                depth = held.depth
                break
        if depth == 0:
            raise RuntimeError(f"cannot release un-acquired {self._label}")
        for _ in range(depth):
            self.release()
        return depth

    def _acquire_restore(self, depth: int) -> None:
        for _ in range(depth):
            self.acquire()

    def __repr__(self) -> str:
        kind = "TrackedRLock" if self._reentrant else "TrackedLock"
        return f"<{kind} {self._label} tracker={self._tracker.name!r}>"


class _TrackedCondition:
    """``threading.Condition`` over a tracked lock, with wait() counted
    as a blocking operation (own lock exempt - wait releases it)."""

    __slots__ = ("_tracker", "_lock", "_cond")

    def __init__(self, tracker: LockTracker, lock: _TrackedLock):
        self._tracker = tracker
        self._lock = lock
        self._cond = threading.Condition(lock)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> bool:
        return self._lock.__enter__()

    def __exit__(self, *exc) -> None:
        self._lock.__exit__(*exc)

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._tracker.note_blocking("Condition.wait", exclude=self._lock)
        return self._cond.wait(timeout)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        self._tracker.note_blocking("Condition.wait", exclude=self._lock)
        return self._cond.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:
        return f"<TrackedCondition over {self._lock!r}>"


# ----------------------------------------------------------------------
# Module-level switchboard: the factories every lock site calls

#: Trackers that exist right now; checked (cheaply: an empty-set bool)
#: by :func:`note_blocking` on instrumented blocking paths.
_LIVE: "weakref.WeakSet[LockTracker]" = weakref.WeakSet()

#: The installed tracker new locks bind to; ``None`` = tracking off and
#: the factories return raw ``threading`` primitives.
_current: Optional[LockTracker] = None


def _callsite_label(skip: int = 3) -> str:
    frame = sys._getframe(skip)
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_lineno}"


def current_tracker() -> Optional[LockTracker]:
    """The installed tracker, or ``None`` when tracking is disabled."""
    return _current


def enable_tracking(tracker: Optional[LockTracker] = None) -> LockTracker:
    """Install ``tracker`` (or a fresh one) as the process default.

    Locks created *before* this call stay raw - enable tracking before
    the system under test builds its locks (pytest's ``--race`` flag
    does this in ``pytest_configure``, ahead of collection imports).
    """
    global _current
    _current = tracker if tracker is not None else LockTracker()
    return _current


def disable_tracking() -> None:
    """Uninstall the default tracker; new locks are raw again."""
    global _current
    _current = None


class tracking:
    """``with tracking(t):`` - temporarily install tracker ``t``.

    Locks created inside the block bind to ``t`` permanently; locks
    created before keep their original tracker (or stay raw).  This is
    how a test reconstructs a deadlock against a private tracker while
    the suite-wide ``--race`` tracker stays clean.
    """

    def __init__(self, tracker: Optional[LockTracker] = None):
        self.tracker = tracker if tracker is not None else LockTracker()
        self._previous: Optional[LockTracker] = None

    def __enter__(self) -> LockTracker:
        global _current
        self._previous = _current
        _current = self.tracker
        return self.tracker

    def __exit__(self, *exc) -> None:
        global _current
        _current = self._previous


def TrackedLock(name: Optional[str] = None):
    """A ``threading.Lock`` - raw when tracking is off, tracked when on."""
    if _current is None:
        return threading.Lock()
    return _current.lock(name)


def TrackedRLock(name: Optional[str] = None):
    """A ``threading.RLock`` - raw when tracking is off, tracked when on."""
    if _current is None:
        return threading.RLock()
    return _current.rlock(name)


def TrackedCondition(lock=None, name: Optional[str] = None):
    """A ``threading.Condition`` - raw when tracking is off, tracked when on.

    ``lock`` must be a lock from the same factory family: raw stays raw,
    tracked stays tracked.  A tracked condition over a lock some *other*
    tracker minted binds to that lock's tracker, keeping one lock one
    bookkeeper.
    """
    if isinstance(lock, _TrackedLock):
        return lock._tracker.condition(lock, name)
    if _current is None or lock is not None:
        return threading.Condition(lock)
    return _current.condition(None, name)


def note_blocking(what: str) -> None:
    """Mark a blocking operation (wire latency, a future wait, a join).

    Each live tracker records a hold-while-blocking event if the calling
    thread holds any of its locks.  Free when no tracker exists; a
    thread-local read per live tracker otherwise.
    """
    if not _LIVE:
        return
    for tracker in list(_LIVE):
        tracker.note_blocking(what)
