"""Packaging for the Fix reproduction (src layout).

Editable install with the test toolchain::

    pip install -e .[test]
"""

import os

from setuptools import find_packages, setup


def _readme() -> str:
    if os.path.exists("README.md"):
        with open("README.md", encoding="utf-8") as fh:
            return fh.read()
    return ""


setup(
    name="repro-fix",
    version="1.0.0",
    description=(
        'Python reproduction of "Fix: externalizing network I/O in '
        'serverless computing" (EuroSys 2026)'
    ),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[],  # stdlib only, by design
    extras_require={
        "test": [
            "pytest>=7",
            "hypothesis>=6",
            "pytest-benchmark>=4",
            # Kills (not just dumps) a deadlocked threaded-delegation
            # test; CI passes --timeout so a hang fails fast with a
            # traceback instead of stalling the job.
            "pytest-timeout>=2",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: System :: Distributed Computing",
    ],
)
