"""Tests for the discrete-event engine: events, processes, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim.engine import Simulator, all_of, any_of


class TestEvents:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.timeout(2.5).add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_event_value(self):
        sim = Simulator()
        event = sim.timeout(1.0, value="payload")
        sim.run_until(event)
        assert event.value == "payload"

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_callback_after_trigger_fires(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("done")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["done"]

    @given(st.lists(st.floats(min_value=0.001, max_value=100), min_size=1, max_size=20))
    def test_clock_is_monotonic(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.timeout(delay).add_callback(lambda e: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    def test_fifo_tiebreak_is_submission_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.timeout(1.0, value=i).add_callback(lambda e: order.append(e.value))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcesses:
    def test_simple_process(self):
        sim = Simulator()
        trace = []

        def proc(sim):
            trace.append(("start", sim.now))
            yield sim.timeout(1.0)
            trace.append(("mid", sim.now))
            yield sim.timeout(2.0)
            trace.append(("end", sim.now))
            return "result"

        process = sim.process(proc(sim))
        sim.run()
        assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]
        assert process.value == "result"

    def test_process_waits_on_event(self):
        sim = Simulator()
        gate = sim.event("gate")
        results = []

        def waiter(sim):
            value = yield gate
            results.append((sim.now, value))

        def opener(sim):
            yield sim.timeout(5.0)
            gate.succeed("open")

        sim.process(waiter(sim))
        sim.process(opener(sim))
        sim.run()
        assert results == [(5.0, "open")]

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def failing(sim):
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def waiter(sim, target):
            try:
                yield target
            except ValueError as exc:
                return f"caught {exc}"

        target = sim.process(failing(sim))
        waiter_proc = sim.process(waiter(sim, target))
        sim.run()
        assert waiter_proc.value == "caught boom"

    def test_unhandled_process_failure_raises_at_run_until(self):
        sim = Simulator()

        def failing(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        process = sim.process(failing(sim))
        with pytest.raises(RuntimeError):
            sim.run_until(process)

    def test_yielding_non_event_is_an_error(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_deadlock_detected(self):
        sim = Simulator()
        never = sim.event("never")
        with pytest.raises(SimulationError):
            sim.run_until(never)

    def test_run_with_until_bound(self):
        sim = Simulator()
        fired = []
        sim.timeout(10.0).add_callback(lambda e: fired.append(1))
        assert sim.run(until=5.0) == 5.0
        assert not fired


class TestCombinators:
    def test_all_of(self):
        sim = Simulator()
        events = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        joined = all_of(sim, events)
        sim.run_until(joined)
        assert sim.now == 3.0
        assert joined.value == [3.0, 1.0, 2.0]

    def test_all_of_empty(self):
        sim = Simulator()
        assert all_of(sim, []).triggered

    def test_all_of_fails_fast(self):
        sim = Simulator()

        def failing(sim):
            yield sim.timeout(1.0)
            raise ValueError("x")

        events = [sim.process(failing(sim)), sim.timeout(10.0)]
        joined = all_of(sim, events)
        with pytest.raises(ValueError):
            sim.run_until(joined)
        assert sim.now == 1.0

    def test_any_of(self):
        sim = Simulator()
        events = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        winner = any_of(sim, events)
        sim.run_until(winner)
        assert sim.now == 1.0
        assert winner.value == 1.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)
