"""Tests for Thunk/Encode constructors and structural accessors."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import HandleError, SelectionError
from repro.core.handle import ThunkStyle
from repro.core.limits import ResourceLimits
from repro.core.thunks import (
    identified_value,
    make_application,
    make_identification,
    make_invocation_tree,
    make_selection,
    make_selection_range,
    pack_index,
    parse_invocation,
    parse_selection,
    shallow,
    strict,
    unpack_index,
)


class TestIndexPacking:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        assert unpack_index(pack_index(value)) == value

    def test_negative_rejected(self):
        with pytest.raises(SelectionError):
            pack_index(-1)

    def test_indices_are_literals(self):
        assert pack_index(12345).is_literal


class TestInvocation:
    def test_build_and_parse(self, repo):
        fn = repo.put_blob(b"f" * 64)
        a = repo.put_blob(b"a" * 64)
        limits = ResourceLimits(memory_bytes=123456, output_size_hint=77)
        tree = make_invocation_tree(repo, fn, [a], limits)
        invocation = parse_invocation(repo, tree)
        assert invocation.function == fn
        assert invocation.args == (a,)
        assert invocation.limits == limits
        assert invocation.arity == 1

    def test_application_thunk_style(self, repo):
        fn = repo.put_blob(b"f" * 64)
        thunk = make_application(repo, fn, [])
        assert thunk.is_thunk
        assert thunk.thunk_style is ThunkStyle.APPLICATION

    def test_parse_too_short(self, repo):
        tree = repo.put_tree([])
        with pytest.raises(HandleError):
            parse_invocation(repo, tree)

    def test_out_of_line_limits(self, repo):
        # Limits blobs are 16 bytes (literal); also accept stored blobs.
        limits = ResourceLimits(memory_bytes=1 << 20)
        stored = repo.put_blob(limits.pack())
        fn = repo.put_blob(b"f" * 64)
        tree = repo.put_tree([stored, fn])
        assert parse_invocation(repo, tree).limits == limits


class TestSelection:
    def test_single_index(self, repo):
        target = repo.put_tree([repo.put_blob(b"a" * 64)])
        thunk = make_selection(repo, target, 0)
        assert thunk.thunk_style is ThunkStyle.SELECTION
        sel = parse_selection(repo, thunk.definition())
        assert sel.target == target
        assert sel.start == 0
        assert sel.end is None
        assert not sel.is_range

    def test_range(self, repo):
        target = repo.put_blob(b"0123456789" * 10)
        thunk = make_selection_range(repo, target, 3, 7)
        sel = parse_selection(repo, thunk.definition())
        assert (sel.start, sel.end) == (3, 7)
        assert sel.is_range

    def test_reversed_range_rejected(self, repo):
        target = repo.put_blob(b"x" * 64)
        with pytest.raises(SelectionError):
            make_selection_range(repo, target, 7, 3)

    def test_parse_wrong_shape(self, repo):
        bad = repo.put_tree([repo.put_blob(b"t" * 64)])
        with pytest.raises(HandleError):
            parse_selection(repo, bad)

    def test_selection_of_ref_target(self, repo):
        # A selection can reference data it cannot read - that's the point.
        target = repo.put_tree([repo.put_blob(b"v" * 64)]).as_ref()
        thunk = make_selection(repo, target, 0)
        assert parse_selection(repo, thunk.definition()).target == target


class TestIdentification:
    def test_roundtrip(self, repo):
        value = repo.put_blob(b"v" * 64)
        thunk = make_identification(value.as_ref())
        assert thunk.thunk_style is ThunkStyle.IDENTIFICATION
        assert identified_value(thunk).content_key() == value.content_key()

    def test_rejects_thunks(self, repo):
        fn = repo.put_blob(b"f" * 64)
        thunk = make_application(repo, fn, [])
        with pytest.raises(HandleError):
            make_identification(thunk)

    def test_identified_value_requires_identification(self, repo):
        fn = repo.put_blob(b"f" * 64)
        with pytest.raises(HandleError):
            identified_value(make_application(repo, fn, []))


class TestEncodes:
    def test_strict_shallow(self, repo):
        fn = repo.put_blob(b"f" * 64)
        thunk = make_application(repo, fn, [])
        assert strict(thunk).is_encode
        assert shallow(thunk).is_encode
        assert strict(thunk) != shallow(thunk)
        assert strict(thunk).unwrap_encode() == thunk
