"""Non-blocking delegation: the load signal is live, errors cross the
wire, and fan-out overlaps in-flight work.

These tests gate peer-side evaluation on events so "in flight" is a
controlled, deterministic state - no sleeps deciding outcomes.  The
acceptance property for the whole change is
:class:`TestLoadSignalLive`: with two equal-priced peers and one
delegation in flight, ``quote_best`` steers to the idle peer, and the
same scenario collapses back to the name tie when ``outstanding`` is
forced to zero - proving the signal is read live, not recomputed dead.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.codelets.stdlib import blob_int, int_blob
from repro.core.thunks import make_application, make_identification, strict
from repro.fixpoint.net import (
    Delegation,
    FixpointNode,
    NetworkError,
    RemoteEvalError,
)

#: A padded codelet whose shipping cost is visible on the wire (and
#: equal on every peer that compiled it - the tie the load must break).
FAT_INC_SOURCE = (
    '"""'
    + "p" * 600
    + '"""\n'
    "def _fix_apply(fix, input):\n"
    "    entries = fix.read_tree(input)\n"
    "    n = int.from_bytes(fix.read_blob(entries[2]), 'little')\n"
    "    return fix.create_blob((n + 1).to_bytes(8, 'little'))\n"
)

BOOM_SOURCE = (
    "def _fix_apply(fix, input):\n"
    "    raise ValueError('boom')\n"
)


class Gate:
    """Blocks a runtime's ``eval`` until released (deterministic gating)."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.started = threading.Semaphore(0)
        self.release = threading.Event()
        self._real = runtime.eval
        runtime.eval = self._gated

    def _gated(self, encode):
        self.started.release()
        if not self.release.wait(10):
            raise TimeoutError("gate never released")
        return self._real(encode)

    def open(self):
        self.release.set()

    def restore(self):
        self.runtime.eval = self._real


def tied_pair():
    """A hub plus two peers with identical believed bytes for the fat
    codelet: every quote between them is a genuine tie."""
    alpha = FixpointNode("alpha")
    left = FixpointNode("left")
    right = FixpointNode("right")
    fn_left = left.runtime.compile(FAT_INC_SOURCE, "fat-inc")
    fn_right = right.runtime.compile(FAT_INC_SOURCE, "fat-inc")
    assert fn_left == fn_right
    alpha.connect(left)
    alpha.connect(right)
    return alpha, left, right, fn_left


def fat_encode(alpha, fn, n):
    arg = alpha.repo.put_blob(int_blob(n))
    return make_application(alpha.repo, fn, [arg]).wrap_strict()


def add_encode(node, x, y):
    repo = node.repo
    fn = node.runtime.stdlib["add_u8"]
    return node.runtime.invoke(
        fn, [repo.put_blob(int_blob(x, 1)), repo.put_blob(int_blob(y, 1))]
    ).wrap_strict()


class TestDelegateAsync:
    def test_future_resolves_to_absorbed_result(self):
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        future = alpha.delegate_async("beta", add_encode(alpha, 20, 22))
        assert isinstance(future, Delegation)
        assert future.peer == "beta"
        result = future.result(10)
        assert future.done
        assert blob_int(alpha.repo.get_blob(result).data) == 42
        assert beta.delegations_served == 1

    def test_outstanding_live_between_dispatch_and_reply(self):
        alpha, left, right, fn = tied_pair()
        gate = Gate(left.runtime)
        try:
            future = alpha.delegate_async("left", fat_encode(alpha, fn, 1))
            assert gate.started.acquire(timeout=10)  # serve has started
            assert not future.done
            assert alpha.outstanding["left"] == 1  # live while in flight
            gate.open()
            assert blob_int(alpha.repo.get_blob(future.result(10)).data) == 2
            assert alpha.outstanding["left"] == 0  # dropped after absorb
        finally:
            gate.restore()

    def test_sync_delegate_is_dispatch_plus_wait(self):
        """The blocking path rides the same machinery (served off the
        caller's thread, result absorbed before return)."""
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        result = alpha.delegate("beta", add_encode(alpha, 5, 6))
        assert blob_int(alpha.repo.get_blob(result).data) == 11
        assert alpha.outstanding["beta"] == 0

    def test_peer_serves_on_its_worker_pool(self):
        alpha = FixpointNode("alpha")
        with FixpointNode("beta", workers=2) as beta:
            alpha.connect(beta)
            before = beta.runtime.pool.submitted
            futures = [
                alpha.delegate_async("beta", add_encode(alpha, i, 1))
                for i in range(3)
            ]
            values = [
                blob_int(alpha.repo.get_blob(f.result(10)).data)
                for f in futures
            ]
            assert values == [1, 2, 3]
            # Each request landed on the shared pool as a task.
            assert beta.runtime.pool.submitted - before >= 3

    def test_serve_survives_a_closed_pool(self):
        """A peer whose pool was shut down falls back to per-request
        threads instead of enqueueing work nobody will pop."""
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta", workers=2)
        alpha.connect(beta)
        beta.runtime.close()
        result = alpha.delegate("beta", add_encode(alpha, 2, 2))
        assert blob_int(alpha.repo.get_blob(result).data) == 4


class TestLoadSignalLive:
    """The acceptance property: in-flight load steers placement."""

    def test_quote_steers_to_idle_peer_while_delegation_in_flight(self):
        alpha, left, right, fn = tied_pair()
        gate = Gate(left.runtime)
        try:
            probe = fat_encode(alpha, fn, 7)
            # Idle cluster: a genuine tie, broken by name.
            assert alpha.quote_best(probe).candidate == "left"
            future = alpha.delegate_async("left", fat_encode(alpha, fn, 1))
            assert gate.started.acquire(timeout=10)
            # One delegation in flight on left: the tiebreak fires and
            # the idle peer wins.
            live = alpha.quote_best(probe)
            assert live.candidate == "right"
            assert live.load == 0
            # Force the signal dead: the same scenario collapses back to
            # the name tie - both picks identical - proving the live
            # quote above came from the outstanding count, nothing else.
            saved = dict(alpha.outstanding)
            for peer in alpha.outstanding:
                alpha.outstanding[peer] = 0
            assert alpha.quote_best(probe).candidate == "left"
            alpha.outstanding.update(saved)
            gate.open()
            future.result(10)
        finally:
            gate.restore()

    def test_scatter_spreads_equal_priced_delegations(self):
        """Six equal-priced delegations land 3/3 across two peers -
        only possible if every quote saw the loads of the dispatches
        before it (a dead signal piles all six onto 'left')."""
        alpha, left, right, fn = tied_pair()
        gate_left = Gate(left.runtime)
        gate_right = Gate(right.runtime)
        try:
            encodes = [fat_encode(alpha, fn, n) for n in range(6)]
            futures = alpha.scatter(encodes)
            assert alpha.outstanding == {"left": 3, "right": 3}
            gate_left.open()
            gate_right.open()
            values = [
                blob_int(alpha.repo.get_blob(f.result(10)).data)
                for f in futures
            ]
            assert values == [n + 1 for n in range(6)]
            assert left.delegations_served == 3
            assert right.delegations_served == 3
            assert alpha.outstanding == {"left": 0, "right": 0}
        finally:
            gate_left.restore()
            gate_right.restore()

    def test_same_encode_on_both_peers_converges(self):
        """Determinism of absorbed handles: both peers compute the same
        encode concurrently and every repository converges on the same
        result handle and payload."""
        alpha, left, right, fn = tied_pair()
        encode = fat_encode(alpha, fn, 41)
        f1 = alpha.delegate_async("left", encode)
        f2 = alpha.delegate_async("right", encode)
        r1, r2 = f1.result(10), f2.result(10)
        assert r1 == r2
        assert blob_int(alpha.repo.get_blob(r1).data) == 42
        assert left.repo.get_blob(r1).data == right.repo.get_blob(r2).data

    def test_inflight_delegations_overlap_wire_time(self):
        """With per-direction channel latency, four concurrent
        delegations finish far sooner than four serial round trips -
        the wall-clock win the whole refactor exists for.  The bound is
        *relative* (fan-out vs a serial pass on the same nodes, whose
        wire time is latency-dominated either way), so a slow CI box
        shifts both sides instead of failing an absolute deadline."""
        alpha, left, right, fn = tied_pair()
        for channel in alpha.peers.values():
            channel.latency = 0.03
        fan_encodes = [fat_encode(alpha, fn, n) for n in range(4)]
        start = time.perf_counter()
        results = [f.result(15) for f in alpha.scatter(fan_encodes)]
        fanout_wall = time.perf_counter() - start
        assert [blob_int(alpha.repo.get_blob(r).data) for r in results] == [
            1, 2, 3, 4,
        ]
        serial_encodes = [fat_encode(alpha, fn, n) for n in range(10, 14)]
        start = time.perf_counter()
        for encode in serial_encodes:
            alpha.delegate_best(encode)
        serial_wall = time.perf_counter() - start
        # Serial pays 4 round trips x 2 transits back to back; the
        # overlapped flights pay little more than one round trip.
        assert fanout_wall < serial_wall / 1.5, (
            f"fan-out {fanout_wall:.3f}s vs serial {serial_wall:.3f}s"
        )


class TestConcurrentDispatch:
    def test_two_dispatchers_one_worker_pool_no_deadlock(self):
        """Regression: spawning the serve task *outside* the dispatch
        lock let a preempted dispatcher enqueue its task after a later
        sequence number's, wedging a 1-worker pool in the delivery
        window (waiting for a frame queued behind it).  Hammer the
        interleaving with a tiny switch interval; timeouts turn a
        recurrence into a failure instead of a hang."""
        import sys

        alpha = FixpointNode("alpha")
        with FixpointNode("beta", workers=1) as beta:
            alpha.connect(beta)
            errors = []

            def dispatcher(tag):
                try:
                    for n in range(25):
                        future = alpha.delegate_async(
                            "beta", add_encode(alpha, tag, n)
                        )
                        value = blob_int(
                            alpha.repo.get_blob(future.result(30)).data
                        )
                        assert value == tag + n
                except BaseException as exc:  # noqa: BLE001 - reported
                    errors.append(exc)

            old_interval = sys.getswitchinterval()
            sys.setswitchinterval(1e-6)
            try:
                threads = [
                    threading.Thread(target=dispatcher, args=(tag,))
                    for tag in (1, 2)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(90)
                alive = [t for t in threads if t.is_alive()]
            finally:
                sys.setswitchinterval(old_interval)
            assert not alive, "dispatcher threads deadlocked"
            assert not errors, f"concurrent dispatch failed: {errors[0]!r}"


class TestEvalMany:
    def test_results_in_input_order_mixing_local_and_remote(self):
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        # A codelet only beta holds: those encodes must delegate.
        fn = beta.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        alpha.connect(beta)
        remote = fat_encode(alpha, fn, 9)
        local_a = add_encode(alpha, 2, 3)
        local_b = add_encode(alpha, 30, 12)
        results = alpha.eval_many([local_a, remote, local_b])
        values = [blob_int(alpha.repo.get_blob(r).data) for r in results]
        assert values == [5, 10, 42]
        assert alpha.delegations_sent == 1  # only the remote one shipped

    def test_all_local_never_delegates(self):
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        results = alpha.eval_many(
            [add_encode(alpha, 1, 1), add_encode(alpha, 2, 2)]
        )
        assert [blob_int(alpha.repo.get_blob(r).data) for r in results] == [
            2, 4,
        ]
        assert alpha.delegations_sent == 0

    def test_no_peers_and_incomplete_footprint_raises(self):
        from repro.core.errors import MissingObjectError

        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        fn = beta.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        # Never connected: alpha knows the handle but holds nothing.
        encode = fat_encode(alpha, fn, 1)
        with pytest.raises(MissingObjectError):
            alpha.eval_many([encode])


class TestErrorFrames:
    def test_remote_eval_failure_crosses_the_wire(self):
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        fn = alpha.runtime.compile(BOOM_SOURCE, "boom")
        encode = make_application(
            alpha.repo, fn, [alpha.repo.put_blob(int_blob(1))]
        ).wrap_strict()
        with pytest.raises(RemoteEvalError) as excinfo:
            alpha.delegate("beta", encode)
        err = excinfo.value
        assert err.peer == "beta"
        assert err.error_type == "CodeletError"
        assert "boom" in err.remote_message
        # No false memo: the encode has no locally recorded result.
        assert alpha.repo.get_result(encode) is None
        assert alpha.outstanding["beta"] == 0

    def test_node_still_usable_after_remote_failure(self):
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        fn = alpha.runtime.compile(BOOM_SOURCE, "boom")
        bad = make_application(
            alpha.repo, fn, [alpha.repo.put_blob(int_blob(1))]
        ).wrap_strict()
        with pytest.raises(RemoteEvalError):
            alpha.delegate("beta", bad)
        good = alpha.delegate("beta", add_encode(alpha, 20, 1))
        assert blob_int(alpha.repo.get_blob(good).data) == 21

    def test_async_failure_resolves_the_future_not_the_thread(self):
        """The error is delivered where result() is called - the serving
        thread never leaks an exception."""
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        fn = alpha.runtime.compile(BOOM_SOURCE, "boom")
        encode = make_application(
            alpha.repo, fn, [alpha.repo.put_blob(int_blob(1))]
        ).wrap_strict()
        future = alpha.delegate_async("beta", encode)
        assert future.wait(10)
        assert future.done
        with pytest.raises(RemoteEvalError):
            future.result(10)


class TestViewRollback:
    """Regression for the over-advance bug: ``delegate`` used to learn
    ``to_ship`` before the peer replied, so a failure mid-serve left the
    caller falsely believing the peer holds the data - and the *next*
    delegate omitted it, stranding the peer on a
    :class:`MissingObjectError` that staleness-tolerance is supposed to
    make impossible."""

    def test_transport_failure_rolls_back_and_retry_reships(self):
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        payload = bytes(range(256)) * 4
        blob = alpha.repo.put_blob(payload)
        encode = strict(make_identification(blob))
        real_serve = beta._serve

        def dead_serve(wire, arrival=None):
            raise ConnectionResetError("wire cut before the peer parsed")

        beta._serve = dead_serve
        try:
            with pytest.raises(NetworkError):
                alpha.delegate("beta", encode)
        finally:
            beta._serve = real_serve
        # The rollback: alpha no longer believes beta holds the payload
        # it never actually received...
        assert not alpha.view.knows(blob.content_key(), "beta")
        # ...so the retry re-ships it and succeeds.  (Without the
        # rollback the retry omits the blob and the peer dies with
        # MissingObjectError.)
        result = alpha.delegate("beta", encode)
        assert beta.repo.get_blob(result).data == payload
        before = alpha.peers["beta"].total_bytes
        assert before > len(payload)  # the payload really crossed twice

    def test_wire_order_makes_inflight_omission_safe(self):
        """The dispatcher may omit data "already on the wire" to the
        same peer only because the channel is wire-serialized: the
        second request's bundle is never decoded before the first's has
        landed.  Slowing the *first* decode must stall the second, not
        let it overtake and strand on the missing blob."""
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        payload = bytes(range(256)) * 16  # 4 KiB
        blob = alpha.repo.put_blob(payload)
        first = strict(make_identification(alpha.repo.put_tree([blob])))
        second = strict(
            make_identification(alpha.repo.put_tree([blob, blob]))
        )
        real_absorb = beta._absorb_request

        def slow_big_bundles(wire):
            if len(wire) > len(payload):  # only the first request is fat
                time.sleep(0.15)  # invite the second serve to overtake
            return real_absorb(wire)

        beta._absorb_request = slow_big_bundles
        try:
            f1 = alpha.delegate_async("beta", first)
            f2 = alpha.delegate_async("beta", second)  # omits the blob
            r1, r2 = f1.result(10), f2.result(10)
        finally:
            beta._absorb_request = real_absorb
        assert beta.repo.get_tree(r2)  # evaluated with the shared blob
        assert beta.repo.get_blob(blob).data == payload
        # And the whole point of the omission: one payload on the wire.
        assert alpha.peers["beta"].bytes_ab < 2 * len(payload)

    def test_remote_eval_failure_also_rolls_back(self):
        """Even when the peer *did* absorb the shipped bundle before its
        evaluation failed, the caller retracts the optimistic advance -
        a conservative belief costs at most a redundant re-ship."""
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        alpha.connect(beta)
        fn = alpha.runtime.compile(BOOM_SOURCE, "boom")
        encode = make_application(
            alpha.repo, fn, [alpha.repo.put_blob(int_blob(1))]
        ).wrap_strict()
        with pytest.raises(RemoteEvalError):
            alpha.delegate("beta", encode)
        assert not alpha.view.knows(fn.content_key(), "beta")
