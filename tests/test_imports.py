"""Import smoke tests: a missing module fails here with a clear message
instead of detonating five unrelated test modules at collection time
(the seed's original failure mode: ``No module named 'repro.dist'``)."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

#: Every module in the package, spelled out so a deletion is a visible
#: diff here - pkgutil walking below catches *additions* we forgot.
EXPECTED_MODULES = [
    "repro.analysis",
    "repro.analysis.callgraph",
    "repro.analysis.crosscheck",
    "repro.analysis.flow",
    "repro.analysis.lint",
    "repro.analysis.sync",
    "repro.baselines",
    "repro.baselines.base",
    "repro.baselines.calibration",
    "repro.baselines.faasm",
    "repro.baselines.kubernetes",
    "repro.baselines.linuxproc",
    "repro.baselines.minio",
    "repro.baselines.openwhisk",
    "repro.baselines.pheromone",
    "repro.baselines.ray",
    "repro.bench",
    "repro.bench.fig7a",
    "repro.bench.fig7b",
    "repro.bench.fig8a",
    "repro.bench.fig8b",
    "repro.bench.fig9",
    "repro.bench.fig10",
    "repro.bench.harness",
    "repro.bench.paperdata",
    "repro.bench.summary",
    "repro.bench.table2",
    "repro.codelets",
    "repro.codelets.linker",
    "repro.codelets.sandbox",
    "repro.codelets.stdlib",
    "repro.codelets.toolchain",
    "repro.core",
    "repro.core.api",
    "repro.core.attestation",
    "repro.core.data",
    "repro.core.errors",
    "repro.core.eval",
    "repro.core.gc",
    "repro.core.handle",
    "repro.core.limits",
    "repro.core.minrepo",
    "repro.core.serialize",
    "repro.core.storage",
    "repro.core.thunks",
    "repro.dist",
    "repro.dist.admission",
    "repro.dist.costmodel",
    "repro.dist.engine",
    "repro.dist.gossip",
    "repro.dist.graph",
    "repro.dist.membership",
    "repro.dist.multitenancy",
    "repro.dist.objectview",
    "repro.dist.scheduler",
    "repro.fixpoint",
    "repro.fixpoint.billing",
    "repro.fixpoint.jobs",
    "repro.fixpoint.net",
    "repro.fixpoint.runtime",
    "repro.fixpoint.tracing",
    "repro.flatware",
    "repro.flatware.archive",
    "repro.flatware.asyncify",
    "repro.flatware.fs",
    "repro.flatware.template",
    "repro.flatware.wasi",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.sim",
    "repro.sim.cluster",
    "repro.sim.engine",
    "repro.sim.network",
    "repro.sim.resources",
    "repro.sim.stats",
    "repro.sim.storage_service",
    "repro.workloads",
    "repro.workloads.bptree",
    "repro.workloads.chain",
    "repro.workloads.compilejob",
    "repro.workloads.corpus",
    "repro.workloads.oneoff",
    "repro.workloads.sebs",
    "repro.workloads.titles",
    "repro.workloads.wordcount",
]


@pytest.mark.parametrize("module_name", EXPECTED_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


def test_no_unlisted_modules():
    """New modules must be added to EXPECTED_MODULES (and keep importing)."""
    found = set()
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        found.add(info.name)
    unlisted = found - set(EXPECTED_MODULES)
    assert not unlisted, f"modules missing from EXPECTED_MODULES: {sorted(unlisted)}"


class TestDistExports:
    def test_all_names_resolve(self):
        """Every name in repro.dist.__all__ must actually exist (including
        the lazily-loaded engine exports)."""
        dist = importlib.import_module("repro.dist")
        missing = [name for name in dist.__all__ if not hasattr(dist, name)]
        assert not missing, f"repro.dist.__all__ names that fail: {missing}"

    def test_exports_match_public_surface(self):
        """__all__ covers exactly the public (non-underscore, non-module)
        names the package exposes."""
        dist = importlib.import_module("repro.dist")
        submodules = {
            "admission",
            "costmodel",
            "gossip",
            "graph",
            "membership",
            "objectview",
            "scheduler",
            "engine",
            "multitenancy",
        }
        public = {
            name
            for name in dir(dist)
            if not name.startswith("_")
            and name not in submodules
            and name not in {"annotations"}
        }
        assert public == set(dist.__all__)

    def test_dist_reachable_from_top_level(self):
        assert repro.dist.FixpointSim.build(nodes=1).name == "Fixpoint"

    def test_baselines_first_import_order(self):
        """Importing baselines before dist must not deadlock on the
        baselines <-> dist cycle (engine is lazy for exactly this)."""
        import repro.baselines  # noqa: F401
        import repro.dist  # noqa: F401

        assert repro.baselines.Platform is not None
        assert repro.dist.JobGraph is not None
