"""Tests for ``repro.analysis``: the lock-order race detector and the
repo-invariant linter.

Every intentional deadlock here is reconstructed against a *private*
:class:`LockTracker` (via ``tracking(...)``), so a suite-wide ``--race``
tracker only ever sees the real system's behavior and its session-end
clean assertion stays meaningful.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.analysis.lint import Violation, lint_source, lint_tree, main
from repro.analysis.sync import (
    DeadlockError,
    LockOrderError,
    LockTracker,
    TrackedCondition,
    TrackedLock,
    TrackedRLock,
    current_tracker,
    tracking,
)

SRC = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# The pass-through contract: disabled tracking costs nothing


class TestPassthrough:
    def test_disabled_factories_return_raw_primitives(self):
        """Without a tracker the factories ARE ``threading`` - the
        zero-overhead-when-off contract (the NULL_OBS of locks)."""
        if current_tracker() is not None:
            pytest.skip("--race installs a tracker for the whole run")
        assert type(TrackedLock()) is type(threading.Lock())
        assert type(TrackedRLock()) is type(threading.RLock())
        assert isinstance(TrackedCondition(), threading.Condition)

    def test_tracked_condition_over_raw_lock_stays_raw(self):
        if current_tracker() is not None:
            pytest.skip("--race installs a tracker for the whole run")
        lock = threading.Lock()
        cond = TrackedCondition(lock)
        assert isinstance(cond, threading.Condition)

    def test_tracking_context_installs_and_restores(self):
        before = current_tracker()
        with tracking() as t:
            assert current_tracker() is t
            lock = TrackedLock("scoped")
            assert repr(lock).startswith("<TrackedLock scoped#")
        assert current_tracker() is before


# ----------------------------------------------------------------------
# Lock-order inversion detection


class TestInversionDetection:
    def test_abba_cycle_detected_with_both_stacks(self):
        t = LockTracker()
        a, b = t.lock("A"), t.lock("B")
        with a:
            with b:
                pass
        with b:
            with a:  # closes the cycle: B held, A acquired
                pass
        report = t.report()
        assert len(report.cycles) == 1
        cycle = report.cycles[0]
        assert {n.split("#")[0] for n in cycle.names} == {"A", "B"}
        # Both stacks: the closing acquisition and the stored first edge.
        assert len(cycle.stacks) == 2
        text = report.format()
        assert text.count("test_analysis.py") >= 2
        assert "lock-order inversion" in text

    def test_consistent_order_is_clean(self):
        t = LockTracker()
        a, b, c = t.lock("A"), t.lock("B"), t.lock("C")
        for _ in range(3):
            with a:
                with b:
                    with c:
                        pass
            with a:
                with c:
                    pass
        assert t.report().clean

    def test_transitive_cycle_through_three_locks(self):
        t = LockTracker()
        a, b, c = t.lock("A"), t.lock("B"), t.lock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
        report = t.report()
        assert len(report.cycles) == 1
        names = {n.split("#")[0] for n in report.cycles[0].names}
        assert names == {"A", "B", "C"}
        # three edges in the cycle, each with its stack
        assert len(report.cycles[0].stacks) == 3

    def test_duplicate_cycles_reported_once(self):
        t = LockTracker()
        a, b = t.lock("A"), t.lock("B")
        for _ in range(5):
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(t.report().cycles) == 1

    def test_on_cycle_raise_fails_at_the_faulty_acquisition(self):
        t = LockTracker(on_cycle="raise")
        a, b = t.lock("A"), t.lock("B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()

    def test_concurrent_consistent_order_is_clean(self):
        """Real contention with a consistent order must not false-positive."""
        t = LockTracker()
        outer, inner = t.lock("outer"), t.lock("inner")
        total = [0]

        def work():
            for _ in range(200):
                with outer:
                    with inner:
                        total[0] += 1

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert total[0] == 800
        assert t.report().clean


class TestSelfDeadlock:
    def test_reacquiring_held_lock_raises_before_hanging(self):
        t = LockTracker()
        lock = t.lock("L")
        lock.acquire()
        try:
            with pytest.raises(DeadlockError):
                lock.acquire()
        finally:
            lock.release()
        assert len(t.report().cycles) == 1

    def test_try_acquire_of_held_lock_just_fails(self):
        t = LockTracker()
        lock = t.lock("L")
        with lock:
            assert lock.acquire(blocking=False) is False
        assert not t.report().cycles

    def test_rlock_reentry_is_fine(self):
        t = LockTracker()
        lock = t.rlock("R")
        with lock:
            with lock:
                assert lock._is_owned()
        assert not lock._is_owned()
        assert t.report().clean


# ----------------------------------------------------------------------
# Hold-while-blocking


class TestHoldWhileBlocking:
    def test_job_wait_while_holding_a_lock_is_flagged(self):
        from repro.fixpoint.jobs import Job

        with tracking() as t:
            lock = TrackedLock("holder")
            job = Job()
            done = threading.Event()

            def completer():
                done.wait(1.0)
                job.complete(None)

            th = threading.Thread(target=completer)
            th.start()
            with lock:
                done.set()
                job.wait(timeout=1.0)
            th.join()
        report = t.report()
        assert any(e.what == "Job.wait" for e in report.blocking)
        assert any("holder" in h for e in report.blocking for h in e.held)

    def test_job_wait_on_completed_future_is_free(self):
        from repro.fixpoint.jobs import Job

        with tracking() as t:
            lock = TrackedLock("holder")
            job = Job()
            job.complete(None)
            with lock:
                assert job.wait(timeout=0) is True
        assert not t.report().blocking

    def test_channel_transit_while_holding_a_lock_is_flagged(self):
        from repro.fixpoint.net import FixpointNode

        with tracking() as t:
            a, b = FixpointNode("alpha"), FixpointNode("beta")
            channel = a.connect(b)
            channel.latency = 0.001
            lock = TrackedLock("holder")
            with lock:
                channel.transit()
        assert any(
            e.what == "Channel.transit" for e in t.report().blocking
        )

    def test_condition_wait_exempts_its_own_lock(self):
        with tracking() as t:
            cond = TrackedCondition(name="C")
            with cond:
                cond.wait(timeout=0.01)
        assert t.report().clean

    def test_condition_wait_flags_other_held_locks(self):
        with tracking() as t:
            other = TrackedLock("other")
            cond = TrackedCondition(name="C")
            with other:
                with cond:
                    cond.wait(timeout=0.01)
        blocking = t.report().blocking
        assert any(
            e.what == "Condition.wait"
            and any("other" in h for h in e.held)
            for e in blocking
        )
        # the condition's own lock never appears as held
        assert not any("C#" in h for e in blocking for h in e.held)


# ----------------------------------------------------------------------
# The historical deadlocks, reconstructed in miniature


class TestHistoricalDeadlocks:
    def test_pr4_dispatch_wedge_skeleton(self):
        """PR 4's one-worker dispatch deadlock, as its lock-order core.

        The bug: a dispatcher assigned a wire sequence number (frame k)
        and was preempted before spawning the serve task, so the peer's
        only worker picked up frame k+1 first and parked in the delivery
        window waiting for frame k - whose serve task was queued *behind*
        it on the very worker it occupied.  Skeleton: the worker slot
        and the frame-k delivery turn are two resources acquired in
        opposite orders by the dispatcher and the worker.  The fix
        (spawn inside the dispatch lock) makes queue order match wire
        order, i.e. imposes one global acquisition order.
        """
        t = LockTracker()
        worker_slot = t.lock("peer-worker-slot")
        frame_k_turn = t.lock("frame-k-delivery-turn")
        # The serve task for frame k: owns its delivery turn, needs the
        # worker slot to run.
        with frame_k_turn:
            with worker_slot:
                pass
        # The wedged interleaving: the worker, already occupied by frame
        # k+1, parks in the delivery window waiting for frame k's turn.
        with worker_slot:
            with frame_k_turn:
                pass
        report = t.report()
        assert len(report.cycles) == 1
        names = {n.split("#")[0] for n in report.cycles[0].names}
        assert names == {"peer-worker-slot", "frame-k-delivery-turn"}

    def test_pr5_double_dial_skeleton(self):
        """PR 5's concurrent-connect race, as its lock-order core.

        The bug: two threads (or both endpoints) racing to link the
        same pair each minted a Channel, splitting the pair's sequence
        space.  A per-node-lock fix would have been the classic ABBA:
        ``alpha.connect(beta)`` takes alpha-then-beta while
        ``beta.connect(alpha)`` takes beta-then-alpha.  The detector
        sees that inversion immediately - which is exactly why the real
        fix is one process-wide topology lock, not nested node locks.
        """
        t = LockTracker()
        alpha = t.rlock("alpha.peers")
        beta = t.rlock("beta.peers")
        with alpha:  # alpha.connect(beta)
            with beta:
                pass
        with beta:  # beta.connect(alpha), concurrently
            with alpha:
                pass
        report = t.report()
        assert len(report.cycles) == 1
        names = {n.split("#")[0] for n in report.cycles[0].names}
        assert names == {"alpha.peers", "beta.peers"}

    def test_topology_lock_discipline_stays_clean(self):
        """The *actual* fixed code path: concurrent dials of one pair
        from both ends share one channel and produce no inversion."""
        from repro.fixpoint.net import FixpointNode

        with tracking() as t:
            a, b = FixpointNode("alpha"), FixpointNode("beta")
            channels = []

            def dial(x, y):
                channels.append(x.connect(y))

            t1 = threading.Thread(target=dial, args=(a, b))
            t2 = threading.Thread(target=dial, args=(b, a))
            t1.start(); t2.start(); t1.join(); t2.join()
            assert channels[0] is channels[1]
        report = t.report()
        assert not report.cycles, report.format()
        assert not report.blocking, report.format()


# ----------------------------------------------------------------------
# The linter


def _violations(source: str, relpath: str = "src/repro/fixpoint/x.py"):
    return lint_source(source, relpath)


class TestLinter:
    def test_src_tree_is_clean(self):
        violations = lint_tree([SRC])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_wall_clock_in_sim_clocked_module(self):
        bad = "import time\ndef f():\n    return time.time()\n"
        out = _violations(bad, "src/repro/sim/engine.py")
        assert [v.rule for v in out] == ["wall-clock"]
        assert out[0].line == 3
        # the same source outside a sim-clocked path is fine
        assert _violations(bad, "src/repro/baselines/x.py") == []

    def test_datetime_now_in_sim_clocked_module(self):
        bad = "import datetime\nx = datetime.datetime.now()\n"
        assert [
            v.rule for v in _violations(bad, "src/repro/dist/engine.py")
        ] == ["wall-clock"]

    def test_unseeded_random_in_sim_clocked_module(self):
        bad = "import random\nx = random.random()\ny = random.Random()\n"
        out = _violations(bad, "src/repro/dist/gossip.py")
        assert [v.rule for v in out] == ["unseeded-random", "unseeded-random"]
        ok = "import random\nr = random.Random(42)\nx = r.random()\n"
        assert _violations(ok, "src/repro/dist/gossip.py") == []

    def test_from_random_import_in_sim_clocked_module(self):
        bad = "from random import choice\n"
        assert [
            v.rule for v in _violations(bad, "src/repro/sim/cluster.py")
        ] == ["unseeded-random"]

    def test_wall_clock_alias_forms_are_seen_through(self):
        # each of these used to evade the rule: it matched the dotted
        # ``time.X`` spelling only, so importing the name (or aliasing
        # the module) laundered the call
        forms = [
            "from time import monotonic\nx = monotonic()\n",
            "from time import perf_counter as pc\nx = pc()\n",
            "from time import sleep\nsleep(1)\n",
            "import time as t\nx = t.monotonic()\n",
            "from datetime import datetime as dt\nx = dt.now()\n",
        ]
        for src in forms:
            out = _violations(src, "src/repro/sim/engine.py")
            assert [v.rule for v in out] == ["wall-clock"], src
            # outside sim-clocked paths the same spelling stays legal
            assert _violations(src, "src/repro/fixpoint/x.py") == [], src
        # the message names the canonical target, not just the alias
        out = _violations(
            "import time as t\nx = t.monotonic()\n", "src/repro/sim/engine.py"
        )
        assert "time.monotonic" in out[0].message

    def test_unseeded_random_alias_forms_are_seen_through(self):
        out = _violations(
            "import random as r\nx = r.random()\n", "src/repro/dist/gossip.py"
        )
        assert [v.rule for v in out] == ["unseeded-random"]
        # `from random import random as rnd` flags the import *and* the call
        out = _violations(
            "from random import random as rnd\nx = rnd()\n",
            "src/repro/dist/gossip.py",
        )
        assert [v.rule for v in out] == ["unseeded-random"] * 2
        # a seeded stream drawn through an aliased module stays legal
        ok = "import random as r\ns = r.Random(7)\nx = s.random()\n"
        assert _violations(ok, "src/repro/dist/gossip.py") == []

    def test_aliased_sleep_inside_lock_still_flags(self):
        bad = (
            "from time import sleep as pause\n"
            "def f(self):\n"
            "    with self._lock:\n"
            "        pause(0.1)\n"
        )
        out = _violations(bad)
        assert [v.rule for v in out] == ["lock-held-blocking"]

    def test_raw_lock_outside_analysis(self):
        bad = "import threading\nlock = threading.Lock()\n"
        out = _violations(bad, "src/repro/fixpoint/new.py")
        assert [v.rule for v in out] == ["raw-lock"]
        assert "TrackedLock" in out[0].message
        # the tracker itself is exempt
        assert _violations(bad, "src/repro/analysis/sync.py") == []

    def test_from_threading_import_lock_flagged(self):
        bad = "from threading import RLock\n"
        assert [
            v.rule for v in _violations(bad, "src/repro/core/new.py")
        ] == ["raw-lock"]

    def test_threading_event_and_thread_are_fine(self):
        ok = (
            "import threading\n"
            "e = threading.Event()\n"
            "t = threading.Thread(target=print)\n"
        )
        assert _violations(ok) == []

    def test_bare_except(self):
        bad = "try:\n    pass\nexcept:\n    pass\n"
        out = _violations(bad)
        assert [v.rule for v in out] == ["bare-except"]
        ok = "try:\n    pass\nexcept BaseException:\n    pass\n"
        assert _violations(ok) == []

    def test_codec_pairing(self):
        bad = "def pack_digest(d):\n    return b''\n"
        out = _violations(bad)
        assert [v.rule for v in out] == ["codec-pairing"]
        ok = bad + "def unpack_digest(raw):\n    return None\n"
        assert _violations(ok) == []
        # underscore-private pairs count too
        ok2 = "def _pack_err(e):\n    pass\ndef _unpack_err(b):\n    pass\n"
        assert _violations(ok2) == []

    def test_codec_layout_drift(self):
        bad = (
            "import struct\n"
            '_COUNT = struct.Struct("<I")\n'
            '_U64 = struct.Struct("<Q")\n'
            "def pack_digest(d):\n"
            "    return _COUNT.pack(len(d.rows)) + _U64.pack(d.seq)\n"
            "def unpack_digest(buf):\n"
            "    (seq,) = _U64.unpack_from(buf, 0)\n"
            "    return seq\n"
        )
        out = _violations(bad)
        assert [v.rule for v in out] == ["codec-layout"]
        assert "_COUNT(4B)" in out[0].message
        assert "_U64(8B)" in out[0].message

    def test_codec_layout_agrees_through_helpers(self):
        # pack_digest reaches _LEN via _pack_name while unpack_digest
        # inlines it; the closure over intra-module helpers sees both
        ok = (
            "import struct\n"
            '_LEN = struct.Struct("<H")\n'
            '_U64 = struct.Struct("<Q")\n'
            "def _pack_name(name):\n"
            "    return _LEN.pack(len(name)) + name\n"
            "def _unpack_name(buf, off):\n"
            "    (n,) = _LEN.unpack_from(buf, off)\n"
            "    return buf[off + _LEN.size : off + _LEN.size + n]\n"
            "def pack_digest(d):\n"
            "    return _U64.pack(d.seq) + _pack_name(d.name)\n"
            "def unpack_digest(buf):\n"
            "    (seq,) = _U64.unpack_from(buf, 0)\n"
            "    return seq, _unpack_name(buf, _U64.size)\n"
        )
        assert _violations(ok) == []
        # drop the helper call from the unpack side: drift, flagged
        bad = ok.replace(", _unpack_name(buf, _U64.size)", "")
        assert [v.rule for v in _violations(bad)] == ["codec-layout"]

    def test_codec_layout_literal_format_matches_constant(self):
        # same byte width spelled as a literal on one side and a Struct
        # constant on the other: no drift
        ok = (
            "import struct\n"
            '_U64 = struct.Struct("<Q")\n'
            "def pack_seq(s):\n"
            '    return struct.pack("<Q", s)\n'
            "def unpack_seq(buf):\n"
            "    (s,) = _U64.unpack_from(buf, 0)\n"
            "    return s\n"
        )
        assert _violations(ok) == []

    def test_codec_layout_ignores_struct_free_codecs(self):
        ok = (
            "def pack_index(ix):\n"
            "    return bytes(ix)\n"
            "def unpack_index(buf):\n"
            "    return list(buf)\n"
        )
        assert _violations(ok) == []

    def test_codec_layout_suppression(self):
        bad = (
            "import struct\n"
            '_U64 = struct.Struct("<Q")\n'
            '_U32 = struct.Struct("<I")\n'
            "def pack_seq(s):  # lint: skip[codec-layout]\n"
            "    return _U64.pack(s)\n"
            "def unpack_seq(buf):\n"
            "    return _U32.unpack_from(buf, 0)[0]\n"
        )
        assert _violations(bad) == []

    def test_blocking_call_inside_with_lock(self):
        bad = (
            "import time\n"
            "def f(self):\n"
            "    with self._lock:\n"
            "        time.sleep(1)\n"
            "        self.future.result()\n"
            "        self.thread.join()\n"
        )
        out = _violations(bad)
        assert [v.rule for v in out] == ["lock-held-blocking"] * 3

    def test_blocking_call_outside_lock_is_fine(self):
        ok = (
            "import time\n"
            "def f(self):\n"
            "    with self._lock:\n"
            "        x = 1\n"
            "    time.sleep(0)\n"
            "    self.future.result()\n"
        )
        assert _violations(ok) == []

    def test_string_join_inside_lock_not_flagged(self):
        ok = (
            "def f(self, parts):\n"
            "    with self._lock:\n"
            "        a = ', '.join(parts)\n"
            "        b = SEP.join(p for p in parts)\n"
        )
        assert _violations(ok) == []

    def test_nested_def_inside_lock_body_not_flagged(self):
        ok = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        cb = lambda: self.future.result()\n"
            "        self.spawn(cb)\n"
        )
        assert _violations(ok) == []

    def test_skip_comment_suppresses_one_rule(self):
        src = "import threading\nlock = threading.Lock()  # lint: skip[raw-lock]\n"
        assert _violations(src) == []
        wrong = "import threading\nlock = threading.Lock()  # lint: skip[bare-except]\n"
        assert [v.rule for v in _violations(wrong)] == ["raw-lock"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        dirty = tmp_path / "repro" / "sim"
        dirty.mkdir(parents=True)
        bad = dirty / "bad.py"
        bad.write_text("import time\nnow = time.time()\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out
        assert main([str(tmp_path / "missing")]) == 2

    def test_syntax_error_is_a_violation_not_a_crash(self):
        out = _violations("def broken(:\n")
        assert [v.rule for v in out] == ["syntax"]


# ----------------------------------------------------------------------
# ObjectView lock-discipline stress (hypothesis-driven)


@pytest.mark.stress
class TestObjectViewLockDiscipline:
    """Four threads hammer one shared :class:`ObjectView` (plus a peer
    for ``exchange``) with a hypothesis-generated op mix, under a private
    lock tracker: the RLock-across-``price_moves`` discipline must
    produce no lock-order inversion, no hold-while-blocking event, and a
    holdings index that never disagrees with the forward location map.
    """

    THREADS = 4

    @staticmethod
    def _ops():
        from hypothesis import strategies as st

        names = st.integers(min_value=0, max_value=15)
        locations = st.sampled_from(["n0", "n1", "n2"])
        learn = st.tuples(
            st.just("learn"), names, locations,
            st.integers(min_value=1, max_value=4096),
        )
        forget = st.tuples(st.just("forget"), names, locations)
        exchange = st.tuples(st.just("exchange"))
        price = st.tuples(st.just("price"), names)
        return st.lists(
            st.one_of(learn, forget, exchange, price),
            min_size=16,
            max_size=120,
        )

    @staticmethod
    def _apply(view, peer, op):
        kind = op[0]
        if kind == "learn":
            view.learn(op[1], op[2], size=op[3])
        elif kind == "forget":
            view.forget(op[1], op[2])
        elif kind == "exchange":
            view.exchange(peer)
        elif kind == "price":
            view.price_moves([(op[1], 1024)], ["n0", "n1", "n2"])

    @staticmethod
    def _assert_index_consistent(view):
        with view._lock:
            for name, locs in view._locations.items():
                for loc in locs:
                    assert name in view._holdings.get(loc, set()), (
                        f"{name!r}@{loc!r} in forward map, not in holdings"
                    )
            for loc, names in view._holdings.items():
                for name in names:
                    assert loc in view._locations.get(name, set()), (
                        f"{name!r}@{loc!r} in holdings, not in forward map"
                    )

    def test_concurrent_ops_keep_discipline(self):
        from hypothesis import HealthCheck, given, settings

        @given(ops=self._ops())
        @settings(
            max_examples=20,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        def run(ops):
            from repro.dist.objectview import ObjectView

            with tracking() as t:
                view = ObjectView("stress")
                peer = ObjectView("peer")
                errors = []

                def worker(slice_index):
                    try:
                        for op in ops[slice_index :: self.THREADS]:
                            self._apply(view, peer, op)
                    except BaseException as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [
                    threading.Thread(target=worker, args=(i,))
                    for i in range(self.THREADS)
                ]
                for th in threads:
                    th.start()
                for th in threads:
                    th.join(timeout=30)
                    assert not th.is_alive(), "stress threads deadlocked"
                assert not errors, f"stress op died: {errors[0]!r}"
                self._assert_index_consistent(view)
                self._assert_index_consistent(peer)
            report = t.report()
            assert not report.cycles, report.format()
            assert not report.blocking, report.format()

        run()
