"""Cross-cutting property-based tests on the library's core invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.data import Blob, Tree
from repro.core.errors import FixError, HandleError, SerializationError
from repro.core.eval import Evaluator
from repro.core.handle import HANDLE_BYTES, LITERAL_MAX, Handle, blob_digest
from repro.core.minrepo import footprint
from repro.core.serialize import decode_bundle, decode_frame, encode_bundle
from repro.core.storage import Repository
from repro.core.thunks import (
    make_identification,
    make_selection,
    make_selection_range,
    strict,
)
from repro.dist.gossip import GossipCoordinator
from repro.dist.membership import (
    ALIVE,
    DEAD,
    SUSPECT,
    Member,
    MembershipView,
    pack_members,
    unpack_members,
)
from repro.dist.multitenancy import (
    AppProfile,
    Phase,
    density_ratio,
    footprint_aware_packing,
    peak_reservation_packing,
    validate_packing,
)
from repro.dist.objectview import EMPTY_DIGEST, ObjectView
from repro.sim.engine import Simulator, all_of
from repro.sim.resources import Resource
from repro.sim.stats import CpuAccountant, report

# ----------------------------------------------------------------------
# Handle algebra


@st.composite
def data_handles(draw):
    payload = draw(st.binary(max_size=64))
    if len(payload) <= LITERAL_MAX:
        return Handle.of_blob(payload)
    if draw(st.booleans()):
        return Handle.blob(blob_digest(payload), len(payload))
    return Handle.tree(blob_digest(payload), len(payload))


class TestHandleAlgebra:
    @given(data_handles())
    def test_pack_unpack_is_identity(self, handle):
        assert Handle.unpack(handle.pack()) == handle

    @given(data_handles())
    def test_ref_object_involution(self, handle):
        assert handle.as_ref().as_object() == handle.as_object()
        assert handle.as_ref().as_ref() == handle.as_ref()

    @given(data_handles())
    def test_view_changes_preserve_content_key(self, handle):
        assert handle.as_ref().content_key() == handle.content_key()
        ident = handle.make_identification()
        assert ident.content_key() == handle.content_key()
        assert ident.wrap_strict().content_key() == handle.content_key()

    @given(data_handles())
    def test_identification_definition_roundtrip(self, handle):
        ident = handle.make_identification()
        assert ident.definition() == handle.as_object()

    @given(data_handles())
    def test_encode_unwrap_roundtrip(self, handle):
        ident = handle.make_identification()
        for encode in (ident.wrap_strict(), ident.wrap_shallow()):
            assert encode.unwrap_encode() == ident

    @given(st.binary(min_size=HANDLE_BYTES, max_size=HANDLE_BYTES))
    def test_unpack_never_crashes_uncontrolled(self, raw):
        """Arbitrary 32 bytes either parse or raise HandleError."""
        try:
            handle = Handle.unpack(raw)
        except HandleError:
            return
        assert Handle.unpack(handle.pack()) == handle


# ----------------------------------------------------------------------
# Evaluation invariants


class TestEvaluationInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=31, max_size=64), min_size=1, max_size=6))
    def test_eval_is_idempotent(self, payloads):
        repo = Repository()
        evaluator = Evaluator(repo)
        children = [repo.put_blob(p).as_ref() for p in payloads]
        inner = [strict(make_identification(c)) for c in children]
        tree = repo.put_tree(inner)
        once = evaluator.eval(tree)
        twice = evaluator.eval(once)
        assert once == twice  # eval of a resolved value is the identity

    @settings(max_examples=30, deadline=None)
    @given(
        st.binary(min_size=31, max_size=120),
        st.data(),
    )
    def test_selection_composes_like_slicing(self, payload, data):
        repo = Repository()
        evaluator = Evaluator(repo)
        blob = repo.put_blob(payload)
        start = data.draw(st.integers(min_value=0, max_value=len(payload)))
        end = data.draw(st.integers(min_value=start, max_value=len(payload)))
        sel = strict(make_selection_range(repo, blob, start, end))
        result = evaluator.eval_encode(sel)
        assert repo.get_blob(result).data == payload[start:end]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=31, max_size=50), min_size=1, max_size=5))
    def test_memoized_and_fresh_agree(self, payloads):
        repo = Repository()
        children = [repo.put_blob(p) for p in payloads]
        target = repo.put_tree(children)
        encode = strict(make_selection(repo, target, len(children) - 1))
        memo = Evaluator(repo, memoize=True).eval_encode(encode)
        fresh = Evaluator(repo, memoize=False).eval_encode(encode)
        assert memo == fresh


# ----------------------------------------------------------------------
# Footprints


class TestFootprintInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=31, max_size=64), min_size=1, max_size=6))
    def test_extending_a_tree_grows_footprint(self, payloads):
        repo = Repository()
        children = [repo.put_blob(p) for p in payloads]
        small = repo.put_tree(children[:1])
        big = repo.put_tree(children[:1] + children[1:] + [small])
        fp_small = footprint(repo, small)
        fp_big = footprint(repo, big)
        assert fp_small.is_subset_of(fp_big)
        assert fp_big.data_bytes >= fp_small.data_bytes

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=31, max_size=64), min_size=1, max_size=6))
    def test_refs_always_shrink_footprints(self, payloads):
        repo = Repository()
        children = [repo.put_blob(p) for p in payloads]
        open_tree = repo.put_tree(children)
        closed_tree = repo.put_tree([c.as_ref() for c in children])
        assert footprint(repo, closed_tree).data_bytes < footprint(
            repo, open_tree
        ).data_bytes


# ----------------------------------------------------------------------
# Wire format fuzzing


class TestWireFuzz:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=200))
    def test_decode_bundle_never_crashes_uncontrolled(self, raw):
        try:
            decode_bundle(Repository(), raw)
        except FixError:
            pass  # every malformed input maps to a library error

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(max_size=80), max_size=6), st.data())
    def test_bitflips_are_detected_or_benign(self, payloads, data):
        repo = Repository()
        handles = [repo.put_blob(p) for p in payloads]
        raw = bytearray(encode_bundle(repo, handles))
        if len(raw) > 8:  # flip one byte somewhere after the magic
            index = data.draw(st.integers(min_value=4, max_value=len(raw) - 1))
            raw[index] ^= 0xFF
            try:
                decoded = decode_bundle(Repository(), bytes(raw))
            except FixError:
                return
            # If it still parses, content addressing guarantees whatever
            # was stored verifies against its handle.
            for handle in decoded:
                if not handle.is_literal:
                    Repository_ = Repository()
                    # decode already verified payload-vs-handle.
                    assert handle.pack()


# ----------------------------------------------------------------------
# Gossip anti-entropy invariants (the digest/delta merge is a join)

#: Random view histories: up to 4 views, each applying learns (and the
#: occasional forget) over a small namespace of objects and machines.
view_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # which view
        st.sampled_from(["learn", "forget"]),
        st.integers(min_value=0, max_value=7),  # object index
        st.integers(min_value=0, max_value=4),  # machine index
        st.one_of(st.none(), st.integers(min_value=1, max_value=1 << 20)),
    ),
    min_size=1,
    max_size=40,
)


def _views_from_ops(ops, count=4):
    views = [ObjectView(f"v{i}") for i in range(count)]
    for index, op, obj, machine, size in ops:
        view = views[index % count]
        name, location = f"obj{obj}", f"m{machine}"
        if op == "learn":
            view.learn(name, location, size)
        else:
            view.forget(name, location)
    return views


def _merge_into_fresh(name, *sources):
    """The join of several views' states, built from full deltas."""
    target = ObjectView(name)
    for source in sources:
        target.merge_delta(source.delta_since(target.digest()))
    return target


class TestGossipMergeAlgebra:
    """merge_delta is an idempotent, commutative, associative join over
    belief states - the algebra that makes epidemic spread converge on
    the union regardless of delivery order or duplication."""

    @settings(max_examples=60, deadline=None)
    @given(view_ops)
    def test_merge_is_idempotent(self, ops):
        views = _views_from_ops(ops)
        delta = views[0].delta_since(EMPTY_DIGEST)
        target = ObjectView("t")
        target.merge_delta(delta)
        once = target.snapshot()
        assert target.merge_delta(delta) == 0  # replay applies nothing
        assert target.snapshot() == once

    @settings(max_examples=60, deadline=None)
    @given(view_ops)
    def test_merge_is_commutative(self, ops):
        views = _views_from_ops(ops)
        ab = _merge_into_fresh("ab", views[0], views[1])
        ba = _merge_into_fresh("ba", views[1], views[0])
        assert ab.snapshot() == ba.snapshot()

    @settings(max_examples=60, deadline=None)
    @given(view_ops)
    def test_merge_is_associative(self, ops):
        a, b, c, _ = _views_from_ops(ops)
        left = _merge_into_fresh(
            "left", _merge_into_fresh("ab", a, b), c
        )
        right = _merge_into_fresh(
            "right", a, _merge_into_fresh("bc", b, c)
        )
        assert left.snapshot() == right.snapshot()

    @settings(max_examples=60, deadline=None)
    @given(view_ops)
    def test_exchange_converges_on_the_join(self, ops):
        """A pairwise exchange leaves both sides equal to their join."""
        views = _views_from_ops(ops, count=2)
        expected = _merge_into_fresh("join", *views).snapshot()
        views[0].exchange(views[1])
        assert views[0].snapshot() == expected
        assert views[1].snapshot() == expected

    @settings(max_examples=25, deadline=None)
    @given(view_ops, st.integers(min_value=0, max_value=2 ** 31))
    def test_gossip_rounds_converge_every_view_to_the_union(self, ops, seed):
        """Whatever the histories and the (seeded) peer schedule, enough
        rounds converge every view to the union of all beliefs."""
        views = _views_from_ops(ops)
        expected = _merge_into_fresh("union", *views).snapshot()
        coordinator = GossipCoordinator(views, seed=seed)
        coordinator.run(max_rounds=16)
        for view in views:
            assert view.snapshot() == expected


# ----------------------------------------------------------------------
# Membership merge algebra (the liveness side of gossip is also a join)

#: Random membership assertions over a small node namespace.  The
#: namespace is disjoint from the observing view's own name so the SWIM
#: self-defense (beating past a suspicion about oneself) never fires -
#: that transition is deliberately *not* order-independent and is
#: covered by its own unit test.
member_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # node index
        st.integers(min_value=1, max_value=50),  # heartbeat
        st.sampled_from([ALIVE, SUSPECT, DEAD]),
        st.integers(min_value=1, max_value=3),  # incarnation
    ),
    min_size=1,
    max_size=30,
)


def _members_from(entries):
    return [
        Member(f"m{i}", hb, status, incarnation)
        for i, hb, status, incarnation in entries
    ]


def _membership_snapshot(view):
    """The merged belief map, minus the observer's own entry."""
    return {m.node: m for m in view.members() if m.node != view.node}


def _merged_membership(name, *maps):
    view = MembershipView(name)
    for members in maps:
        view.merge(members)
    return view


class TestMembershipMergeAlgebra:
    """The per-node member lattice (DEAD > fresher heartbeat > SUSPECT >
    ALIVE) makes the membership merge an idempotent, commutative,
    associative join - the same algebra as the inventory delta merge,
    so liveness converges on the same epidemic schedule as inventory."""

    @settings(max_examples=60, deadline=None)
    @given(member_entries)
    def test_merge_is_idempotent(self, entries):
        members = _members_from(entries)
        view = MembershipView("obs")
        view.merge(members)
        once = _membership_snapshot(view)
        assert view.merge(members) == 0  # replay applies nothing
        assert _membership_snapshot(view) == once

    @settings(max_examples=60, deadline=None)
    @given(member_entries, member_entries)
    def test_merge_is_commutative(self, left, right):
        a = _merged_membership(
            "ab", _members_from(left), _members_from(right)
        )
        b = _merged_membership(
            "ba", _members_from(right), _members_from(left)
        )
        assert _membership_snapshot(a) == _membership_snapshot(b)

    @settings(max_examples=60, deadline=None)
    @given(member_entries, member_entries, member_entries)
    def test_merge_is_associative(self, e1, e2, e3):
        m1, m2, m3 = (_members_from(e) for e in (e1, e2, e3))
        left = _merged_membership(
            "l", _merged_membership("ab", m1, m2).members(), m3
        )
        right = _merged_membership(
            "r", m1, _merged_membership("bc", m2, m3).members()
        )
        # The intermediate views' own entries ride along in members();
        # strip both observers' names before comparing.
        strip = {"l", "r", "ab", "bc"}
        assert {
            n: m for n, m in _membership_snapshot(left).items()
            if n not in strip
        } == {
            n: m for n, m in _membership_snapshot(right).items()
            if n not in strip
        }

    @settings(max_examples=60, deadline=None)
    @given(member_entries, st.randoms(use_true_random=False))
    def test_tombstone_finality_is_per_incarnation(self, entries, rng):
        """Every delivery order converges on the same liveness verdict:
        a node is dead iff its maximal assertion (by the total order) is
        a tombstone.  Within an incarnation no heartbeat resurrects a
        tombstone; across incarnations the higher one wins - which is
        exactly what lets a restarted node rejoin."""
        members = _members_from(entries)
        doomed = set()
        for member in members:
            top = max(
                (m for m in members if m.node == member.node),
                key=lambda m: m.order_key(),
            )
            if top.is_dead:
                doomed.add(member.node)
        shuffled = list(members)
        rng.shuffle(shuffled)
        view = MembershipView("obs")
        for member in shuffled:
            view.merge([member])  # worst case: one entry per frame
        assert view.dead_nodes() == doomed

    @settings(max_examples=60, deadline=None)
    @given(member_entries, st.randoms(use_true_random=False))
    def test_higher_incarnation_always_outranks_lower_tombstone(
        self, entries, rng
    ):
        """Append a rejoin assertion (ALIVE one incarnation above every
        existing entry for that node): no delivery order of the original
        set plus the rejoin leaves the node dead."""
        members = _members_from(entries)
        if not members:
            return
        node = members[0].node
        top = max(
            m.incarnation for m in members if m.node == node
        )
        rejoin = Member(node, 1, ALIVE, top + 1)
        shuffled = members + [rejoin]
        rng.shuffle(shuffled)
        view = MembershipView("obs")
        for member in shuffled:
            view.merge([member])
        assert not view.is_dead(node)
        assert view.incarnation(node) == top + 1

    @settings(max_examples=60, deadline=None)
    @given(member_entries)
    def test_codec_roundtrip_is_identity(self, entries):
        members = _members_from(entries)
        decoded, offset = unpack_members(pack_members(members))
        key = lambda m: (  # noqa: E731
            m.node, m.incarnation, m.heartbeat, m.status
        )
        assert sorted(decoded, key=key) == sorted(members, key=key)
        assert offset == len(pack_members(members))


class TestEvictionMergeAlgebra:
    """Tombstone eviction composes with the delta merge: an evicted
    location stays gone whatever order (or duplication) deltas arrive
    in, and the surviving beliefs still converge to the join."""

    @settings(max_examples=60, deadline=None)
    @given(view_ops)
    def test_eviction_is_order_independent(self, ops):
        views = _views_from_ops(ops)

        def merged_with_eviction(name, sources):
            target = ObjectView(name)
            target.evict("m0")
            for source in sources:
                target.merge_delta(source.delta_since(target.digest()))
            return target

        forward = merged_with_eviction("f", views)
        backward = merged_with_eviction("b", list(reversed(views)))
        assert forward.snapshot() == backward.snapshot()
        for view in (forward, backward):
            for name in [f"obj{i}" for i in range(8)]:
                assert "m0" not in view.where(name)

    @settings(max_examples=60, deadline=None)
    @given(view_ops)
    def test_replay_after_eviction_applies_nothing(self, ops):
        views = _views_from_ops(ops)
        delta = views[0].delta_since(EMPTY_DIGEST)
        target = ObjectView("t")
        target.evict("m1")
        target.merge_delta(delta)
        once = target.snapshot()
        assert target.merge_delta(delta) == 0
        assert target.snapshot() == once

    @settings(max_examples=40, deadline=None)
    @given(view_ops)
    def test_compaction_is_invisible_to_a_fresh_merger(self, ops):
        views = _views_from_ops(ops)
        source = views[0]
        plain = ObjectView("plain")
        plain.merge_delta(source.delta_since(plain.digest()))
        source.compact()
        compacted = ObjectView("compacted")
        compacted.merge_delta(source.delta_since(compacted.digest()))
        assert compacted.snapshot() == plain.snapshot()


# ----------------------------------------------------------------------
# Multitenancy packing invariants (paper section 6)

PACK_GB = 1 << 30
PACK_CAPACITY = 8 * PACK_GB

#: Random piecewise profiles: 1-5 phases of 0.25-4 s at 0-8 GB each,
#: clamped so every app individually fits the 8 GB machine.
profile_lists = st.lists(
    st.lists(
        st.tuples(
            st.floats(min_value=0.25, max_value=4.0),  # phase seconds
            st.integers(min_value=0, max_value=8),  # phase GB
        ),
        min_size=1,
        max_size=5,
    ),
    min_size=1,
    max_size=10,
)


def _apps_from_specs(specs):
    return [
        AppProfile(
            f"app{i}",
            tuple(Phase(seconds, gb * PACK_GB) for seconds, gb in phases),
        )
        for i, phases in enumerate(specs)
    ]


class TestPackingInvariants:
    """Profile knowledge can only help, and never by overcommitting."""

    @settings(max_examples=60, deadline=None)
    @given(profile_lists)
    def test_footprint_never_beats_validate_packing(self, specs):
        """Whatever density footprint awareness finds, every bin stays
        within capacity at every instant - density never comes from
        overcommitting."""
        apps = _apps_from_specs(specs)
        validate_packing(footprint_aware_packing(apps, PACK_CAPACITY))

    @settings(max_examples=60, deadline=None)
    @given(profile_lists)
    def test_footprint_never_uses_more_bins_than_peak(self, specs):
        apps = _apps_from_specs(specs)
        aware = footprint_aware_packing(apps, PACK_CAPACITY)
        peak = peak_reservation_packing(apps, PACK_CAPACITY)
        assert aware.bin_count <= peak.bin_count

    @settings(max_examples=60, deadline=None)
    @given(profile_lists)
    def test_density_ratio_at_least_one(self, specs):
        apps = _apps_from_specs(specs)
        _aware, _peak, ratio = density_ratio(apps, PACK_CAPACITY)
        assert ratio >= 1.0

    @settings(max_examples=60, deadline=None)
    @given(profile_lists)
    def test_every_app_packed_exactly_once(self, specs):
        apps = _apps_from_specs(specs)
        for packing in (
            footprint_aware_packing(apps, PACK_CAPACITY),
            peak_reservation_packing(apps, PACK_CAPACITY),
        ):
            packed = sorted(
                app.name for members in packing.bins for app in members
            )
            assert packed == sorted(app.name for app in apps)


# ----------------------------------------------------------------------
# Simulator conservation laws


class TestSimConservation:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),  # cores
                st.floats(min_value=0.01, max_value=2.0),  # duration
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_busy_never_exceeds_capacity(self, tasks):
        sim = Simulator()
        cores = Resource(sim, 4, name="cores")
        acct = CpuAccountant(sim)

        def job(sim, n, duration):
            yield cores.acquire(n)
            token = acct.begin("m", "user", n)
            yield sim.timeout(duration)
            acct.end(token)
            cores.release(n)

        done = all_of(sim, [sim.process(job(sim, n, d)) for n, d in tasks])
        sim.run_until(done)
        window = max(sim.now, 1e-9)
        rep = report(acct, total_cores=4, window_seconds=window)
        assert rep.user + rep.system + rep.iowait + rep.idle == pytest.approx(100)
        # Conservation: accounted busy time equals requested work exactly.
        expected = sum(n * d for n, d in tasks)
        assert acct.core_seconds()["user"] == pytest.approx(expected)
