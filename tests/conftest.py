"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.storage import Repository
from repro.fixpoint.runtime import Fixpoint


@pytest.fixture
def repo() -> Repository:
    return Repository()


@pytest.fixture
def fixpoint() -> Fixpoint:
    """A sequential (single-threaded) Fixpoint with the stdlib compiled."""
    return Fixpoint(workers=0)


@pytest.fixture
def parallel_fixpoint():
    """A 4-worker Fixpoint, closed after the test."""
    with Fixpoint(workers=4) as fp:
        yield fp
