"""Gossip anti-entropy: digest/delta protocol, coordinator, both runtimes.

Covers the versioned delta state in
:class:`repro.dist.objectview.ObjectView` (``digest`` / ``delta_since``
/ ``merge_delta``, the ``exchange`` wrapper and its converged
short-circuit, forget-retracts-from-deltas), the seeded
:class:`repro.dist.gossip.GossipCoordinator` (replayable schedules,
O(log n) convergence, full-state ablation accounting, staleness
monotonicity), the :class:`~repro.dist.engine.FixpointSim` wiring
(scheduler beliefs age with the round budget), and the executing
runtime's GOSSIP frames (transitive spread, never-connected placement,
concurrency with live delegations).
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.codelets.stdlib import blob_int, int_blob
from repro.core.thunks import make_application
from repro.dist.engine import FixpointSim
from repro.dist.gossip import (
    GossipConfig,
    GossipCoordinator,
    GossipError,
    pack_delta,
    pack_digest,
    unpack_delta,
    unpack_digest,
)
from repro.dist.graph import JobGraph, TaskSpec
from repro.dist.objectview import EMPTY_DIGEST, Digest, ObjectView
from repro.fixpoint.net import FixpointNode, NodeDirectory

MB = 1 << 20


def seeded_views(n: int, objects_per_node: int = 3):
    """n views, each the sole believer in its own objects."""
    views = [ObjectView(f"node{i:03d}") for i in range(n)]
    for i, view in enumerate(views):
        for j in range(objects_per_node):
            view.learn(f"obj-{i}-{j}", view.node, 1 * MB)
    return views


def union_of(views):
    union = ObjectView("union")
    for view in views:
        union.merge_delta(view.delta_since(union.digest()))
    return union.snapshot()


# ----------------------------------------------------------------------
# The digest/delta protocol on ObjectView


class TestDigestDelta:
    def test_digest_covers_learned_entries(self):
        view = ObjectView("a")
        assert view.digest().versions == {}
        view.learn("x", "m1", 10)
        view.learn("y", "m2", 20)
        digest = view.digest()
        assert digest.versions == {"a": 2}
        assert digest.covers("a", 2)
        assert not digest.covers("a", 3)

    def test_relearning_stamps_nothing(self):
        """Repeat observations are free on the gossip wire."""
        view = ObjectView("a")
        view.learn("x", "m1", 10)
        before = view.digest()
        view.learn("x", "m1", 10)  # same belief, same size
        view.learn("x", "m1")  # no size at all
        assert view.digest() == before

    def test_size_correction_is_news(self):
        view = ObjectView("a")
        view.learn("x", "m1", 10)
        view.learn("x", "m1", 99)  # the size changed: must propagate
        fresh = ObjectView("b")
        fresh.merge_delta(view.delta_since(fresh.digest()))
        assert fresh.believed_size("x") == 99

    def test_delta_since_ships_only_the_uncovered_tail(self):
        view = ObjectView("a")
        view.learn("x", "m1", 10)
        mid = view.digest()
        view.learn("y", "m2", 20)
        delta = view.delta_since(mid)
        assert len(delta) == 1
        assert delta.entries[0][2] == "y"
        assert view.delta_since(view.digest()).is_empty

    def test_merge_is_idempotent_by_version(self):
        view = ObjectView("a")
        view.learn("x", "m1", 10)
        delta = view.delta_since(EMPTY_DIGEST)
        fresh = ObjectView("b")
        assert fresh.merge_delta(delta) == 1
        assert fresh.merge_delta(delta) == 0  # replay applies nothing
        assert fresh.snapshot() == view.snapshot()

    def test_merged_entries_forward_transitively(self):
        """Entries keep their origin stamp, so b can serve a's news to c
        - the property epidemic spread rests on."""
        a, b, c = ObjectView("a"), ObjectView("b"), ObjectView("c")
        a.learn("x", "a", 10)
        a.exchange(b)
        b.exchange(c)
        assert c.knows("x", "a")
        assert c.believed_size("x") == 10
        # And c's coverage means a has nothing left to send it.
        assert a.delta_since(c.digest()).is_empty

    def test_forgotten_entries_never_gossip_onward(self):
        """forget retracts the stamp from future deltas (no tombstones),
        while coverage stays advanced so peers don't re-send it."""
        a = ObjectView("a")
        a.learn("x", "m1", 10)
        a.learn("doomed", "m2", 20)
        a.forget("doomed", "m2")
        fresh = ObjectView("b")
        fresh.merge_delta(a.delta_since(fresh.digest()))
        assert "doomed" not in fresh.snapshot()
        assert fresh.snapshot() == a.snapshot()
        # Coverage includes the retracted stamp: nothing to re-send.
        assert a.delta_since(fresh.digest()).is_empty

    def test_forget_keeps_a_foreign_corroborated_belief(self):
        """A rollback retracts only this view's own assertion.  When the
        same belief carries a foreign stamp (the holder itself, or a
        third party, said so), it survives the forget - stripping the
        foreign stamp would leave its version covered by our digest
        forever, making a true fact permanently unlearnable via gossip.
        """
        caller, holder = ObjectView("caller"), ObjectView("holder")
        caller.learn("k", "holder", 10)  # the optimistic advance
        holder.learn("k", "holder", 10)  # the holder's own assertion...
        caller.merge_delta(holder.delta_since(caller.digest()))  # ...merged
        caller.forget("k", "holder")
        assert caller.knows("k", "holder")  # corroborated: kept
        # And the foreign stamp still forwards to third parties.
        third = ObjectView("third")
        third.merge_delta(caller.delta_since(third.digest()))
        assert third.knows("k", "holder")

    def test_exchange_still_produces_the_union(self, make_cluster=None):
        from repro.sim.cluster import Cluster, MachineSpec
        from repro.sim.engine import Simulator

        sim = Simulator()
        cluster = Cluster(
            sim, [MachineSpec("node0", cores=4), MachineSpec("node1", cores=4)]
        )
        cluster.add_object("a", 10, "node0")
        cluster.add_object("b", 20, "node1")
        v0, v1 = ObjectView("node0"), ObjectView("node1")
        v0.exchange(v1, cluster)
        for view in (v0, v1):
            assert view.where("a") == {"node0"}
            assert view.where("b") == {"node1"}


class TestConvergedExchangeRegression:
    """The satellite regression: the old exchange re-sent full state on
    every handshake; the digest short-circuit must make a handshake
    between converged views ~free."""

    def test_converged_exchange_ships_zero_entries(self):
        a, b = ObjectView("a"), ObjectView("b")
        for i in range(50):
            a.learn(f"obj{i}", "a", 1 * MB)
        first = a.exchange(b)
        assert first.entries_shipped == 50
        again = a.exchange(b)
        assert again.entries_shipped == 0
        # Only digests (+ empty-delta framing) cross the wire...
        assert again.delta_bytes <= 16
        # ...orders of magnitude below the full state the old code sent.
        assert again.bytes_shipped < first.bytes_shipped / 20

    def test_wire_codec_matches_the_accounting(self):
        """Digest/Delta wire_bytes must equal the real serialization the
        executing runtime ships (repro.dist.gossip codec)."""
        view = ObjectView("a")
        view.learn(b"\x07" * 32, "b", 7)  # content-key-style bytes name
        view.learn("string-name", "c")  # sizeless str name
        delta = view.delta_since(EMPTY_DIGEST)
        raw = pack_delta(delta)
        assert len(raw) == delta.wire_bytes()
        decoded, offset = unpack_delta(raw)
        assert decoded == delta
        assert offset == len(raw)
        digest = view.digest()
        raw = pack_digest(digest)
        assert len(raw) == digest.wire_bytes()
        decoded, offset = unpack_digest(raw)
        assert decoded == digest
        assert offset == len(raw)

    def test_unpackable_name_type_is_a_gossip_error(self):
        view = ObjectView("a")
        view.learn(("tuple", "name"), "b", 1)  # fine in simulation...
        with pytest.raises(GossipError):
            pack_delta(view.delta_since(EMPTY_DIGEST))  # ...not on a wire


# ----------------------------------------------------------------------
# The coordinator


class TestCoordinator:
    def test_fixed_seed_replays_identical_schedules(self):
        runs = []
        for _ in range(2):
            coordinator = GossipCoordinator(seeded_views(12), seed=7)
            coordinator.run_rounds(5)
            runs.append(
                [
                    (round.pairs, round.bytes_shipped, round.entries_shipped)
                    for round in coordinator.rounds
                ]
            )
        assert runs[0] == runs[1]

    def test_different_seeds_pick_different_peers(self):
        a = GossipCoordinator(seeded_views(12), seed=1)
        b = GossipCoordinator(seeded_views(12), seed=2)
        a.round(), b.round()
        assert a.rounds[0].pairs != b.rounds[0].pairs

    @pytest.mark.parametrize("n", [2, 8, 32, 100])
    def test_convergence_in_log_rounds(self, n):
        """After ceil(log2(n)) + c rounds every view equals the union -
        epidemic doubling, not O(n) token passing."""
        views = seeded_views(n)
        expected_union = union_of(views)
        coordinator = GossipCoordinator(views, fanout=1, seed=0)
        budget = math.ceil(math.log2(n)) + 4
        rounds = coordinator.run(max_rounds=budget)
        assert rounds <= budget
        for view in views:
            assert view.snapshot() == expected_union

    def test_run_raises_when_budget_too_small(self):
        views = seeded_views(32)
        coordinator = GossipCoordinator(views, seed=0)
        with pytest.raises(GossipError):
            coordinator.run(max_rounds=1)
        # The budget is exact: no extra round ran (or was accounted)
        # past it before the failure surfaced.
        assert len(coordinator.rounds) == 1

    def test_run_succeeds_on_an_exact_budget(self):
        """Convergence reached *by* the last budgeted round counts -
        the final round's outcome must be checked, not discarded."""
        rounds_needed = GossipCoordinator(seeded_views(32), seed=0).run()
        coordinator = GossipCoordinator(seeded_views(32), seed=0)
        assert coordinator.run(max_rounds=rounds_needed) == rounds_needed
        assert len(coordinator.rounds) == rounds_needed

    def test_full_state_ablation_ships_more_bytes(self):
        """Same seed, same schedule - the ablation re-sends everything
        every handshake, the delta protocol only the news."""
        delta_coord = GossipCoordinator(seeded_views(16), seed=3)
        rounds = delta_coord.run()
        full_coord = GossipCoordinator(
            seeded_views(16), seed=3, full_state=True
        )
        full_coord.run_rounds(rounds)
        assert full_coord.converged()
        assert delta_coord.total_bytes < full_coord.total_bytes / 2

    def test_late_joiner_catches_up(self):
        views = seeded_views(8)
        coordinator = GossipCoordinator(views, seed=0)
        coordinator.run()
        joiner = ObjectView("late")
        joiner.learn("late-obj", "late", 1 * MB)
        coordinator.add_view(joiner)
        coordinator.run()
        assert joiner.snapshot() == views[0].snapshot()
        assert views[0].knows("late-obj", "late")


class TestStaleness:
    """A view excluded from k rounds prices placements worse - more
    believed-missing bytes - than a converged one, monotonically in k:
    the unit-level companion of benchmarks/bench_gossip.py."""

    def excluded_missing_bytes(self, k: int) -> int:
        """Run 6 rounds of fresh data + gossip; the watcher view sits
        out the *last* k rounds.  Returns the bytes the watcher believes
        machine m0 is missing for the full object set afterwards."""
        machines = [ObjectView(f"m{i}") for i in range(4)]
        watcher = ObjectView("watcher")
        coordinator = GossipCoordinator(machines + [watcher], seed=11)
        names = []
        total_rounds = 6
        for step in range(total_rounds):
            # One new object materializes everywhere each step (a
            # replicated output): a fresh view knows m0 holds it.
            name = f"out-{step}"
            names.append(name)
            for machine in machines:
                machine.learn(name, machine.node, 1 * MB)
            participants = None
            if step >= total_rounds - k:
                participants = {m.node for m in machines}  # watcher out
            coordinator.run_rounds(2, participants)
        needs = [(name, 1 * MB) for name in names]
        return watcher.price_moves(needs, ["m0"])["m0"]

    def test_excluded_view_prices_monotonically_worse(self):
        missing = [self.excluded_missing_bytes(k) for k in range(4)]
        assert missing[0] == 0  # fully gossiped: nothing believed missing
        for fresher, staler in zip(missing, missing[1:]):
            assert staler >= fresher
        assert missing[-1] > missing[0]  # staleness has a real price


# ----------------------------------------------------------------------
# FixpointSim wiring: beliefs age with the round budget


def two_step_graph():
    graph = JobGraph()
    graph.add_data("big0", 10 * MB, "node0")
    graph.add_data("big1", 10 * MB, "node1")
    graph.add_task(
        TaskSpec(
            name="a",
            fn="f",
            inputs=("big0",),
            output="a.out",
            output_size=4 * MB,
            compute_seconds=0.1,
        )
    )
    graph.add_task(
        TaskSpec(
            name="b",
            fn="f",
            inputs=("a.out", "big1"),
            output="b.out",
            output_size=8,
            compute_seconds=0.1,
        )
    )
    return graph


class TestFixpointSimGossip:
    def test_gossiped_run_completes_and_spreads_outputs(self):
        platform = FixpointSim.build(
            nodes=3,
            cores=4,
            gossip=GossipConfig(startup_rounds=3, rounds_per_output=2, seed=0),
        )
        result = platform.run(two_step_graph())
        assert set(result.task_finish) == {"a", "b"}
        # The global view never snapshotted the registry, yet gossip
        # carried the outputs to it.
        assert platform.scheduler.view.where("a.out")
        assert platform.gossip.rounds  # rounds actually ran

    def test_zero_round_budget_means_the_scheduler_stays_stale(self):
        """rounds_per_output=0 is the aging extreme: outputs exist on
        machines (and in machine views) but the global belief never
        hears of them - staleness as a knob, correctness intact."""
        platform = FixpointSim.build(
            nodes=3,
            cores=4,
            gossip=GossipConfig(startup_rounds=3, rounds_per_output=0, seed=0),
        )
        result = platform.run(two_step_graph())
        assert set(result.task_finish) == {"a", "b"}
        assert not platform.scheduler.view.where("a.out")
        # Ground truth has the replica; only the belief lags.
        assert platform.cluster.locate("a.out")

    def test_without_gossip_behaviour_is_unchanged(self):
        platform = FixpointSim.build(nodes=3, cores=4)
        assert platform.gossip is None
        result = platform.run(two_step_graph())
        assert set(result.task_finish) == {"a", "b"}
        assert platform.scheduler.view.where("a.out")


# ----------------------------------------------------------------------
# Executing runtime: GOSSIP frames over real channels

FAT_INC_SOURCE = (
    '"""'
    + "p" * 600
    + '"""\n'
    "def _fix_apply(fix, input):\n"
    "    entries = fix.read_tree(input)\n"
    "    n = int.from_bytes(fix.read_blob(entries[2]), 'little')\n"
    "    return fix.create_blob((n + 1).to_bytes(8, 'little'))\n"
)


class TestNetGossip:
    def test_gossip_frames_cross_the_wire_and_count(self):
        a, b = FixpointNode("alpha"), FixpointNode("beta")
        channel = a.connect(b)  # connect itself is one gossip round
        before = channel.total_bytes
        assert before > 0  # the inventory handshake is real traffic now
        blob = a.repo.put_blob(b"fresh" * 100)
        traffic = a.gossip_with("beta")
        assert traffic.entries_sent >= 1  # the new blob's belief shipped
        assert b.view.knows(blob.content_key(), "alpha")
        assert b.view.believed_size(blob.content_key()) == blob.byte_size()
        assert channel.total_bytes - before == traffic.bytes_shipped

    def test_converged_peers_gossip_for_digest_bytes_only(self):
        a, b = FixpointNode("alpha"), FixpointNode("beta")
        channel = a.connect(b)
        connect_bytes = channel.total_bytes
        traffic = a.gossip_with("beta")
        assert traffic.entries_sent == 0
        assert traffic.entries_received == 0
        # Digests + framing (plus the membership piggyback: a u64
        # incarnation + u64 heartbeat per member), a tiny fraction of
        # the connect handshake.
        assert traffic.bytes_shipped < max(280, connect_bytes / 4)

    def test_transitive_spread_reaches_unconnected_nodes(self):
        """alpha learns what gamma holds through beta - no alpha-gamma
        channel ever existed."""
        alpha, beta, gamma = (
            FixpointNode("alpha"),
            FixpointNode("beta"),
            FixpointNode("gamma"),
        )
        alpha.connect(beta)
        beta.connect(gamma)
        fn = gamma.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        beta.gossip_with("gamma")
        alpha.gossip_with("beta")
        assert "gamma" not in alpha.peers
        assert alpha.view.knows(fn.content_key(), "gamma")
        assert alpha.view.believed_size(fn.content_key()) > 600

    def test_gossip_unknown_peer_raises(self):
        lonely = FixpointNode("lonely")
        from repro.fixpoint.net import NetworkError

        with pytest.raises(NetworkError):
            lonely.gossip_with("nobody")


@pytest.mark.stress
class TestGossipConcurrencyStress:
    """Concurrent gossip rounds + live delegation traffic on a 5-node
    mesh: no deadlock (bounded waits throughout), no lost inventory
    entries (after quiescing, anti-entropy makes every view agree on
    everything every node holds)."""

    NODES = 5
    DELEGATIONS = 4  # per node
    GOSSIP_ROUNDS = 6  # per node, concurrent with the delegations

    def test_concurrent_gossip_and_delegations(self):
        directory = NodeDirectory()
        nodes = [
            FixpointNode(f"n{i}", workers=2, directory=directory)
            for i in range(self.NODES)
        ]
        try:
            for i, node in enumerate(nodes):
                for other in nodes[i + 1 :]:
                    node.connect(other)  # full mesh
            fn = nodes[0].runtime.compile(FAT_INC_SOURCE, "fat-inc")
            errors = []
            futures = []
            futures_lock = threading.Lock()

            def delegate_traffic(node, base):
                try:
                    for j in range(self.DELEGATIONS):
                        encode = make_application(
                            node.repo,
                            fn,
                            [node.repo.put_blob(int_blob(base + j))],
                        ).wrap_strict()
                        with futures_lock:
                            futures.append(
                                (base + j, node, node.scatter([encode])[0])
                            )
                except BaseException as exc:  # pragma: no cover - failure
                    errors.append(exc)

            def gossip_traffic(node, index):
                try:
                    for j in range(self.GOSSIP_ROUNDS):
                        offset = 1 + j % (self.NODES - 1)  # never self
                        node.gossip_with(f"n{(index + offset) % self.NODES}")
                except BaseException as exc:  # pragma: no cover - failure
                    errors.append(exc)

            threads = []
            for index, node in enumerate(nodes):
                threads.append(
                    threading.Thread(
                        target=delegate_traffic,
                        args=(node, index * 100),
                        daemon=True,
                    )
                )
                threads.append(
                    threading.Thread(
                        target=gossip_traffic, args=(node, index), daemon=True
                    )
                )
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive(), "stress threads deadlocked"
            assert not errors, f"stress traffic died: {errors[0]!r}"
            for value, node, future in futures:
                result = future.result(timeout=30)
                assert blob_int(node.repo.get_blob(result).data) == value + 1
            # Quiesced: a full anti-entropy sweep must reconcile every
            # view with every node's real holdings - nothing lost.
            for node in nodes:
                for other in nodes:
                    if other is not node:
                        node.gossip_with(other.name)
            for node in nodes:
                for other in nodes:
                    for key, size in other.runtime.holdings().items():
                        assert node.view.knows(key, other.name), (
                            f"{node.name} lost {other.name}'s entry"
                        )
        finally:
            for node in nodes:
                node.close()


class TestGossipLearnedPlacement:
    """Acceptance: a FixpointNode places work on a peer it learned about
    only via gossip - never directly connected at quote time."""

    def test_quote_prices_and_delegation_dials_a_gossip_learned_node(self):
        directory = NodeDirectory()
        alpha = FixpointNode("alpha", directory=directory)
        beta = FixpointNode("beta", directory=directory)
        gamma = FixpointNode("gamma", directory=directory)
        alpha.connect(beta)
        beta.connect(gamma)
        # gamma acquires the fat codelet *after* all connects: only
        # gossip can tell alpha about it.
        fn = gamma.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        beta.gossip_with("gamma")
        alpha.gossip_with("beta")
        assert "gamma" not in alpha.peers
        arg = alpha.repo.put_blob(int_blob(41))
        encode = make_application(alpha.repo, fn, [arg]).wrap_strict()
        quote = alpha.quote_best(encode)
        assert quote.candidate == "gamma"  # priced without a channel
        result = alpha.eval_anywhere(encode)
        assert blob_int(alpha.repo.get_blob(result).data) == 42
        assert gamma.delegations_served == 1
        assert beta.delegations_served == 0
        assert "gamma" in alpha.peers  # dialed on demand to place the work

    def test_concurrent_dials_share_one_channel(self):
        """Racing connects of the same pair - from either end - must
        agree on a single channel (and so a single sequence space);
        two channels would split the pair's frames and wedge delivery."""
        for trial in range(20):
            a = FixpointNode(f"a{trial}")
            b = FixpointNode(f"b{trial}")
            barrier = threading.Barrier(2)
            errors = []

            def dial(src, dst):
                try:
                    barrier.wait(timeout=10)
                    src.connect(dst)
                except BaseException as exc:  # pragma: no cover - failure
                    errors.append(exc)

            threads = [
                threading.Thread(target=dial, args=(a, b), daemon=True),
                threading.Thread(target=dial, args=(b, a), daemon=True),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=20)
                assert not thread.is_alive()
            assert not errors, f"racing connect died: {errors[0]!r}"
            assert a.peers[b.name] is b.peers[a.name]

    def test_without_a_directory_unreachable_names_are_not_candidates(self):
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        gamma = FixpointNode("gamma")
        alpha.connect(beta)
        beta.connect(gamma)
        fn = gamma.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        beta.gossip_with("gamma")
        alpha.gossip_with("beta")
        assert alpha.view.knows(fn.content_key(), "gamma")
        # Knowledge without an endpoint: placement must stick to peers
        # it can actually reach.
        assert "gamma" not in alpha._candidates()
