"""Tests for the executing multi-node runtime (wire-format delegation)."""

from __future__ import annotations

import pytest

from repro.codelets.stdlib import ADD_U8_SOURCE, blob_int, int_blob
from repro.core.errors import MissingObjectError
from repro.core.thunks import make_application, make_identification, strict
from repro.fixpoint.net import FixpointNode, NetworkError, NodeDirectory

#: A padded codelet whose shipping cost is visible on the wire.
FAT_INC_SOURCE = (
    '"""'
    + "p" * 600
    + '"""\n'
    "def _fix_apply(fix, input):\n"
    "    entries = fix.read_tree(input)\n"
    "    n = int.from_bytes(fix.read_blob(entries[2]), 'little')\n"
    "    return fix.create_blob((n + 1).to_bytes(8, 'little'))\n"
)


@pytest.fixture
def pair():
    a = FixpointNode("alpha")
    b = FixpointNode("beta")
    a.connect(b)
    return a, b


def add_encode(node, x, y):
    repo = node.repo
    fn = node.runtime.stdlib["add_u8"]
    return node.runtime.invoke(
        fn, [repo.put_blob(int_blob(x, 1)), repo.put_blob(int_blob(y, 1))]
    ).wrap_strict()


class TestDelegation:
    def test_delegate_computes_remotely(self, pair):
        a, b = pair
        encode = add_encode(a, 20, 22)
        result = a.delegate("beta", encode)
        assert blob_int(a.repo.get_blob(result).data) == 42
        assert b.delegations_served == 1
        assert a.delegations_sent == 1

    def test_bytes_actually_cross_the_wire(self, pair):
        a, b = pair
        encode = add_encode(a, 1, 2)
        a.delegate("beta", encode)
        channel = a.peers["beta"]
        assert channel.bytes_ab > 32  # request: encode + codelet bundle
        assert channel.bytes_ba > 32  # response: result + data

    def test_view_makes_repeat_delegation_cheaper(self, pair):
        a, b = pair
        # A codelet only alpha has (compiled after the inventory
        # exchange), padded so its shipping cost is visible.
        fn = a.runtime.compile(FAT_INC_SOURCE, "fat-inc")

        def encode_for(n):
            return a.runtime.invoke(
                fn, [a.repo.put_blob(int_blob(n))]
            ).wrap_strict()

        a.delegate("beta", encode_for(1))
        sent_after_first = a.peers["beta"].bytes_ab
        a.delegate("beta", encode_for(2))  # same codelet, new argument
        sent_after_second = a.peers["beta"].bytes_ab
        # The fat codelet blob is not re-shipped: the view knows beta has it.
        first_cost = sent_after_first
        second_cost = sent_after_second - sent_after_first
        assert second_cost < first_cost / 2

    def test_result_memoized_locally(self, pair):
        a, b = pair
        encode = add_encode(a, 5, 6)
        result = a.delegate("beta", encode)
        # A local evaluation now hits the memo - zero invocations here.
        local = a.runtime.eval(encode)
        assert local == result
        assert a.runtime.trace.invocation_count() == 0

    def test_delegate_data_dependency(self, pair):
        """Ship a 1 KiB blob dependency with the job."""
        a, b = pair
        payload = bytes(range(256)) * 4
        blob = a.repo.put_blob(payload)
        encode = strict(make_identification(blob))
        result = a.delegate("beta", encode)
        assert b.repo.get_blob(result).data == payload

    def test_unknown_peer(self, pair):
        a, _ = pair
        with pytest.raises(NetworkError):
            a.delegate("gamma", add_encode(a, 1, 1))


class TestEvalAnywhere:
    def test_local_when_possible(self, pair):
        a, _ = pair
        encode = add_encode(a, 2, 3)
        result = a.eval_anywhere(encode)
        assert blob_int(a.repo.get_blob(result).data) == 5
        assert a.delegations_sent == 0  # everything was local

    def test_follows_the_data(self):
        """The function's code lives on beta: alpha sends the job there."""
        a = FixpointNode("alpha")
        b = FixpointNode("beta")
        # A codelet that exists only on beta (not part of the stdlib both
        # nodes share); connect *afterwards* so the inventory exchange
        # tells alpha that beta holds it.
        fn = b.runtime.compile(
            "def _fix_apply(fix, input):\n"
            "    entries = fix.read_tree(input)\n"
            "    a = int.from_bytes(fix.read_blob(entries[2]), 'little')\n"
            "    b = int.from_bytes(fix.read_blob(entries[3]), 'little')\n"
            "    return fix.create_blob((a * b).to_bytes(8, 'little'))\n",
            "mul",
        )
        a.connect(b)
        x = a.repo.put_blob(int_blob(7))
        y = a.repo.put_blob(int_blob(8))
        # Alpha builds the invocation against beta's code handle.
        thunk = make_application(a.repo, fn, [x, y])
        # Alpha cannot run it: the codelet blob is not local.
        result = a.eval_anywhere(thunk.wrap_strict())
        assert blob_int(a.repo.get_blob(result).data) == 56
        assert a.delegations_sent == 1

    def test_three_node_chain(self):
        a, b, c = FixpointNode("a"), FixpointNode("b"), FixpointNode("c")
        a.connect(b)
        b.connect(c)
        encode = add_encode(b, 10, 20)
        # b can serve both ends.
        assert blob_int(b.repo.get_blob(b.eval_anywhere(encode)).data) == 30

    def test_cold_peer_never_beats_warm_peer(self):
        """Regression: the old greedy scorer started at -1, so a peer
        holding *zero* footprint bytes could win on dict order."""
        alpha = FixpointNode("alpha")
        cold = FixpointNode("cold")
        warm = FixpointNode("warm")
        fn = warm.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        alpha.connect(cold)  # cold connects first: dict-order bait
        alpha.connect(warm)
        arg = alpha.repo.put_blob(int_blob(41))
        encode = make_application(alpha.repo, fn, [arg]).wrap_strict()
        result = alpha.eval_anywhere(encode)
        assert blob_int(alpha.repo.get_blob(result).data) == 42
        assert warm.delegations_served == 1
        assert cold.delegations_served == 0

    def test_bytes_beat_handle_counts(self):
        """A peer holding many tiny footprint objects loses to the peer
        holding the big one - bytes moved decide, not object counts."""
        alpha = FixpointNode("alpha")
        many = FixpointNode("many")  # will hold 10 x 40 B of the footprint
        big = FixpointNode("big")  # will hold 1 x ~2 KiB of it
        smalls = [bytes([i]) * 40 for i in range(10)]
        big_payload = bytes(range(256)) * 8  # 2 KiB
        for payload in smalls:
            alpha.repo.put_blob(payload)  # alpha can ship these
            many.repo.put_blob(payload)
        hbig = big.repo.put_blob(big_payload)
        fn = alpha.runtime.compile(
            "def _fix_apply(fix, input):\n"
            "    entries = fix.read_tree(input)\n"
            "    total = sum(len(fix.read_blob(e)) for e in entries[2:])\n"
            "    return fix.create_blob(total.to_bytes(8, 'little'))\n",
            "sizes",
        )
        alpha.connect(many)
        alpha.connect(big)
        args = [alpha.repo.put_blob(p) for p in smalls] + [hbig]
        encode = make_application(alpha.repo, fn, args).wrap_strict()
        # The bait: "many" overlaps the footprint on more *objects*...
        quote = alpha.quote_best(encode)
        assert quote.candidate == "big"  # ...but fewer *bytes*
        result = alpha.eval_anywhere(encode)
        assert big.delegations_served == 1
        assert many.delegations_served == 0
        total = int.from_bytes(alpha.repo.get_blob(result).data, "little")
        assert total == 10 * 40 + 2048

    def test_ties_break_by_inflight_load_then_name(self):
        alpha = FixpointNode("alpha")
        left = FixpointNode("left")
        right = FixpointNode("right")
        fn_left = left.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        fn_right = right.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        assert fn_left == fn_right
        alpha.connect(left)
        alpha.connect(right)
        arg = alpha.repo.put_blob(int_blob(1))
        encode = make_application(alpha.repo, fn_left, [arg]).wrap_strict()
        # Equal bytes missing on both: the name breaks the tie...
        assert alpha.quote_best(encode).candidate == "left"
        # ...unless one peer already has delegations in flight.
        alpha.outstanding["left"] = 2
        assert alpha.quote_best(encode).candidate == "right"

    def test_delegate_best_without_peers(self):
        lonely = FixpointNode("lonely")
        with pytest.raises(NetworkError):
            lonely.delegate_best(add_encode(lonely, 1, 1))

    def test_cheap_but_unserviceable_peer_loses_to_feasible_peer(self):
        """A peer may price cheapest yet be a dead end: the caller cannot
        ship a key the peer is not believed to hold.  The feasible peer
        must win even at a higher bytes price."""
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        gamma = FixpointNode("gamma")
        key_payload = b"k" * 40  # small: only gamma has it
        big_payload = bytes(range(256)) * 8  # 2 KiB: alpha and beta have it
        hkey = gamma.repo.put_blob(key_payload)
        hbig = beta.repo.put_blob(big_payload)
        alpha.repo.put_blob(big_payload)
        fn = alpha.runtime.compile(
            "def _fix_apply(fix, input):\n"
            "    entries = fix.read_tree(input)\n"
            "    total = sum(len(fix.read_blob(e)) for e in entries[2:])\n"
            "    return fix.create_blob(total.to_bytes(8, 'little'))\n",
            "sizes",
        )
        alpha.connect(beta)
        alpha.connect(gamma)
        encode = make_application(alpha.repo, fn, [hkey, hbig]).wrap_strict()
        # Bytes alone say beta (missing only the 40 B key vs gamma's
        # 2 KiB blob) - but alpha cannot ship the key to beta, so the
        # delegation would strand there.
        quote = alpha.quote_best(encode)
        assert quote.candidate == "gamma"
        result = alpha.eval_anywhere(encode)
        assert gamma.delegations_served == 1
        assert beta.delegations_served == 0
        total = int.from_bytes(alpha.repo.get_blob(result).data, "little")
        assert total == 40 + 2048

    def test_size_unreported_key_cannot_hide_an_unserviceable_peer(self):
        """Regression: strandedness used to be priced in *bytes*, so an
        unshippable key whose size nobody ever reported (believed size
        0) priced every peer at zero and the dead-end peer slipped
        through the serviceability filter on its cheaper footprint.
        Missing *keys* are what strand a delegation, so they are counted
        per key."""
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        gamma = FixpointNode("gamma")
        big_payload = bytes(range(256)) * 8  # 2 KiB: alpha and beta have it
        hbig = alpha.repo.put_blob(big_payload)
        beta.repo.put_blob(big_payload)
        alpha.connect(beta)
        alpha.connect(gamma)
        # Gamma acquires the key *after* the inventory exchange; alpha
        # hears about the location through a path that carried no size.
        hkey = gamma.repo.put_blob(b"k" * 40)
        alpha.view.learn(hkey.content_key(), "gamma")  # location, no size
        assert alpha.view.believed_size(hkey.content_key()) == 0  # the trap
        fn = alpha.runtime.compile(
            "def _fix_apply(fix, input):\n"
            "    entries = fix.read_tree(input)\n"
            "    total = sum(len(fix.read_blob(e)) for e in entries[2:])\n"
            "    return fix.create_blob(total.to_bytes(8, 'little'))\n",
            "sizes",
        )
        encode = make_application(alpha.repo, fn, [hkey, hbig]).wrap_strict()
        # Bytes say beta (it already holds the 2 KiB blob, and the key
        # prices at 0) - but alpha cannot ship the key there, so beta is
        # a dead end and must be filtered out.
        quote = alpha.quote_best(encode)
        assert quote.candidate == "gamma"
        result = alpha.eval_anywhere(encode)
        assert gamma.delegations_served == 1
        assert beta.delegations_served == 0
        total = int.from_bytes(alpha.repo.get_blob(result).data, "little")
        assert total == 40 + 2048

    def test_local_preferred_even_when_a_peer_is_also_free(self):
        """Prefer local when cheapest: a peer believed to hold the whole
        footprint (price zero, like local) must not steal the job."""
        a = FixpointNode("alpha")
        b = FixpointNode("beta")
        encode = add_encode(a, 2, 3)
        a.connect(b)  # b holds the same stdlib: its price is zero too
        result = a.eval_anywhere(encode)
        assert blob_int(a.repo.get_blob(result).data) == 5
        assert a.delegations_sent == 0


class TestGossipLearnedPeer:
    """Inventory knowledge is no longer connect-time-only: anti-entropy
    carries third-party holdings, and placement acts on them."""

    def test_places_work_on_a_peer_known_only_via_gossip(self):
        """Acceptance: alpha delegates to gamma, which it learned about
        purely through gossip with beta - no alpha-gamma channel existed
        when the placement was priced."""
        directory = NodeDirectory()
        alpha = FixpointNode("alpha", directory=directory)
        beta = FixpointNode("beta", directory=directory)
        gamma = FixpointNode("gamma", directory=directory)
        alpha.connect(beta)
        beta.connect(gamma)
        # The fat codelet appears on gamma *after* every connect, so no
        # connect-time exchange could have told alpha about it.
        fn = gamma.runtime.compile(FAT_INC_SOURCE, "fat-inc")
        beta.gossip_with("gamma")
        alpha.gossip_with("beta")
        assert "gamma" not in alpha.peers
        arg = alpha.repo.put_blob(int_blob(6))
        encode = make_application(alpha.repo, fn, [arg]).wrap_strict()
        assert alpha.quote_best(encode).candidate == "gamma"
        result = alpha.delegate_best(encode)
        assert blob_int(alpha.repo.get_blob(result).data) == 7
        assert gamma.delegations_served == 1
        assert beta.delegations_served == 0
        assert "gamma" in alpha.peers  # the delegation dialed it


class TestReplyFiltering:
    def test_reply_does_not_echo_caller_shipped_data(self, pair):
        """The server filters the reply through its view of the caller:
        data the caller just shipped never rides the wire back."""
        a, b = pair
        channel = a.peers["beta"]
        # Connect's inventory gossip already rode this channel; measure
        # the delegation's own traffic relative to that baseline.
        sent_before, received_before = channel.bytes_ab, channel.bytes_ba
        payload = bytes(range(256)) * 8  # 2 KiB
        blob = a.repo.put_blob(payload)
        encode = strict(make_identification(blob))
        result = a.delegate("beta", encode)
        # Request carries the blob; the reply is just the result handle
        # plus an (empty) bundle - the old code echoed all 2 KiB back.
        assert channel.bytes_ab - sent_before > len(payload)
        assert channel.bytes_ba - received_before < 100
        assert a.repo.get_blob(result).data == payload
        assert b.repo.get_blob(result).data == payload

    def test_round_trip_bytes_drop_on_repeated_delegation(self, pair):
        """Second identity round trip: the view knows both directions,
        so neither request nor reply re-ships the payload."""
        a, b = pair
        payload = bytes(range(256)) * 8
        blob = a.repo.put_blob(payload)
        first = a.delegate("beta", strict(make_identification(blob)))
        channel = a.peers["beta"]
        first_round = channel.total_bytes
        # A fresh encode over the same datum (identification of a tree
        # holding the blob): only the new tiny tree ships.
        tree = a.repo.put_tree([blob, blob])
        a.delegate("beta", strict(make_identification(tree)))
        second_round = channel.total_bytes - first_round
        assert second_round < len(payload) / 2
        assert second_round < first_round / 2

    def test_server_view_learns_from_requests(self, pair):
        """The sender identity in the frame advances the server's view:
        a reverse delegation needing the same datum ships nothing."""
        a, b = pair
        payload = bytes(range(256)) * 8
        blob = a.repo.put_blob(payload)
        a.delegate("beta", strict(make_identification(blob)))
        assert b.view.knows(blob.content_key(), "alpha")
        channel = a.peers["beta"]
        before = channel.total_bytes
        # Beta now delegates work over that datum back to alpha.
        back = b.delegate("alpha", strict(make_identification(blob)))
        assert b.repo.get_blob(back).data == payload
        assert channel.total_bytes - before < 150  # handles, no payloads


class TestChannelClose:
    def test_send_after_close_raises_with_endpoints_named(self, pair):
        a, b = pair
        channel = a.peers["beta"]
        channel.close()
        assert channel.closed
        with pytest.raises(NetworkError, match=r"alpha<->beta is closed"):
            channel.send(a, b"frame")
        # delegation over the closed link surfaces the same failure
        with pytest.raises(NetworkError, match="closed"):
            a.delegate("beta", add_encode(a, 1, 2))

    def test_close_is_idempotent(self, pair):
        a, _ = pair
        channel = a.peers["beta"]
        channel.close()
        channel.close()
        assert channel.closed

    def test_close_wakes_parked_delivery_window(self, pair):
        """A frame waiting on an undelivered predecessor must fail loudly
        on close, not sleep forever (the PR-4 wedge shape)."""
        import threading

        a, _ = pair
        channel = a.peers["beta"]
        # Take a sequence number but never deliver it, so the successor
        # frame parks in its delivery window.
        channel.send(a, b"frame-k")
        errors, seqs = [], []

        def deliver_out_of_order():
            _, seq = channel.send(a, b"frame-k+1")
            seqs.append(seq)
            try:
                with channel.arrival(a, seq):
                    pass
            except NetworkError as exc:
                errors.append(exc)

        waiter = threading.Thread(target=deliver_out_of_order)
        waiter.start()
        waiter.join(timeout=0.2)
        assert waiter.is_alive()  # parked on frame 0's turn
        channel.close()
        waiter.join(timeout=2.0)
        assert not waiter.is_alive()
        assert len(errors) == 1
        assert f"closed while frame {seqs[0]} awaited delivery" in str(errors[0])
