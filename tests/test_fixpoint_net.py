"""Tests for the executing multi-node runtime (wire-format delegation)."""

from __future__ import annotations

import pytest

from repro.codelets.stdlib import ADD_U8_SOURCE, blob_int, int_blob
from repro.core.errors import MissingObjectError
from repro.core.thunks import make_application, make_identification, strict
from repro.fixpoint.net import FixpointNode, NetworkError


@pytest.fixture
def pair():
    a = FixpointNode("alpha")
    b = FixpointNode("beta")
    a.connect(b)
    return a, b


def add_encode(node, x, y):
    repo = node.repo
    fn = node.runtime.stdlib["add_u8"]
    return node.runtime.invoke(
        fn, [repo.put_blob(int_blob(x, 1)), repo.put_blob(int_blob(y, 1))]
    ).wrap_strict()


class TestDelegation:
    def test_delegate_computes_remotely(self, pair):
        a, b = pair
        encode = add_encode(a, 20, 22)
        result = a.delegate("beta", encode)
        assert blob_int(a.repo.get_blob(result).data) == 42
        assert b.delegations_served == 1
        assert a.delegations_sent == 1

    def test_bytes_actually_cross_the_wire(self, pair):
        a, b = pair
        encode = add_encode(a, 1, 2)
        a.delegate("beta", encode)
        channel = a.peers["beta"]
        assert channel.bytes_ab > 32  # request: encode + codelet bundle
        assert channel.bytes_ba > 32  # response: result + data

    def test_view_makes_repeat_delegation_cheaper(self, pair):
        a, b = pair
        # A codelet only alpha has (compiled after the inventory
        # exchange), padded so its shipping cost is visible.
        source = (
            '"""'
            + "p" * 600
            + '"""\n'
            "def _fix_apply(fix, input):\n"
            "    entries = fix.read_tree(input)\n"
            "    n = int.from_bytes(fix.read_blob(entries[2]), 'little')\n"
            "    return fix.create_blob((n + 1).to_bytes(8, 'little'))\n"
        )
        fn = a.runtime.compile(source, "fat-inc")

        def encode_for(n):
            return a.runtime.invoke(
                fn, [a.repo.put_blob(int_blob(n))]
            ).wrap_strict()

        a.delegate("beta", encode_for(1))
        sent_after_first = a.peers["beta"].bytes_ab
        a.delegate("beta", encode_for(2))  # same codelet, new argument
        sent_after_second = a.peers["beta"].bytes_ab
        # The fat codelet blob is not re-shipped: the view knows beta has it.
        first_cost = sent_after_first
        second_cost = sent_after_second - sent_after_first
        assert second_cost < first_cost / 2

    def test_result_memoized_locally(self, pair):
        a, b = pair
        encode = add_encode(a, 5, 6)
        result = a.delegate("beta", encode)
        # A local evaluation now hits the memo - zero invocations here.
        local = a.runtime.eval(encode)
        assert local == result
        assert a.runtime.trace.invocation_count() == 0

    def test_delegate_data_dependency(self, pair):
        """Ship a 1 KiB blob dependency with the job."""
        a, b = pair
        payload = bytes(range(256)) * 4
        blob = a.repo.put_blob(payload)
        encode = strict(make_identification(blob))
        result = a.delegate("beta", encode)
        assert b.repo.get_blob(result).data == payload

    def test_unknown_peer(self, pair):
        a, _ = pair
        with pytest.raises(NetworkError):
            a.delegate("gamma", add_encode(a, 1, 1))


class TestEvalAnywhere:
    def test_local_when_possible(self, pair):
        a, _ = pair
        encode = add_encode(a, 2, 3)
        result = a.eval_anywhere(encode)
        assert blob_int(a.repo.get_blob(result).data) == 5
        assert a.delegations_sent == 0  # everything was local

    def test_follows_the_data(self):
        """The function's code lives on beta: alpha sends the job there."""
        a = FixpointNode("alpha")
        b = FixpointNode("beta")
        # A codelet that exists only on beta (not part of the stdlib both
        # nodes share); connect *afterwards* so the inventory exchange
        # tells alpha that beta holds it.
        fn = b.runtime.compile(
            "def _fix_apply(fix, input):\n"
            "    entries = fix.read_tree(input)\n"
            "    a = int.from_bytes(fix.read_blob(entries[2]), 'little')\n"
            "    b = int.from_bytes(fix.read_blob(entries[3]), 'little')\n"
            "    return fix.create_blob((a * b).to_bytes(8, 'little'))\n",
            "mul",
        )
        a.connect(b)
        x = a.repo.put_blob(int_blob(7))
        y = a.repo.put_blob(int_blob(8))
        # Alpha builds the invocation against beta's code handle.
        thunk = make_application(a.repo, fn, [x, y])
        # Alpha cannot run it: the codelet blob is not local.
        result = a.eval_anywhere(thunk.wrap_strict())
        assert blob_int(a.repo.get_blob(result).data) == 56
        assert a.delegations_sent == 1

    def test_three_node_chain(self):
        a, b, c = FixpointNode("a"), FixpointNode("b"), FixpointNode("c")
        a.connect(b)
        b.connect(c)
        encode = add_encode(b, 10, 20)
        # b can serve both ends.
        assert blob_int(b.repo.get_blob(b.eval_anywhere(encode)).data) == 30
