"""Tests for ultra-high-density multitenancy packing (paper section 6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SchedulingError
from repro.dist.multitenancy import (
    AppProfile,
    Phase,
    density_ratio,
    footprint_aware_packing,
    peak_reservation_packing,
    spiky_workload,
    validate_packing,
)

GB = 1 << 30


class TestProfiles:
    def test_profile_queries(self):
        app = AppProfile("a", (Phase(1.0, 4 * GB), Phase(9.0, 1 * GB)))
        assert app.peak_bytes == 4 * GB
        assert app.lifetime == 10.0
        assert app.memory_at(0.5) == 4 * GB
        assert app.memory_at(5.0) == 1 * GB
        assert app.memory_at(100.0) == 0
        assert app.mem_time_integral() == 1.0 * 4 * GB + 9.0 * 1 * GB

    def test_invalid_phases_rejected(self):
        with pytest.raises(SchedulingError):
            Phase(0.0, 1)
        with pytest.raises(SchedulingError):
            Phase(1.0, -1)
        with pytest.raises(SchedulingError):
            AppProfile("empty", ())


class TestPacking:
    def test_peak_packing_reserves_peaks(self):
        apps = [AppProfile(f"a{i}", (Phase(1.0, 3 * GB),)) for i in range(4)]
        packing = peak_reservation_packing(apps, capacity_bytes=8 * GB)
        assert packing.bin_count == 2  # 2 x 3 GB per 8 GB bin
        validate_packing(packing)

    def test_footprint_packing_interleaves_staggered_spikes(self):
        apps = spiky_workload(
            16, peak_bytes=4 * GB, sustained_bytes=256 << 20, stagger_slots=8
        )
        aware, peak, ratio = density_ratio(apps, capacity_bytes=8 * GB)
        assert ratio > 2.0, f"expected big density win, got {ratio}"
        assert aware.apps_per_bin() > peak.apps_per_bin()

    def test_aligned_spikes_cannot_overlap(self):
        # All spikes at t=0: profile knowledge cannot conjure capacity.
        apps = spiky_workload(
            8, peak_bytes=4 * GB, sustained_bytes=256 << 20, stagger_slots=1
        )
        aware, peak, ratio = density_ratio(apps, capacity_bytes=8 * GB)
        assert aware.bin_count == peak.bin_count  # 2 spikes per bin, both models

    def test_oversized_app_rejected(self):
        giant = AppProfile("g", (Phase(1.0, 100 * GB),))
        with pytest.raises(SchedulingError):
            peak_reservation_packing([giant], 8 * GB)
        with pytest.raises(SchedulingError):
            footprint_aware_packing([giant], 8 * GB)

    def test_validate_catches_bad_packing(self):
        from repro.dist.multitenancy import Packing

        a = AppProfile("a", (Phase(1.0, 6 * GB),))
        b = AppProfile("b", (Phase(1.0, 6 * GB),))
        bad = Packing(capacity_bytes=8 * GB, bins=[[a, b]])
        with pytest.raises(SchedulingError):
            validate_packing(bad)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),  # peak GB
                st.integers(min_value=0, max_value=2),  # sustained GB
                st.integers(min_value=0, max_value=5),  # offset slots
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_packings_always_valid_property(self, specs):
        apps = []
        for i, (peak_gb, sustained_gb, offset) in enumerate(specs):
            phases = []
            if offset:
                phases.append(Phase(float(offset), sustained_gb * GB))
            phases.append(Phase(1.0, peak_gb * GB))
            phases.append(Phase(3.0, min(sustained_gb, peak_gb) * GB))
            apps.append(AppProfile(f"app{i}", tuple(phases)))
        aware, peak, ratio = density_ratio(apps, capacity_bytes=8 * GB)
        # Both packings hold every app exactly once.
        for packing in (aware, peak):
            names = [a.name for members in packing.bins for a in members]
            assert sorted(names) == sorted(a.name for a in apps)
        # Footprint knowledge never needs MORE machines.
        assert aware.bin_count <= peak.bin_count
