"""Tests for the Fix evaluator: forcing rules, encodes, memoization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import EvaluationError, SelectionError
from repro.core.eval import Evaluator
from repro.core.handle import Handle
from repro.core.storage import Repository
from repro.core.thunks import (
    make_identification,
    make_selection,
    make_selection_range,
    pack_index,
    shallow,
    strict,
)


@pytest.fixture
def ev(repo):
    return Evaluator(repo)


class TestIdentification:
    def test_strict_identification_yields_object(self, repo, ev):
        value = repo.put_blob(b"v" * 64)
        result = ev.eval_encode(strict(make_identification(value.as_ref())))
        assert result.is_object
        assert result.content_key() == value.content_key()

    def test_shallow_identification_yields_ref(self, repo, ev):
        value = repo.put_blob(b"v" * 64)
        result = ev.eval_encode(shallow(make_identification(value)))
        assert result.is_ref
        assert result.content_key() == value.content_key()

    def test_shallow_of_literal_stays_literal(self, repo, ev):
        value = repo.put_blob(b"tiny")
        result = ev.eval_encode(shallow(make_identification(value)))
        assert result.is_literal  # literals cannot be hidden


class TestSelection:
    def test_select_tree_child(self, repo, ev):
        a = repo.put_blob(b"a" * 64)
        b = repo.put_blob(b"b" * 64)
        target = repo.put_tree([a, b])
        result = ev.eval_encode(strict(make_selection(repo, target, 1)))
        assert result.content_key() == b.content_key()

    def test_select_tree_range_makes_subtree(self, repo, ev):
        children = [repo.put_blob(bytes([i]) * 64) for i in range(5)]
        target = repo.put_tree(children)
        result = ev.eval_encode(strict(make_selection_range(repo, target, 1, 4)))
        sub = repo.get_tree(result)
        assert list(sub) == children[1:4]

    def test_select_blob_byte(self, repo, ev):
        target = repo.put_blob(b"0123456789" * 7)
        result = ev.eval_encode(strict(make_selection(repo, target, 3)))
        assert repo.get_blob(result).data == b"3"

    def test_select_blob_range(self, repo, ev):
        target = repo.put_blob(b"0123456789" * 7)
        result = ev.eval_encode(strict(make_selection_range(repo, target, 0, 10)))
        assert repo.get_blob(result).data == b"0123456789"

    def test_out_of_range(self, repo, ev):
        target = repo.put_tree([repo.put_blob(b"a" * 64)])
        with pytest.raises(SelectionError):
            ev.eval_encode(strict(make_selection(repo, target, 5)))

    def test_selection_through_thunk_target(self, repo, ev):
        inner_child = repo.put_blob(b"deep" * 20)
        inner = repo.put_tree([inner_child])
        outer = repo.put_tree([repo.put_blob(b"pad" * 30), inner])
        first = make_selection(repo, outer, 1)  # forces to the inner tree
        chained = repo.put_tree([first, pack_index(0)]).make_selection()
        result = ev.eval_encode(strict(chained))
        assert result.content_key() == inner_child.content_key()

    def test_selection_returns_child_asis_even_if_ref(self, repo, ev):
        hidden = repo.put_blob(b"h" * 64).as_ref()
        target = repo.put_tree([hidden])
        result = ev.eval_encode(shallow(make_selection(repo, target, 0)))
        assert result.is_ref

    @given(st.lists(st.binary(min_size=31, max_size=40), min_size=1, max_size=8), st.data())
    def test_selection_matches_python_indexing(self, payloads, data):
        repo = Repository()
        ev = Evaluator(repo)
        children = [repo.put_blob(p) for p in payloads]
        target = repo.put_tree(children)
        index = data.draw(st.integers(min_value=0, max_value=len(children) - 1))
        result = ev.eval_encode(strict(make_selection(repo, target, index)))
        assert result.content_key() == children[index].content_key()


class TestStrictDeepResolution:
    def test_nested_encode_in_tree_is_resolved(self, repo, ev):
        value = repo.put_blob(b"v" * 64)
        encode = strict(make_identification(value.as_ref()))
        tree = repo.put_tree([encode, repo.put_blob(b"w" * 64)])
        result = ev.eval(tree)
        resolved = repo.get_tree(result)
        assert resolved[0].is_object
        assert resolved[0].content_key() == value.content_key()

    def test_ref_entries_are_preserved(self, repo, ev):
        ref = repo.put_blob(b"r" * 64).as_ref()
        tree = repo.put_tree([ref])
        result = ev.eval(tree)
        assert repo.get_tree(result)[0].is_ref

    def test_plain_blob_eval_is_identity(self, repo, ev):
        value = repo.put_blob(b"p" * 64)
        assert ev.eval(value) == value

    def test_unchanged_tree_keeps_handle(self, repo, ev):
        tree = repo.put_tree([repo.put_blob(b"a" * 64)])
        assert ev.eval(tree).content_key() == tree.content_key()

    def test_nested_tree_resolution(self, repo, ev):
        value = repo.put_blob(b"n" * 64)
        inner = repo.put_tree([strict(make_identification(value.as_ref()))])
        outer = repo.put_tree([inner])
        result = ev.eval(outer)
        inner_resolved = repo.get_tree(repo.get_tree(result)[0])
        assert inner_resolved[0].content_key() == value.content_key()


class TestMemoization:
    def test_encode_result_is_memoized(self, repo):
        ev = Evaluator(repo)
        value = repo.put_blob(b"m" * 64)
        encode = strict(make_identification(value))
        first = ev.eval_encode(encode)
        baseline_hits = ev.stats.memo_hits
        second = ev.eval_encode(encode)
        assert first == second
        assert ev.stats.memo_hits == baseline_hits + 1

    def test_memoization_shared_across_evaluators(self, repo):
        value = repo.put_blob(b"s" * 64)
        encode = strict(make_identification(value))
        Evaluator(repo).eval_encode(encode)
        ev2 = Evaluator(repo)
        ev2.eval_encode(encode)
        assert ev2.stats.memo_hits == 1

    def test_memoize_false_recomputes(self, repo):
        ev = Evaluator(repo, memoize=False)
        value = repo.put_blob(b"n" * 64)
        encode = strict(make_identification(value))
        ev.eval_encode(encode)
        ev.eval_encode(encode)
        assert ev.stats.memo_hits == 0
        assert ev.stats.identifications == 2

    def test_determinism(self, repo):
        value = repo.put_blob(b"d" * 64)
        encode = strict(make_identification(value.as_ref()))
        results = {Evaluator(repo).eval_encode(encode) for _ in range(3)}
        assert len(results) == 1


class TestErrors:
    def test_application_without_apply_hook(self, repo, ev):
        fn = repo.put_blob(b"f" * 64)
        thunk = repo.put_tree(
            [repo.put_blob(b"\x00" * 16), fn]
        ).make_application()
        with pytest.raises(EvaluationError):
            ev.eval_encode(strict(thunk))

    def test_eval_encode_requires_encode(self, repo, ev):
        with pytest.raises(EvaluationError):
            ev.eval_encode(repo.put_blob(b"x" * 64))

    def test_stats_counting(self, repo, ev):
        value = repo.put_blob(b"c" * 64)
        target = repo.put_tree([value])
        ev.eval_encode(strict(make_selection(repo, target, 0)))
        ev.eval_encode(shallow(make_identification(value)))
        assert ev.stats.selections == 1
        assert ev.stats.identifications == 1
        assert ev.stats.strict_encodes == 1
        assert ev.stats.shallow_encodes == 1
