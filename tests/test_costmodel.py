"""The shared placement policy: one cost model for both runtimes.

Covers :mod:`repro.dist.costmodel` (pricing, tie-breaks, hints), the
incremental holdings/size index in :class:`repro.dist.objectview.ObjectView`
(consistency through ``learn`` / ``sync_from_cluster`` / ``exchange``,
staleness pricing), and the acceptance property of the unification: the
simulated :class:`DataflowScheduler` and the executing
:class:`repro.fixpoint.net.FixpointNode` pick the *same* machine when
they hold the same beliefs.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SchedulingError
from repro.core.minrepo import transitive_footprint
from repro.core.thunks import make_application
from repro.dist.costmodel import Quote, choose, price_moves, quote
from repro.dist.graph import TaskSpec
from repro.dist.objectview import ObjectView
from repro.dist.scheduler import DataflowScheduler
from repro.fixpoint.net import FixpointNode
from repro.sim.cluster import Cluster, MachineSpec
from repro.sim.engine import Simulator

MB = 1 << 20


def make_cluster(nodes=3, cores=4):
    sim = Simulator()
    cluster = Cluster(
        sim, [MachineSpec(f"node{i}", cores=cores) for i in range(nodes)]
    )
    return sim, cluster


class TestPriceMoves:
    def locations(self, table):
        return lambda name: table.get(name, ())

    def test_prices_missing_bytes_per_candidate(self):
        table = {"a": {"m1"}, "b": {"m2"}, "c": {"m1", "m2"}}
        prices = price_moves(
            [("a", 10), ("b", 20), ("c", 5)],
            self.locations(table),
            ["m1", "m2", "m3"],
        )
        assert prices == {"m1": 20, "m2": 10, "m3": 35}

    def test_unknown_object_charges_everyone(self):
        prices = price_moves(
            [("ghost", 7)], self.locations({}), ["m1", "m2"]
        )
        assert prices == {"m1": 7, "m2": 7}

    def test_locations_outside_candidates_ignored(self):
        table = {"a": {"elsewhere"}}
        prices = price_moves([("a", 10)], self.locations(table), ["m1"])
        assert prices == {"m1": 10}

    def test_duplicate_needs_counted_twice(self):
        """Mirrors ObjectView.bytes_missing, which sums per occurrence."""
        prices = price_moves(
            [("a", 10), ("a", 10)], self.locations({"a": {"m1"}}), ["m1", "m2"]
        )
        assert prices == {"m1": 0, "m2": 20}


class TestChoose:
    def test_cheapest_bytes_win(self):
        best = choose(
            ["m1", "m2"], {"m1": 100, "m2": 5}.__getitem__, lambda m: 0
        )
        assert best.candidate == "m2"
        assert best.move_bytes == 5

    def test_ties_spread_by_load_then_name(self):
        prices = {"m1": 10, "m2": 10, "m3": 10}
        loads = {"m1": 2, "m2": 0, "m3": 0}
        best = choose(prices, prices.__getitem__, loads.__getitem__)
        assert best.candidate == "m2"  # load beats m1, name beats m3

    def test_output_hint_prices_the_journey(self):
        prices = {"m1": 0, "m2": 3}
        best = choose(
            prices,
            prices.__getitem__,
            lambda m: 0,
            output_size=100,
            consumer_location="m2",
        )
        assert best.candidate == "m2"
        assert best.hint_bytes == 0  # at the consumer, the output stays put
        assert quote("m1", 0, 0, output_size=100, consumer_location="m2") == Quote(
            "m1", 0, 100, 0
        )

    def test_empty_candidates_is_an_error(self):
        with pytest.raises(SchedulingError):
            choose([], lambda m: 0, lambda m: 0)


class TestHoldingsIndex:
    def assert_consistent(self, view, names, locations):
        """Forward map, inverted holdings index, and knows() agree."""
        for name in names:
            for loc in locations:
                assert view.knows(name, loc) == (loc in view.where(name))
                assert (name in view.holdings(loc)) == view.knows(name, loc)

    def test_learn_maintains_index(self):
        view = ObjectView("n0")
        view.learn("x", "m1", 10)
        view.learn("x", "m2", 10)
        view.learn("y", "m1", 4)
        assert view.holdings("m1") == {"x", "y"}
        assert view.holdings("m2") == {"x"}
        assert view.holdings("m3") == set()
        assert view.bytes_held("m1") == 14
        assert view.believed_size("x") == 10
        assert view.believed_size("ghost") == 0
        self.assert_consistent(view, ["x", "y"], ["m1", "m2", "m3"])

    def test_sync_from_cluster_maintains_index(self):
        sim, cluster = make_cluster()
        cluster.add_object("a", 10, "node0")
        cluster.add_object("b", 20, "node1")
        cluster.add_object("b", 20, "node2")
        view = ObjectView("node0")
        view.sync_from_cluster(cluster)
        assert view.holdings("node1") == {"b"}
        assert view.bytes_held("node2") == 20
        self.assert_consistent(view, ["a", "b"], ["node0", "node1", "node2"])

    def test_exchange_maintains_index_and_sizes(self):
        sim, cluster = make_cluster()
        cluster.add_object("a", 10, "node0")
        cluster.add_object("b", 20, "node1")
        v0, v1 = ObjectView("node0"), ObjectView("node1")
        v0.exchange(v1, cluster)
        for view in (v0, v1):
            assert view.holdings("node0") == {"a"}
            assert view.holdings("node1") == {"b"}
            assert view.believed_size("a") == 10
            assert view.believed_size("b") == 20
            self.assert_consistent(view, ["a", "b"], ["node0", "node1"])

    def test_bytes_missing_many_matches_per_machine(self):
        sim, cluster = make_cluster(nodes=4)
        cluster.add_object("a", 10, "node0")
        cluster.add_object("b", 20, "node1")
        cluster.add_object("c", 30, "node1")
        view = ObjectView("sched")
        view.sync_from_cluster(cluster)
        names = ["a", "b", "c"]
        machines = cluster.machine_names()
        many = view.bytes_missing_many(cluster, names, machines)
        assert many == {
            m: view.bytes_missing(cluster, names, m) for m in machines
        }


class TestStaleness:
    def test_missed_replica_prices_a_redundant_fetch(self):
        """A replica the view never saw must cost a (redundant) transfer,
        never a failure - beliefs price, ground truth settles."""
        sim, cluster = make_cluster()
        cluster.add_object("x", 10 * MB, "node0")
        cluster.add_object("y", 1 * MB, "node1")
        view = ObjectView("sched")
        view.sync_from_cluster(cluster)
        cluster.add_object("x", 10 * MB, "node1")  # replica the view missed
        # Belief says node1 must fetch x; ground truth says it is free.
        assert view.bytes_missing(cluster, ["x", "y"], "node1") == 10 * MB
        assert cluster.bytes_missing(["x", "y"], "node1") == 0
        # The stale scheduler therefore places at node0 and pays y's
        # journey - the staleness-induced redundant transfer.
        sched = DataflowScheduler(cluster, view)
        task = TaskSpec(
            name="t",
            fn="f",
            inputs=("x", "y"),
            output="t.out",
            output_size=8,
            compute_seconds=0.1,
        )
        placement = sched.place(task)
        assert placement.machine == "node0"
        assert placement.predicted_move_bytes == 1 * MB

    def test_engine_survives_view_staleness_end_to_end(self):
        """Replicas created by fetches are invisible to the scheduler's
        view (only outputs are learned) - the run must still complete and
        the view must provably lag ground truth."""
        from repro.dist.engine import FixpointSim
        from repro.dist.graph import JobGraph

        platform = FixpointSim.build(nodes=3, cores=4)
        graph = JobGraph()
        graph.add_data("big0", 10 * MB, "node0")
        graph.add_data("big1", 10 * MB, "node1")
        graph.add_task(
            TaskSpec(
                name="a",
                fn="f",
                inputs=("big0",),
                output="a.out",
                output_size=4 * MB,
                compute_seconds=0.1,
            )
        )
        # b consumes a.out next to big1: a.out gets fetched to node1...
        graph.add_task(
            TaskSpec(
                name="b",
                fn="f",
                inputs=("a.out", "big1"),
                output="b.out",
                output_size=8,
                compute_seconds=0.1,
            )
        )
        result = platform.run(graph)
        assert set(result.task_finish) == {"a", "b"}
        # ...so ground truth has a replica at node1 that the scheduler's
        # view never learned (fetch replicas are not note_output'd).
        view = platform.scheduler.view
        locations = platform.cluster.locate("a.out")
        assert "node1" in locations
        assert view.where("a.out") == {"node0"}
        # Pricing a follow-up at node1 with the stale view charges the
        # redundant fetch; ground truth knows it would be free.
        assert (
            view.bytes_missing(platform.cluster, ["a.out"], "node1") == 4 * MB
        )
        assert platform.cluster.bytes_missing(["a.out"], "node1") == 0


SOURCE_CONCAT = (
    "def _fix_apply(fix, input):\n"
    "    entries = fix.read_tree(input)\n"
    "    blobs = [fix.read_blob(e) for e in entries[2:]]\n"
    "    return fix.create_blob(b''.join(blobs))\n"
)


class TestOnePolicyBothRuntimes:
    """Acceptance: given the same believed view, the executing runtime's
    delegation and the simulated scheduler resolve to the same machine
    (both go through :func:`repro.dist.costmodel.choose`)."""

    def build_nodes(self):
        alpha = FixpointNode("alpha")
        beta = FixpointNode("beta")
        gamma = FixpointNode("gamma")
        big = bytes(range(256)) * 4  # 1 KiB, lives on beta (and alpha ships none of it)
        small = b"s" * 40  # 40 B, lives on gamma and alpha
        hbig = beta.repo.put_blob(big)
        hsmall = gamma.repo.put_blob(small)
        alpha.repo.put_blob(small)
        fn_beta = beta.runtime.compile(SOURCE_CONCAT, "concat")
        fn_gamma = gamma.runtime.compile(SOURCE_CONCAT, "concat")
        assert fn_beta == fn_gamma  # content-addressed: one handle
        alpha.connect(beta)
        alpha.connect(gamma)
        encode = make_application(
            alpha.repo, fn_beta, [hbig, hsmall]
        ).wrap_strict()
        return alpha, beta, gamma, encode

    def mirror_into_scheduler(self, alpha, encode):
        """Rebuild alpha's exact beliefs as a cluster + ObjectView."""
        fp = transitive_footprint(alpha.repo, encode)
        local = alpha.runtime.holdings()
        sim = Simulator()
        cluster = Cluster(
            sim, [MachineSpec("beta", cores=4), MachineSpec("gamma", cores=4)]
        )
        view = ObjectView("sched")
        names = []
        for key in sorted(fp.data):
            name = key.hex()
            size = local.get(key, alpha.view.believed_size(key))
            peers = alpha.view.where(key) & {"beta", "gamma"}
            # The registry needs some location; data only alpha holds
            # starts at the (non-machine) client endpoint.
            for location in peers or {"client"}:
                cluster.add_object(name, size, location)
            for location in peers:
                view.learn(name, location, size)
            names.append(name)
        sched = DataflowScheduler(cluster, view)
        task = TaskSpec(
            name="t",
            fn="f",
            inputs=tuple(names),
            output="t.out",
            output_size=8,
            compute_seconds=0.1,
        )
        return sched, task

    def test_both_pick_the_same_machine(self):
        alpha, beta, gamma, encode = self.build_nodes()
        net_quote = alpha.quote_best(encode)
        sched, task = self.mirror_into_scheduler(alpha, encode)
        placement = sched.place(task)
        # Same winner AND the same believed price, down to the byte.
        assert placement.machine == net_quote.candidate == "beta"
        assert placement.predicted_move_bytes == net_quote.move_bytes
        # The choice is real: eval_anywhere delegates to that machine
        # and the evaluation succeeds there.
        result = alpha.eval_anywhere(encode)
        assert beta.delegations_served == 1
        assert gamma.delegations_served == 0
        payload = alpha.repo.get_blob(result).data
        assert payload == bytes(range(256)) * 4 + b"s" * 40

    def test_load_feedback_moves_both_the_same_way(self):
        """Tip the tie-break with load on both sides: same flip."""
        alpha, beta, gamma, encode = self.build_nodes()
        # Make beta and gamma equal-priced by giving gamma the big blob
        # too (alpha learns of it late - another inventory exchange).
        big = bytes(range(256)) * 4
        hbig = gamma.repo.put_blob(big)
        alpha.view.learn(hbig.content_key(), "gamma", hbig.byte_size())
        small = b"s" * 40
        hsmall = alpha.repo.put_blob(small)
        alpha.view.learn(hsmall.content_key(), "beta", hsmall.byte_size())
        alpha.view.learn(hsmall.content_key(), "gamma", hsmall.byte_size())
        assert alpha.quote_best(encode).candidate == "beta"  # name tie-break
        alpha.outstanding["beta"] = 3
        assert alpha.quote_best(encode).candidate == "gamma"  # load wins
        sched, task = self.mirror_into_scheduler(alpha, encode)
        sched.task_started("beta")
        assert sched.place(task).machine == "gamma"


class TestForget:
    """``ObjectView.forget``: the rollback path for optimistic advances."""

    def test_forget_retracts_location_and_holdings(self):
        view = ObjectView("alpha")
        view.learn("obj", "beta", 100)
        view.learn("obj", "gamma", 100)
        view.forget("obj", "beta")
        assert not view.knows("obj", "beta")
        assert view.where("obj") == {"gamma"}
        assert "obj" not in view.holdings("beta")

    def test_forget_keeps_size_knowledge(self):
        """Size is per-object, not per-replica: a wrong location belief
        does not invalidate what we know the object weighs."""
        view = ObjectView("alpha")
        view.learn("obj", "beta", 4096)
        view.forget("obj", "beta")
        assert view.believed_size("obj") == 4096
        # Pricing still charges the right weight once re-learned.
        view.learn("obj", "gamma")
        assert view.price_moves([("obj", 4096)], ["beta", "gamma"]) == {
            "beta": 4096,
            "gamma": 0,
        }

    def test_forget_last_location_empties_where(self):
        view = ObjectView("alpha")
        view.learn("obj", "beta", 10)
        view.forget("obj", "beta")
        assert view.where("obj") == set()
        assert len(view) == 0

    def test_forget_unknown_is_a_noop(self):
        view = ObjectView("alpha")
        view.forget("never-seen", "beta")  # must not raise
        view.learn("obj", "beta", 10)
        view.forget("obj", "gamma")  # wrong location: no change
        assert view.knows("obj", "beta")


class TestViewConcurrency:
    """The view's lock: learn/forget racing price_moves stays coherent.

    The executing runtime absorbs delegation replies on serving threads
    while the dispatcher quotes placements; without the internal lock
    the pricing pass iterates location sets that mutate under it.
    """

    def test_concurrent_learn_forget_and_price_moves(self):
        import threading

        view = ObjectView("alpha")
        names = [f"obj{i}" for i in range(50)]
        for name in names:
            view.learn(name, "beta", 10)
        needs = [(name, 10) for name in names]
        stop = threading.Event()
        errors = []

        def churn():
            try:
                while not stop.is_set():
                    for name in names:
                        view.learn(name, "gamma", 10)
                    for name in names:
                        view.forget(name, "gamma")
            except BaseException as exc:  # pragma: no cover - the failure
                errors.append(exc)

        thread = threading.Thread(target=churn, daemon=True)
        thread.start()
        try:
            for _ in range(300):
                prices = view.price_moves(needs, ["beta", "gamma", "delta"])
                # Atomic pass: beta always holds everything, delta never
                # does, and gamma is either fully charged or not per
                # object - never a torn read that breaks the invariant.
                assert prices["beta"] == 0
                assert prices["delta"] == 500
                assert 0 <= prices["gamma"] <= 500
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not errors, f"churn thread died: {errors[0]!r}"
