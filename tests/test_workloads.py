"""Tests for the evaluation workloads (real codelets + graph builders)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CodeletError
from repro.dist.graph import CLIENT, EXTERNAL
from repro.fixpoint.runtime import Fixpoint
from repro.workloads.bptree import (
    build_bptree,
    compile_get,
    lookup,
    required_depth,
    sample_queries,
)
from repro.workloads.chain import build_chain, run_chain
from repro.workloads.compilejob import (
    build_compile_graph,
    compile_project,
    make_headers,
    make_source,
)
from repro.workloads.corpus import declare_shards, make_corpus, make_shard, reference_count
from repro.workloads.oneoff import build_oneoff_graph
from repro.workloads.titles import make_titles, mean_length
from repro.workloads.wordcount import build_wordcount_graph, count_corpus, map_only_graph


class TestCorpus:
    def test_shard_size_exact(self):
        assert len(make_shard(1000, seed=1)) == 1000

    def test_determinism(self):
        assert make_shard(500, seed=9) == make_shard(500, seed=9)
        assert make_shard(500, seed=9) != make_shard(500, seed=10)

    def test_reference_count(self):
        shards = [b"the cat the dog", b"the end"]
        assert reference_count(shards, b"the") == 3

    def test_declared_shards_scatter(self):
        nodes = [f"node{i}" for i in range(10)]
        shards = declare_shards(200, 100, nodes, seed=1)
        used = {s.location for s in shards}
        assert len(used) == 10
        assert all(s.size == 100 for s in shards)


class TestWordcount:
    def test_matches_reference(self, fixpoint):
        shards = make_corpus(6, 3000, seed=5)
        got = count_corpus(fixpoint, shards, b"the")
        assert got == reference_count(shards, b"the")

    def test_non_overlapping_semantics(self, fixpoint):
        # bytes.count is non-overlapping, like the paper's counter.
        assert count_corpus(fixpoint, [b"aaaa"], b"aa") == 2

    def test_odd_shard_count(self, fixpoint):
        shards = make_corpus(7, 1000, seed=2)
        assert count_corpus(fixpoint, shards, b"of") == reference_count(shards, b"of")

    def test_single_shard(self, fixpoint):
        shards = make_corpus(1, 2000, seed=3)
        assert count_corpus(fixpoint, shards, b"a") == reference_count(shards, b"a")

    def test_graph_shape(self):
        shards = declare_shards(10, 100, ["node0"], seed=1)
        graph = build_wordcount_graph(shards)
        counts = [t for t in graph.tasks.values() if t.fn == "count-string"]
        merges = [t for t in graph.tasks.values() if t.fn == "merge-counts"]
        assert len(counts) == 10
        assert len(merges) == 9  # binary reduction of 10 leaves
        graph.validate()

    def test_map_only_graph(self):
        shards = declare_shards(10, 100, ["node0"], seed=1)
        graph = map_only_graph(shards)
        assert len(graph.tasks) == 10

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=12))
    def test_merge_tree_counts_property(self, n):
        shards = declare_shards(n, 100, ["node0"], seed=1)
        graph = build_wordcount_graph(shards)
        merges = [t for t in graph.tasks.values() if t.fn == "merge-counts"]
        assert len(merges) == n - 1  # any binary reduction needs n-1 merges


class TestChain:
    @pytest.mark.parametrize("length", [1, 2, 50, 500])
    def test_chain_result(self, fixpoint, length):
        assert run_chain(fixpoint, length) == length

    def test_chain_start_offset(self, fixpoint):
        assert run_chain(fixpoint, 10, start=32) == 42

    def test_chain_is_one_object_graph(self, fixpoint):
        handle = build_chain(fixpoint, 25)
        assert handle.is_encode  # a single evaluable object


class TestBPTree:
    def test_required_depth(self):
        assert required_depth(100, 256) == 0  # a single leaf
        assert required_depth(6_000_000, 2**24) == 0
        assert required_depth(6_000_000, 2**12) == 1

    def test_all_keys_found(self, fixpoint):
        titles = make_titles(300, seed=4)
        tree = build_bptree(fixpoint, titles, [b"v" + t for t in titles], 8)
        get_fn = compile_get(fixpoint)
        for key in titles[::23]:
            assert lookup(fixpoint, tree, get_fn, key) == b"v" + key

    def test_absent_key(self, fixpoint):
        titles = make_titles(100, seed=4)
        tree = build_bptree(fixpoint, titles, titles, 8)
        get_fn = compile_get(fixpoint)
        assert lookup(fixpoint, tree, get_fn, b"~~~nope") == b""
        assert lookup(fixpoint, tree, get_fn, b"") == b""

    def test_flat_tree(self, fixpoint):
        titles = make_titles(50, seed=1)
        tree = build_bptree(fixpoint, titles, titles, arity=64)
        assert tree.depth == 0
        get_fn = compile_get(fixpoint)
        assert lookup(fixpoint, tree, get_fn, titles[10]) == titles[10]

    def test_invocations_equal_levels(self, fixpoint):
        titles = make_titles(512, seed=2)
        tree = build_bptree(fixpoint, titles, titles, arity=8)
        get_fn = compile_get(fixpoint)
        before = fixpoint.trace.invocation_count("bptree-get")
        lookup(fixpoint, tree, get_fn, titles[100])
        after = fixpoint.trace.invocation_count("bptree-get")
        assert after - before == tree.levels  # Table 2: d invocations

    def test_unsorted_keys_rejected(self, fixpoint):
        with pytest.raises(ValueError):
            build_bptree(fixpoint, [b"b", b"a"], [b"1", b"2"], 4)

    def test_mismatched_values_rejected(self, fixpoint):
        with pytest.raises(ValueError):
            build_bptree(fixpoint, [b"a"], [], 4)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=2, max_value=32), st.integers(min_value=10, max_value=200))
    def test_lookup_equals_dict_property(self, arity, n):
        fp = Fixpoint()
        titles = make_titles(n, seed=6)
        values = [b"=" + t for t in titles]
        tree = build_bptree(fp, titles, values, arity)
        get_fn = compile_get(fp)
        reference = dict(zip(titles, values))
        for key in sample_queries(titles, 3, seed=n):
            assert lookup(fp, tree, get_fn, key) == reference[key]


class TestTitles:
    def test_unique_and_sorted(self):
        titles = make_titles(500)
        assert titles == sorted(set(titles))

    def test_mean_length_near_paper(self):
        assert 18 <= mean_length(make_titles(3000)) <= 26  # paper: ~22


class TestCompileJob:
    def test_pipeline_produces_executable(self, fixpoint):
        sources = [make_source(i, list(range(i))) for i in range(5)]
        exe = fixpoint.repo.get_blob(
            compile_project(fixpoint, sources, make_headers())
        ).data
        assert exe.startswith(b"EXE\n")
        for i in range(5):
            assert f"fn_{i}".encode() in exe

    def test_headers_satisfy_externs(self, fixpoint):
        sources = [make_source(0, []) + b"\ncall printf"]
        exe = compile_project(fixpoint, sources, make_headers(["printf"]))
        assert fixpoint.repo.get_blob(exe).data.startswith(b"EXE")

    def test_undefined_symbol_fails_at_link(self, fixpoint):
        sources = [make_source(0, [99])]  # calls fn_99, defined nowhere
        with pytest.raises(CodeletError) as excinfo:
            compile_project(fixpoint, sources, make_headers())
        assert "undefined" in str(excinfo.value)

    def test_duplicate_symbol_fails_at_link(self, fixpoint):
        sources = [make_source(0, []), make_source(0, [])]
        with pytest.raises(CodeletError) as excinfo:
            compile_project(fixpoint, sources, make_headers())
        assert "duplicate" in str(excinfo.value)

    def test_graph_shape(self):
        graph = build_compile_graph(tu_count=50)
        graph.validate()
        assert len(graph.tasks) == 51  # 50 compiles + 1 link
        link = graph.tasks["link"]
        assert len(link.inputs) == 50
        assert graph.data["headers"].location == CLIENT

    def test_graph_compile_times_are_long_tailed(self):
        graph = build_compile_graph(tu_count=300)
        times = sorted(
            t.compute_seconds for t in graph.tasks.values() if t.fn == "libclang"
        )
        assert times[-1] > 2 * times[len(times) // 2]  # max >> median


class TestOneoff:
    def test_graph_shape(self):
        graph = build_oneoff_graph(tasks=16)
        graph.validate()
        assert len(graph.tasks) == 16
        assert all(d.location == EXTERNAL for d in graph.data.values())
        assert all(t.memory_bytes == 10**9 for t in graph.tasks.values())
