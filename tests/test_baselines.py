"""Tests for the comparator platform models."""

from __future__ import annotations

import pytest

from repro.baselines.calibration import (
    FIXPOINT_INVOKE,
    OPENWHISK_INVOKE,
    RAY_TASK_OVERHEAD,
)
from repro.baselines.faasm import Faasm
from repro.baselines.kubernetes import KubeScheduler
from repro.baselines.minio import MinIO
from repro.baselines.openwhisk import OpenWhisk
from repro.baselines.pheromone import Pheromone
from repro.baselines.ray import RayPlatform, RayPopenMinIO
from repro.core.errors import SchedulingError
from repro.dist.engine import FixpointSim
from repro.dist.graph import JobGraph, TaskSpec
from repro.sim.cluster import Cluster, MachineSpec
from repro.sim.engine import Simulator

MB = 1 << 20


def one_task_graph(input_loc="node0", compute=0.01):
    graph = JobGraph()
    graph.add_data("in", 1 * MB, input_loc)
    graph.add_task(
        TaskSpec(
            name="t",
            fn="f",
            inputs=("in",),
            output="out",
            output_size=8,
            compute_seconds=compute,
            memory_bytes=64 * MB,
        )
    )
    return graph


def fan_out_graph(n=12, size=20 * MB):
    graph = JobGraph()
    for i in range(n):
        graph.add_data(f"in{i}", size, f"node{i % 3}")
        graph.add_task(
            TaskSpec(
                name=f"t{i}",
                fn="f",
                inputs=(f"in{i}",),
                output=f"out{i}",
                output_size=8,
                compute_seconds=0.05,
                memory_bytes=64 * MB,
            )
        )
    return graph


class TestMinIO:
    def test_preload_get_put(self):
        sim = Simulator()
        cluster = Cluster(sim, [MachineSpec("node0"), MachineSpec("node1")])
        minio = MinIO(sim, cluster)
        minio.preload("obj", 10 * MB)
        assert minio.contains("obj")
        assert minio.size_of("obj") == 10 * MB
        sim.run_until(minio.get("obj", "node0"))
        assert minio.gets == 1
        sim.run_until(minio.put("new", 1 * MB, "node0"))
        assert minio.contains("new")

    def test_missing_object(self):
        sim = Simulator()
        cluster = Cluster(sim, [MachineSpec("node0")])
        minio = MinIO(sim, cluster)
        with pytest.raises(SchedulingError):
            minio.get("ghost", "node0")

    def test_sharding_is_deterministic(self):
        sim = Simulator()
        cluster = Cluster(sim, [MachineSpec(f"node{i}") for i in range(4)])
        minio = MinIO(sim, cluster)
        assert minio.node_for("thing") == minio.node_for("thing")


class TestKubeScheduler:
    def test_least_loaded_placement(self):
        sim = Simulator()
        cluster = Cluster(sim, [MachineSpec("a"), MachineSpec("b")])
        k8s = KubeScheduler(sim, cluster)
        first = k8s.place()
        second = k8s.place()
        assert {first, second} == {"a", "b"}
        k8s.pod_finished(first)
        assert k8s.place() == first

    def test_cold_and_warm_starts(self):
        sim = Simulator()
        cluster = Cluster(sim, [MachineSpec("a")])
        k8s = KubeScheduler(sim, cluster)
        sim.run_until(k8s.pod_start("fn", "a"))
        cold_time = sim.now
        assert k8s.cold_starts == 1
        sim.run_until(k8s.pod_start("fn", "a"))
        assert sim.now - cold_time < cold_time  # warm is much cheaper
        assert k8s.cold_starts == 1

    def test_per_invocation_pods(self):
        sim = Simulator()
        cluster = Cluster(sim, [MachineSpec("a")])
        k8s = KubeScheduler(sim, cluster, per_invocation_pods=True)
        sim.run_until(k8s.pod_start("fn", "a"))
        sim.run_until(k8s.pod_start("fn", "a"))
        assert k8s.cold_starts == 2


class TestOpenWhisk:
    def test_single_invocation_near_measured_overhead(self):
        platform = OpenWhisk.build(nodes=1, cores=4)
        result = platform.run(one_task_graph(compute=0.0))
        # The warm path composes to roughly the paper's 30.7 ms (data
        # movement for the 1 MiB input adds a bit on top).
        assert OPENWHISK_INVOKE * 0.8 < result.makespan < OPENWHISK_INVOKE * 3

    def test_everything_flows_through_minio(self):
        platform = OpenWhisk.build(nodes=3, cores=4)
        platform.run(fan_out_graph())
        assert platform.minio.gets == 12
        assert platform.minio.puts == 12

    def test_iowait_dominates_for_data_heavy_tasks(self):
        platform = OpenWhisk.build(nodes=3, cores=4)
        result = platform.run(fan_out_graph(size=100 * MB))
        assert result.cpu.iowait > result.cpu.user


class TestRay:
    def test_styles_have_distinct_names(self):
        names = {
            RayPlatform.build(nodes=1, style=style).name
            for style in ("blocking", "cps", "popen")
        }
        assert len(names) == 3

    def test_unknown_style_rejected(self):
        with pytest.raises(SchedulingError):
            RayPlatform.build(nodes=1, style="mystery")

    def test_cps_places_with_locality(self):
        platform = RayPlatform.build(nodes=3, cores=4, style="cps")
        result = platform.run(fan_out_graph())
        # All inputs local: nothing but control traffic moves.
        assert result.bytes_transferred < 1 * MB

    def test_blocking_places_blindly(self):
        platform = RayPlatform.build(nodes=3, cores=4, style="blocking", seed=7)
        result = platform.run(fan_out_graph())
        assert result.bytes_transferred > 20 * MB  # blind placement pulls
        assert result.cpu.iowait > 0  # cores starve during ray.get

    def test_cps_never_iowaits(self):
        platform = RayPlatform.build(nodes=3, cores=4, style="cps")
        result = platform.run(fan_out_graph())
        assert result.cpu.iowait == 0.0

    def test_popen_loads_binaries_once_per_node(self):
        platform = RayPopenMinIO.build(nodes=3, cores=4)
        platform.run(fan_out_graph())
        assert platform._binaries_loaded == {"node0", "node1", "node2"}

    def test_blocking_overhead_exceeds_fixpoint(self):
        ray = RayPlatform.build(nodes=1, cores=4, style="blocking")
        ray_result = ray.run(one_task_graph(compute=0.0))
        fix = FixpointSim.build(nodes=1, cores=4)
        fix_result = fix.run(one_task_graph(compute=0.0))
        assert ray_result.makespan > fix_result.makespan
        assert ray_result.makespan > RAY_TASK_OVERHEAD


class TestPheromone:
    def test_collocates_with_trigger_bucket(self):
        graph = JobGraph()
        graph.add_data("in", 50 * MB, "node2")
        graph.add_task(
            TaskSpec(
                name="producer",
                fn="f",
                inputs=("in",),
                output="bucket",
                output_size=30 * MB,
                compute_seconds=0.01,
                memory_bytes=64 * MB,
            )
        )
        graph.add_task(
            TaskSpec(
                name="consumer",
                fn="g",
                inputs=("bucket",),
                output="final",
                output_size=8,
                compute_seconds=0.01,
                memory_bytes=64 * MB,
            )
        )
        platform = Pheromone.build(nodes=3, cores=4)
        platform.run(graph)
        producer_at = platform.cluster.locate("bucket")
        consumer_at = platform.cluster.locate("final")
        assert consumer_at <= producer_at  # ran where the bucket lives

    def test_cannot_reduce_on_external(self):
        assert Pheromone.can_reduce_on_external is False

    def test_external_inputs_have_no_locality(self):
        graph = JobGraph()
        for i in range(12):
            graph.add_data(f"in{i}", 20 * MB, "node2")  # all on one node
            graph.add_task(
                TaskSpec(
                    name=f"t{i}",
                    fn="f",
                    inputs=(f"in{i}",),
                    output=f"out{i}",
                    output_size=8,
                    compute_seconds=0.05,
                    memory_bytes=64 * MB,
                )
            )
        platform = Pheromone.build(nodes=3, cores=4, seed=2)
        result = platform.run(graph)
        # Round-robin spreads the functions while the data sits on node2.
        assert result.bytes_transferred > 100 * MB


class TestFaasm:
    def test_runs_and_charges_overhead(self):
        platform = Faasm.build(nodes=1, cores=4)
        result = platform.run(one_task_graph(compute=0.0))
        assert result.makespan > 0.010  # the measured 10.6 ms floor
        assert result.invocations == 1


class TestCrossPlatformShape:
    def test_fixpoint_beats_all_on_scatter(self):
        """The one-shape-to-rule-them-all sanity check on a small graph."""
        results = {}
        for cls, kw in (
            (FixpointSim, {}),
            (RayPlatform, {"style": "blocking", "seed": 7}),
            (OpenWhisk, {}),
            (Pheromone, {"seed": 2}),
        ):
            platform = cls.build(nodes=3, cores=4, **kw)
            results[platform.name] = platform.run(fan_out_graph(size=50 * MB)).makespan
        fastest = min(results, key=results.get)
        assert fastest == "Fixpoint", results
