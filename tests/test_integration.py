"""End-to-end integration tests across subsystems."""

from __future__ import annotations

import pytest

from repro.codelets.stdlib import blob_int, int_blob
from repro.core.attestation import Auditor, Provider
from repro.core.eval import Evaluator
from repro.core.gc import RecoveringRepository, collect, index_from_repository
from repro.fixpoint.net import FixpointNode
from repro.fixpoint.runtime import Fixpoint
from repro.workloads.corpus import make_corpus, reference_count
from repro.workloads.wordcount import (
    COUNT_STRING_SOURCE,
    MERGE_COUNTS_SOURCE,
    count_corpus,
)


class TestDistributedWordcount:
    """The fig. 8b dataflow executed for real across two nodes."""

    def test_counts_delegated_to_data_holder(self):
        client = FixpointNode("client")
        server = FixpointNode("server")
        # The corpus lives on the server; the client knows only handles.
        shards = make_corpus(4, 2500, seed=31)
        shard_handles = [server.repo.put_blob(s) for s in shards]
        count_fn = server.runtime.compile(COUNT_STRING_SOURCE, "count-string")
        merge_fn = server.runtime.compile(MERGE_COUNTS_SOURCE, "merge-counts")
        client.connect(server)

        needle = client.repo.put_blob(b"the")
        level = [
            client.runtime.invoke(count_fn, [shard, needle]).wrap_strict()
            for shard in shard_handles
        ]
        while len(level) > 1:
            level = [
                client.runtime.invoke(merge_fn, [level[i], level[i + 1]]).wrap_strict()
                for i in range(0, len(level), 2)
            ]
        # The client cannot evaluate locally (no shards, no codelets) -
        # eval_anywhere follows the data to the server.
        result = client.eval_anywhere(level[0])
        got = blob_int(client.repo.get_blob(result).data)
        assert got == reference_count(shards, b"the")
        assert client.delegations_sent == 1
        assert server.delegations_served == 1
        # The shards themselves never crossed the wire (they were already
        # at the server); only the job and the tiny result did.
        channel = client.peers["server"]
        assert channel.total_bytes < sum(len(s) for s in shards)


class TestGCOverRealWorkload:
    def test_derived_blobs_are_collectable(self):
        """A transform pipeline's big outputs can be evicted and flow
        back on demand ("delayed-availability" storage)."""
        repo = RecoveringRepository()
        fp = Fixpoint(repo=repo)
        upper = fp.compile(
            "def _fix_apply(fix, input):\n"
            "    entries = fix.read_tree(input)\n"
            "    return fix.create_blob(fix.read_blob(entries[2]).upper())\n",
            "upper",
        )
        shards = make_corpus(4, 1500, seed=8)
        outputs = [
            fp.eval(fp.invoke(upper, [repo.put_blob(s)]).wrap_strict())
            for s in shards
        ]
        for shard, out in zip(shards, outputs):
            assert repo.get_blob(out).data == shard.upper()

        repo.set_recompute(
            lambda recipe: Evaluator(
                repo, apply_fn=fp._apply, memoize=False
            ).eval_encode(recipe)
        )
        index = index_from_repository(repo)
        protect = set()  # inputs keep themselves: they have no recipes
        report = collect(repo, index, target_bytes=3000, protect=protect)
        assert report.bytes_freed >= 3000
        # Whatever was evicted flows back on demand; the answers stand.
        for shard, out in zip(shards, outputs):
            assert repo.get_blob(out).data == shard.upper()
        assert repo.recoveries >= 1


class TestAttestedComputation:
    def test_two_providers_agree_on_wordcount(self, fixpoint):
        shards = make_corpus(3, 1200, seed=5)
        needle = b"of"
        # Two independent runtimes (separate repositories).
        fp_a, fp_b = Fixpoint(), Fixpoint()
        for fp in (fp_a, fp_b):
            for shard in shards:
                fp.repo.put_blob(shard)
        provider_a = Provider("A", b"key-a", lambda e: fp_a.eval(e))
        provider_b = Provider("B", b"key-b", lambda e: fp_b.eval(e))
        # Both providers hold the code and inputs; content addressing
        # makes the two independently-built Encodes the *same handle*.
        count_a = fp_a.compile(COUNT_STRING_SOURCE, "count-string")
        count_b = fp_b.compile(COUNT_STRING_SOURCE, "count-string")
        assert count_a == count_b
        encode = fp_a.invoke(
            count_a, [fp_a.repo.put_blob(shards[0]), fp_a.repo.put_blob(needle)]
        ).wrap_strict()
        encode_b = fp_b.invoke(
            count_b, [fp_b.repo.put_blob(shards[0]), fp_b.repo.put_blob(needle)]
        ).wrap_strict()
        assert encode == encode_b
        attestation = provider_a.run(encode)
        auditor = Auditor(provider_b, sample_every=1)
        # Content addressing makes the statement portable: provider B
        # evaluates the same Encode handle and must land on the same result.
        assert auditor.observe(attestation, b"key-a") is None
        assert not auditor.findings


class TestParallelRuntimeConsistency:
    def test_parallel_and_sequential_wordcount_agree(self):
        shards = make_corpus(6, 2000, seed=77)
        sequential = count_corpus(Fixpoint(), shards, b"the")
        with Fixpoint(workers=4) as fp:
            parallel = count_corpus(fp, shards, b"the")
        assert sequential == parallel == reference_count(shards, b"the")

    def test_worker_count_does_not_change_any_result(self):
        for workers in (0, 2, 8):
            fp = Fixpoint(workers=workers)
            try:
                x = fp.repo.put_blob(int_blob(17))
                thunk = fp.invoke(fp.stdlib["fib"], [fp.stdlib["add"], x])
                result = fp.eval(thunk.wrap_strict())
                assert blob_int(fp.repo.get_blob(result).data) == 1597
            finally:
                fp.close()
